"""t-closeness measure tests."""

import pytest

from repro.anonymize import LocalSuppression, anonymize
from repro.errors import ReproError
from repro.model import STANDARD, MicrodataDB, survey_schema
from repro.risk import (
    KAnonymityRisk,
    TClosenessRisk,
    group_closeness,
    measure_by_name,
)
from repro.vadalog.terms import LabelledNull


def make_db(rows):
    schema = survey_schema(
        quasi_identifiers=["A", "B"], non_identifying=["S"]
    )
    return MicrodataDB("tc", schema, rows)


class TestGroupCloseness:
    def test_uniform_groups_are_close(self):
        # Every group mirrors the global 50/50 split: distance 0.
        db = make_db(
            [
                {"A": 1, "B": 1, "S": "x"},
                {"A": 1, "B": 1, "S": "y"},
                {"A": 2, "B": 2, "S": "x"},
                {"A": 2, "B": 2, "S": "y"},
            ]
        )
        distances = group_closeness(db, "S", ["A", "B"])
        assert all(d == pytest.approx(0.0) for d in distances)

    def test_skewed_group_is_far(self):
        # Group (1,1) is all-x while globally x is 50%: TV = 0.5.
        db = make_db(
            [
                {"A": 1, "B": 1, "S": "x"},
                {"A": 1, "B": 1, "S": "x"},
                {"A": 2, "B": 2, "S": "y"},
                {"A": 2, "B": 2, "S": "y"},
            ]
        )
        distances = group_closeness(db, "S", ["A", "B"])
        assert distances[0] == pytest.approx(0.5)

    def test_null_row_merges_distributions(self):
        db = make_db(
            [
                {"A": 1, "B": 1, "S": "x"},
                {"A": LabelledNull(1), "B": 1, "S": "y"},
            ]
        )
        maybe = group_closeness(db, "S", ["A", "B"])
        standard = group_closeness(db, "S", ["A", "B"],
                                   semantics=STANDARD)
        # Under maybe-match both rows share one balanced group.
        assert maybe[0] == pytest.approx(0.0)
        # Under standard each is a skewed singleton.
        assert standard[0] == pytest.approx(0.5)


class TestMeasure:
    def test_registered(self):
        measure = measure_by_name("t-closeness", sensitive="S", t=0.2)
        assert isinstance(measure, TClosenessRisk)

    def test_k_anonymous_l_diverse_but_not_t_close(self):
        """The skewness attack: a big, 2-diverse group still leaks
        when its sensitive distribution is extreme vs the file."""
        rows = []
        # Group alpha: 9 "sick", 1 "healthy" (skewed).
        for i in range(9):
            rows.append({"A": "alpha", "B": 1, "S": "sick"})
        rows.append({"A": "alpha", "B": 1, "S": "healthy"})
        # Group beta: 1 "sick", 9 "healthy" (opposite skew).
        rows.append({"A": "beta", "B": 1, "S": "sick"})
        for i in range(9):
            rows.append({"A": "beta", "B": 1, "S": "healthy"})
        db = make_db(rows)
        assert KAnonymityRisk(k=5).assess(db).risky_indices(0.5) == []
        report = TClosenessRisk(sensitive="S", t=0.3).assess(db)
        assert report.risky_indices(0.5) == list(range(len(db)))

    def test_threshold_controls_flagging(self):
        db = make_db(
            [
                {"A": 1, "B": 1, "S": "x"},
                {"A": 1, "B": 1, "S": "x"},
                {"A": 2, "B": 2, "S": "y"},
                {"A": 2, "B": 2, "S": "y"},
            ]
        )
        strict = TClosenessRisk(sensitive="S", t=0.2).assess(db)
        loose = TClosenessRisk(sensitive="S", t=0.8).assess(db)
        assert strict.risky_indices(0.5) == [0, 1, 2, 3]
        assert loose.risky_indices(0.5) == []

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            TClosenessRisk(sensitive="S", t=0.0)
        with pytest.raises(ReproError):
            TClosenessRisk(sensitive="", t=0.3)

    def test_sensitive_cannot_be_qi(self):
        db = make_db([{"A": 1, "B": 1, "S": "x"}])
        with pytest.raises(ReproError):
            TClosenessRisk(sensitive="A", t=0.3).assess(db)

    def test_cycle_reduces_t_closeness_violations(self, small_u):
        measure = TClosenessRisk(sensitive="Growth6mos", t=0.9)
        before = len(measure.assess(small_u).risky_indices(0.5))
        result = anonymize(small_u, measure, LocalSuppression())
        after = len(measure.assess(result.db).risky_indices(0.5))
        assert after <= before
