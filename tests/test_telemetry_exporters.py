"""Exporter tests: Prometheus text exposition (renderer + line-format
validator + file export + live HTTP scrape endpoint) and the OTLP/JSON
span document."""

import json
import urllib.error
import urllib.request

import pytest

from repro import telemetry
from repro.telemetry import MetricsRegistry
from repro.telemetry.exporters import (
    MetricsHTTPServer,
    parse_metric_key,
    spans_to_otlp,
    to_prometheus_text,
    validate_prometheus_text,
    write_otlp_spans,
    write_prometheus,
)


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def sample_registry():
    registry = MetricsRegistry()
    registry.counter("chase.rule_firings", rule="step").inc(4)
    registry.counter("chase.rule_firings", rule="base").inc(2)
    registry.counter("cycle.runs").inc()
    registry.gauge("chase.rule_stratum", rule="step").set(1)
    histogram = registry.histogram("chase.match_ns", rule="step")
    for value in (100.0, 200.0, 300.0):
        histogram.observe(value)
    return registry


class TestParseMetricKey:
    def test_plain_key(self):
        assert parse_metric_key("cycle.runs") == ("cycle.runs", {})

    def test_labelled_key(self):
        name, labels = parse_metric_key("firings{a=1,rule=step}")
        assert name == "firings"
        assert labels == {"a": "1", "rule": "step"}

    def test_roundtrip_with_metric_key(self):
        from repro.telemetry import metric_key

        key = metric_key("chase.fire_ns", {"rule": "r1", "s": "0"})
        assert parse_metric_key(key) == (
            "chase.fire_ns", {"rule": "r1", "s": "0"},
        )


class TestPrometheusText:
    def test_counter_rendering(self):
        text = to_prometheus_text(sample_registry().snapshot())
        assert "# TYPE repro_chase_rule_firings_total counter" in text
        assert 'repro_chase_rule_firings_total{rule="step"} 4' in text
        assert "repro_cycle_runs_total 1" in text

    def test_gauge_and_summary_rendering(self):
        text = to_prometheus_text(sample_registry().snapshot())
        assert "# TYPE repro_chase_rule_stratum gauge" in text
        assert 'repro_chase_rule_stratum{rule="step"} 1' in text
        assert "# TYPE repro_chase_match_ns summary" in text
        assert ('repro_chase_match_ns{quantile="0.5",rule="step"} 200'
                in text)
        assert 'repro_chase_match_ns_sum{rule="step"} 600' in text
        assert 'repro_chase_match_ns_count{rule="step"} 3' in text

    def test_namespace_and_name_sanitization(self):
        registry = MetricsRegistry()
        registry.counter("weird.name-with chars").inc()
        text = to_prometheus_text(registry.snapshot(), namespace="x")
        assert "x_weird_name_with_chars_total 1" in text
        validate_prometheus_text(text)

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", rule='a"b\\c').inc()
        text = to_prometheus_text(registry.snapshot())
        assert r'rule="a\"b\\c"' in text
        validate_prometheus_text(text)

    def test_label_newlines_escaped(self):
        # Rule labels come from user-written @label annotations; a
        # newline smuggled into one must not break the line protocol.
        registry = MetricsRegistry()
        registry.counter("c", rule="line1\nline2").inc()
        text = to_prometheus_text(registry.snapshot())
        assert r'rule="line1\nline2"' in text
        assert validate_prometheus_text(text) == 1

    def test_every_escape_class_in_one_value(self):
        registry = MetricsRegistry()
        registry.counter("c", rule='q"uo\\te\nnl').inc()
        text = to_prometheus_text(registry.snapshot())
        assert 'rule="q\\"uo\\\\te\\nnl"' in text
        assert validate_prometheus_text(text) == 1

    def test_memory_gauges_roundtrip_write_prometheus(self, tmp_path):
        # The chase's end-of-run memory accounting must survive the
        # full export path: registry -> snapshot -> text -> validator.
        registry = MetricsRegistry()
        registry.gauge("store.predicate_facts", predicate="own").set(42)
        registry.gauge(
            "store.predicate_bytes", predicate="own"
        ).set(13_312)
        registry.gauge("store.estimated_bytes").set(13_312)
        registry.gauge("store.index_entries").set(7)
        registry.gauge("provenance.entries").set(40)
        registry.gauge("provenance.estimated_bytes").set(4_096)
        path = tmp_path / "memory.prom"
        text = write_prometheus(str(path), registry.snapshot())
        assert path.read_text() == text
        assert ('repro_store_predicate_facts{predicate="own"} 42'
                in text)
        assert ('repro_store_predicate_bytes{predicate="own"} 13312'
                in text)
        assert "repro_store_estimated_bytes 13312" in text
        assert "repro_provenance_estimated_bytes 4096" in text
        assert validate_prometheus_text(text) == 6

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus_text(MetricsRegistry().snapshot()) == ""
        assert validate_prometheus_text("") == 0

    def test_active_registry_is_default(self):
        telemetry.enable()
        telemetry.state.registry.counter("cycle.runs").inc(7)
        assert "repro_cycle_runs_total 7" in to_prometheus_text()


class TestValidator:
    def test_counts_samples(self):
        text = to_prometheus_text(sample_registry().snapshot())
        # 3 counters + 1 gauge + 1 histogram (len(PERCENTILES)+2).
        assert validate_prometheus_text(text) == len(
            [l for l in text.splitlines() if not l.startswith("#")]
        )

    def test_rejects_bad_metric_name(self):
        with pytest.raises(ValueError, match="malformed sample"):
            validate_prometheus_text("9metric 1\n")

    def test_rejects_non_numeric_value(self):
        with pytest.raises(ValueError, match="non-numeric value"):
            validate_prometheus_text("metric abc\n")

    def test_rejects_unquoted_label(self):
        with pytest.raises(ValueError, match="malformed label"):
            validate_prometheus_text("metric{rule=step} 1\n")

    def test_rejects_malformed_comment(self):
        with pytest.raises(ValueError, match="malformed comment"):
            validate_prometheus_text("# HELLO metric something\n")

    def test_rejects_typed_family_without_samples(self):
        with pytest.raises(ValueError, match="no samples"):
            validate_prometheus_text(
                "# HELP lonely a family\n# TYPE lonely counter\n"
            )

    def test_accepts_timestamped_samples_and_nan(self):
        assert validate_prometheus_text(
            "m 1 1754380800000\nq NaN\ne 1.5e-3\n"
        ) == 3


class TestFileAndHttpExport:
    def test_write_prometheus_validates_and_writes(self, tmp_path):
        path = tmp_path / "metrics.prom"
        text = write_prometheus(str(path),
                                sample_registry().snapshot())
        assert path.read_text() == text
        assert validate_prometheus_text(text) > 0

    def test_http_scrape_matches_registry(self):
        registry = sample_registry()
        with MetricsHTTPServer(registry=registry, port=0) as server:
            assert server.port != 0
            url = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{url}/metrics",
                                        timeout=5) as response:
                assert response.status == 200
                assert "text/plain" in response.headers["Content-Type"]
                scraped = response.read().decode("utf-8")
            with urllib.request.urlopen(f"{url}/healthz",
                                        timeout=5) as response:
                assert response.read() == b"ok\n"
        assert scraped == to_prometheus_text(registry.snapshot())

    def test_http_scrape_is_live(self):
        """The endpoint snapshots at scrape time, not at start time."""
        registry = MetricsRegistry()
        with MetricsHTTPServer(registry=registry, port=0) as server:
            registry.counter("late").inc(3)
            with urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/metrics", timeout=5
            ) as response:
                scraped = response.read().decode("utf-8")
        assert "repro_late_total 3" in scraped

    def test_http_concurrent_scrapes(self):
        """Parallel scrapes while the registry is being written: every
        response must be a complete, valid exposition (ThreadingHTTP-
        Server + snapshot-at-scrape keeps readers isolated)."""
        import threading

        registry = sample_registry()
        errors = []
        bodies = []
        lock = threading.Lock()

        with MetricsHTTPServer(registry=registry, port=0) as server:
            url = f"http://127.0.0.1:{server.port}/metrics"
            stop = threading.Event()

            def writer():
                while not stop.is_set():
                    registry.counter("churn").inc()

            def scraper():
                try:
                    for _ in range(5):
                        with urllib.request.urlopen(
                            url, timeout=5
                        ) as response:
                            body = response.read().decode("utf-8")
                        with lock:
                            bodies.append(body)
                except Exception as exc:  # noqa: BLE001 — test capture
                    with lock:
                        errors.append(exc)

            mutator = threading.Thread(target=writer, daemon=True)
            mutator.start()
            scrapers = [
                threading.Thread(target=scraper) for _ in range(8)
            ]
            for thread in scrapers:
                thread.start()
            for thread in scrapers:
                thread.join(timeout=30)
            stop.set()
            mutator.join(timeout=5)

        assert not errors
        assert len(bodies) == 40
        for body in bodies:
            assert validate_prometheus_text(body) > 0
            assert 'repro_chase_rule_firings_total{rule="step"} 4' \
                in body

    def test_http_unknown_path_404(self):
        with MetricsHTTPServer(registry=MetricsRegistry(),
                               port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope", timeout=5
                )
            assert info.value.code == 404


def make_span(span_id, parent_id, name, start_ns=1000,
              duration_ns=500, **attributes):
    return {
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "start_ns": start_ns,
        "duration_ns": duration_ns,
        "attributes": attributes,
    }


class TestOtlpExport:
    def test_document_shape(self):
        spans = [
            make_span(1, None, "chase.run", rounds=3),
            make_span(2, 1, "chase.stratum", index=0),
        ]
        document = spans_to_otlp(spans, service_name="svc")
        resource = document["resourceSpans"][0]
        assert resource["resource"]["attributes"][0]["value"] == {
            "stringValue": "svc"
        }
        exported = resource["scopeSpans"][0]["spans"]
        assert [s["name"] for s in exported] == [
            "chase.run", "chase.stratum",
        ]
        for span in exported:
            assert len(span["traceId"]) == 32
            assert len(span["spanId"]) == 16
            int(span["traceId"], 16) and int(span["spanId"], 16)

    def test_children_share_the_roots_trace(self):
        spans = [
            make_span(1, None, "root"),
            make_span(2, 1, "child"),
            make_span(3, 2, "grandchild"),
            make_span(9, None, "other-root"),
        ]
        exported = spans_to_otlp(spans)["resourceSpans"][0][
            "scopeSpans"][0]["spans"]
        by_name = {s["name"]: s for s in exported}
        root_trace = by_name["root"]["traceId"]
        assert by_name["child"]["traceId"] == root_trace
        assert by_name["grandchild"]["traceId"] == root_trace
        assert by_name["other-root"]["traceId"] != root_trace
        assert by_name["child"]["parentSpanId"] == \
            by_name["root"]["spanId"]
        assert by_name["root"]["parentSpanId"] == ""

    def test_timestamps_preserve_offsets(self):
        spans = [
            make_span(1, None, "a", start_ns=1_000, duration_ns=100),
            make_span(2, 1, "b", start_ns=1_040, duration_ns=20),
        ]
        exported = spans_to_otlp(spans)["resourceSpans"][0][
            "scopeSpans"][0]["spans"]
        starts = {s["name"]: int(s["startTimeUnixNano"])
                  for s in exported}
        ends = {s["name"]: int(s["endTimeUnixNano"]) for s in exported}
        assert starts["b"] - starts["a"] == 40
        assert ends["a"] - starts["a"] == 100

    def test_attribute_typing(self):
        spans = [make_span(1, None, "a", n=3, ratio=0.5, ok=True,
                           label="x")]
        attributes = {
            a["key"]: a["value"]
            for a in spans_to_otlp(spans)["resourceSpans"][0][
                "scopeSpans"][0]["spans"][0]["attributes"]
        }
        assert attributes["n"] == {"intValue": "3"}
        assert attributes["ratio"] == {"doubleValue": 0.5}
        assert attributes["ok"] == {"boolValue": True}
        assert attributes["label"] == {"stringValue": "x"}

    def test_write_otlp_spans_roundtrips(self, tmp_path):
        path = tmp_path / "spans.json"
        document = write_otlp_spans(str(path),
                                    [make_span(1, None, "a")])
        assert json.loads(path.read_text()) == document

    def test_exports_live_tracer_spans_by_default(self):
        telemetry.enable()
        with telemetry.tracer().span("outer"):
            with telemetry.tracer().span("inner"):
                pass
        exported = spans_to_otlp()["resourceSpans"][0][
            "scopeSpans"][0]["spans"]
        names = {s["name"] for s in exported}
        assert {"outer", "inner"} <= names
