"""Record-linkage attacker tests: blocking, matching, and the
end-to-end claim that anonymization defeats re-identification."""

import pytest

from repro.anonymize import LocalSuppression, anonymize
from repro.attack import (
    LinkageAttacker,
    agreement_score,
    best_match,
    block,
    block_size,
    blocking_values,
    evaluate_attack,
    ground_truth,
)
from repro.data import generate_oracle
from repro.model import DomainHierarchy
from repro.risk import KAnonymityRisk
from repro.vadalog.terms import LabelledNull


class TestBlocking:
    def test_blocking_values_hide_suppressed_cells(self, cities_db):
        db = cities_db.copy()
        db.with_value(0, "Sector", LabelledNull(1))
        values = blocking_values(db, 0)
        assert values["Sector"] is None
        assert values["Area"] == "Roma"

    def test_block_shrinks_with_more_attributes(self, small_w, small_oracle):
        loose = len(
            small_oracle.match_by_quasi_identifiers(
                {"Area": small_w.rows[0]["Area"]}
            )
        )
        tight = block_size(small_oracle, small_w, 0)
        assert tight <= loose

    def test_suppression_grows_the_block(self, small_w, small_oracle):
        db = small_w.copy()
        before = block_size(small_oracle, db, 0)
        db.with_value(0, db.quasi_identifiers[0], LabelledNull(1))
        after = block_size(small_oracle, db, 0)
        assert after >= before


class TestMatching:
    def test_agreement_score_exact(self):
        target = {"A": 1, "B": 2}
        assert agreement_score(target, {"A": 1, "B": 2}, ["A", "B"]) == 1.0
        assert agreement_score(target, {"A": 1, "B": 9}, ["A", "B"]) == 0.5

    def test_wildcard_scores_neutral(self):
        target = {"A": None, "B": 2}
        score = agreement_score(target, {"A": 7, "B": 2}, ["A", "B"])
        assert score == pytest.approx(0.75)

    def test_generalized_value_scores_fractionally(self):
        hierarchy = DomainHierarchy.italian_geography()
        target = {"Area": "North"}
        score = agreement_score(
            target, {"Area": "Milano"}, ["Area"], hierarchy
        )
        assert 0 < score < 1

    def test_best_match_confidence_uniform_cohort(self):
        target = {"A": 1}
        cohort = [{"A": 1, "I": "x"}, {"A": 1, "I": "y"}]
        result = best_match(target, cohort, ["A"])
        assert result.confidence == pytest.approx(0.5)
        assert result.cohort_size == 2

    def test_best_match_empty_cohort(self):
        result = best_match({"A": 1}, [], ["A"])
        assert result.candidate is None
        assert result.confidence == 0.0


class TestEndToEndAttack:
    def test_unique_tuples_are_reidentifiable_before_anonymization(
        self, small_w, small_oracle
    ):
        truth = ground_truth(small_w, small_oracle)
        attacker = LinkageAttacker(small_oracle)
        risky = KAnonymityRisk(k=2).assess(small_w).risky_indices(0.5)
        risky_with_truth = [r for r in risky if r in truth]
        assert risky_with_truth, "fixture should contain risky rows"
        evaluation = evaluate_attack(
            attacker, small_w, truth, rows=risky_with_truth
        )
        # Risky (sample-unique) tuples have small oracle cohorts: the
        # attacker should pin many of them down.
        assert evaluation.mean_cohort <= 60

    def test_anonymization_defeats_the_attack(self, small_w, small_oracle):
        """The Section 2.2 claim: suppression makes blocking
        ineffective — cohorts grow and confidence drops."""
        truth = ground_truth(small_w, small_oracle)
        attacker = LinkageAttacker(small_oracle)
        risky = KAnonymityRisk(k=2).assess(small_w).risky_indices(0.5)
        rows = [r for r in risky if r in truth]

        before = evaluate_attack(attacker, small_w, truth, rows=rows)
        result = anonymize(
            small_w, KAnonymityRisk(k=2), LocalSuppression()
        )
        after = evaluate_attack(attacker, result.db, truth, rows=rows)

        assert after.mean_cohort >= before.mean_cohort
        assert after.mean_confidence <= before.mean_confidence + 1e-9

    def test_weights_predict_attack_difficulty(self, small_w, small_oracle):
        """Higher sampling weight => bigger blocking cohort (the
        'optimistic angle' of Section 2.2)."""
        truth = ground_truth(small_w, small_oracle)
        rows = sorted(truth)[:120]
        weights = [small_w.weight_of(r) for r in rows]
        cohorts = [
            block_size(small_oracle, small_w, r) for r in rows
        ]
        light = [c for w, c in zip(weights, cohorts) if w <= 30]
        heavy = [c for w, c in zip(weights, cohorts) if w >= 60]
        if light and heavy:
            assert (sum(heavy) / len(heavy)) > (sum(light) / len(light))

    def test_confidence_floor_abstains(self, small_w, small_oracle):
        attacker = LinkageAttacker(small_oracle, confidence_floor=1.1)
        outcome = attacker.attack_row(small_w, 0)
        assert outcome.guessed_identity is None
