"""Business-knowledge tests: ownership closure, clusters, enhanced
cycle (Algorithm 9)."""

import pytest

from repro.business import (
    OwnershipGraph,
    anonymize_with_business_knowledge,
    clusters_for_db,
    row_clusters,
)
from repro.anonymize import LocalSuppression, anonymize
from repro.data import generate_ownership, ownership_for_db
from repro.errors import ReproError
from repro.risk import KAnonymityRisk


class TestOwnershipGraph:
    def test_direct_majority_controls(self):
        graph = OwnershipGraph([("a", "b", 0.6)])
        assert graph.control_relation() == {("a", "b")}

    def test_minority_does_not_control(self):
        graph = OwnershipGraph([("a", "b", 0.5)])
        assert graph.control_relation() == set()

    def test_joint_control_through_bloc(self):
        # a controls b directly; a + b jointly own 0.6 of c.
        graph = OwnershipGraph(
            [("a", "b", 0.6), ("a", "c", 0.3), ("b", "c", 0.3)]
        )
        assert ("a", "c") in graph.control_relation()

    def test_transitive_bloc_extension(self):
        graph = OwnershipGraph(
            [
                ("a", "b", 0.6),
                ("a", "c", 0.3),
                ("b", "c", 0.3),
                ("c", "d", 0.8),
            ]
        )
        controls = graph.control_relation()
        assert ("a", "d") in controls
        assert ("c", "d") in controls

    def test_clusters_are_connected_components(self):
        graph = OwnershipGraph(
            [("a", "b", 0.7), ("c", "d", 0.9), ("x", "y", 0.2)]
        )
        clusters = graph.control_clusters()
        assert {"a", "b"} in clusters
        assert {"c", "d"} in clusters
        assert all("x" not in c for c in clusters)

    def test_invalid_share_rejected(self):
        with pytest.raises(ReproError):
            OwnershipGraph([("a", "b", 1.5)])

    def test_self_ownership_rejected(self):
        with pytest.raises(ReproError):
            OwnershipGraph([("a", "a", 0.6)])

    def test_to_facts(self):
        graph = OwnershipGraph([("a", "b", 0.6)])
        facts = graph.to_facts()
        assert facts[0].predicate == "own"


class TestRowClusters:
    def test_mapping_companies_to_rows(self):
        companies = ["a", "b", "c", "a", None]
        clusters = row_clusters(companies, [{"a", "b"}])
        assert clusters == [{0, 1, 3}]

    def test_single_row_clusters_dropped(self):
        companies = ["a", "b"]
        clusters = row_clusters(companies, [{"a", "z"}])
        assert clusters == []

    def test_clusters_for_db(self, cities_db):
        ids = [row["Id"] for row in cities_db.rows]
        graph = OwnershipGraph([(ids[0], ids[1], 0.8)])
        clusters = clusters_for_db(cities_db, graph)
        assert clusters == [{0, 1}]


class TestOwnershipGenerator:
    def test_relationship_count_approximate(self):
        companies = [f"c{i}" for i in range(200)]
        graph = generate_ownership(companies, 30, seed=1)
        closure = graph.control_relation()
        assert 25 <= len(closure) <= 36

    def test_zero_relationships(self):
        graph = generate_ownership(["a", "b", "c", "d"], 0)
        assert len(graph.control_relation()) == 0

    def test_deterministic_by_seed(self):
        companies = [f"c{i}" for i in range(50)]
        a = generate_ownership(companies, 10, seed=3)
        b = generate_ownership(companies, 10, seed=3)
        assert a.edges() == b.edges()

    def test_ownership_for_db(self, small_w):
        graph = ownership_for_db(small_w, 12, seed=2)
        companies = {str(r["Id"]) for r in small_w.rows}
        for owner, owned, _ in graph.edges():
            assert owner in companies and owned in companies


class TestEnhancedCycle:
    def test_more_relationships_more_nulls(self, small_u):
        """The Fig. 7d trend: risk propagation over bigger clusters
        forces more suppression."""
        counts = []
        for relationships in (0, 20, 60):
            graph = ownership_for_db(small_u, relationships, seed=4)
            result = anonymize_with_business_knowledge(
                small_u,
                graph,
                KAnonymityRisk(k=2),
                LocalSuppression(),
            )
            counts.append(result.nulls_injected)
        assert counts[0] <= counts[1] <= counts[2]
        assert counts[2] > counts[0]

    def test_business_cycle_converges(self, small_w):
        graph = ownership_for_db(small_w, 10, seed=9)
        result = anonymize_with_business_knowledge(
            small_w, graph, KAnonymityRisk(k=2), LocalSuppression()
        )
        assert result.converged

    def test_missing_company_attribute_inferable(self, small_w):
        graph = ownership_for_db(small_w, 5, seed=9)
        clusters = clusters_for_db(small_w, graph)  # infers "Id"
        assert all(len(c) >= 2 for c in clusters)
