"""Persistence (CSV/JSON) and CLI tests."""

import json

import pytest

from repro import io as repro_io
from repro.cli import main
from repro.errors import SchemaError
from repro.model import AttributeCategory, MicrodataSchema
from repro.vadalog.terms import LabelledNull


class TestSchemaSerialization:
    def test_roundtrip(self, ig_db):
        payload = repro_io.schema_to_dict(ig_db.schema)
        rebuilt = repro_io.schema_from_dict(payload)
        assert rebuilt == ig_db.schema

    def test_bad_payload(self):
        with pytest.raises(SchemaError):
            repro_io.schema_from_dict({"nope": []})


class TestCsvRoundtrip:
    def test_plain_roundtrip(self, ig_db, tmp_path):
        path = tmp_path / "ig.csv"
        repro_io.save_csv(ig_db, path)
        loaded = repro_io.load_csv(path)
        assert loaded.schema == ig_db.schema
        assert loaded.rows == ig_db.rows

    def test_labelled_nulls_survive(self, cities_db, tmp_path):
        db = cities_db.copy()
        db.with_value(0, "Sector", LabelledNull(7))
        path = tmp_path / "cities.csv"
        repro_io.save_csv(db, path)
        loaded = repro_io.load_csv(path)
        assert loaded.rows[0]["Sector"] == LabelledNull(7)

    def test_numbers_reparsed(self, ig_db, tmp_path):
        path = tmp_path / "ig.csv"
        repro_io.save_csv(ig_db, path)
        loaded = repro_io.load_csv(path)
        assert isinstance(loaded.rows[0]["Weight"], int)
        assert loaded.weight_of(14) == 30

    def test_explicit_schema_object(self, cities_db, tmp_path):
        path = tmp_path / "c.csv"
        repro_io.save_csv(cities_db, path)
        loaded = repro_io.load_csv(path, schema=cities_db.schema,
                                   name="renamed")
        assert loaded.name == "renamed"

    def test_missing_schema_sidecar(self, tmp_path):
        path = tmp_path / "orphan.csv"
        path.write_text("A\n1\n")
        with pytest.raises(SchemaError):
            repro_io.load_csv(path)

    def test_header_mismatch(self, cities_db, tmp_path):
        path = tmp_path / "c.csv"
        path.write_text("Wrong,Header\n1,2\n")
        with pytest.raises(SchemaError):
            repro_io.load_csv(path, schema=cities_db.schema)

    def test_empty_file(self, cities_db, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            repro_io.load_csv(path, schema=cities_db.schema)


class TestCli:
    def generate(self, tmp_path, code="R6A4U", scale=20):
        out = tmp_path / "data.csv"
        exit_code = main(
            ["generate", code, "--scale", str(scale), "-o", str(out)]
        )
        assert exit_code == 0
        return out

    def test_generate_writes_csv_and_schema(self, tmp_path):
        out = self.generate(tmp_path)
        assert out.exists()
        sidecar = out.with_suffix(".schema.json")
        assert sidecar.exists()
        payload = json.loads(sidecar.read_text())
        names = [e["name"] for e in payload["attributes"]]
        assert "Area" in names

    def test_assess_exit_code_signals_risk(self, tmp_path, capsys):
        out = self.generate(tmp_path)
        exit_code = main(
            ["assess", str(out), "--measure", "k-anonymity", "--k", "2"]
        )
        captured = capsys.readouterr().out
        assert "risky rows" in captured
        assert exit_code == 1  # risky rows found

    def test_assess_explain(self, tmp_path, capsys):
        out = self.generate(tmp_path)
        main(["assess", str(out), "--measure", "k-anonymity", "--k",
              "2", "--explain", "0"])
        assert "row 0" in capsys.readouterr().out

    def test_anonymize_roundtrip(self, tmp_path, capsys):
        out = self.generate(tmp_path)
        anon = tmp_path / "anon.csv"
        exit_code = main(
            ["anonymize", str(out), "--measure", "k-anonymity",
             "--k", "2", "-o", str(anon)]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "converged=True" in output
        loaded = repro_io.load_csv(anon)
        # Identifiers dropped by default.
        assert "Id" not in loaded.schema.attributes
        # The anonymized view is k-anonymous again.
        exit_code = main(
            ["assess", str(anon), "--measure", "k-anonymity", "--k", "2"]
        )
        assert exit_code == 0

    def test_anonymize_differential_measure(self, tmp_path, capsys):
        out = self.generate(tmp_path)
        anon = tmp_path / "anon.csv"
        exit_code = main(
            ["anonymize", str(out), "--measure", "differential",
             "--epsilon", "0.8", "-o", str(anon)]
        )
        assert exit_code == 0

    def test_report_command(self, tmp_path, capsys):
        out = self.generate(tmp_path)
        exit_code = main(["report", str(out), "--k", "2"])
        output = capsys.readouterr().out
        assert "Exchange report" in output
        assert "k-anonymity" in output
        assert exit_code == 1  # raw synthetic file is blocked

    def test_report_passes_after_anonymization(self, tmp_path, capsys):
        out = self.generate(tmp_path)
        anon = tmp_path / "anon.csv"
        main(["anonymize", str(out), "--measure", "k-anonymity",
              "--k", "2", "-o", str(anon)])
        capsys.readouterr()
        exit_code = main(["report", str(anon), "--k", "2"])
        output = capsys.readouterr().out
        # k-anonymity holds; reidentification/individual may still
        # exceed the default global budget on a small file, so only
        # check the k-anonymity line shows zero risky.
        assert "k-anonymity        risky     0" in output

    def test_engine_command(self, tmp_path, capsys):
        program = tmp_path / "tc.vada"
        program.write_text(
            """
            edge(a, b). edge(b, c).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        exit_code = main(["engine", str(program), "--output", "path"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert 'path(a, c)' in output

    def test_engine_warded_check_fails_unwarded(self, tmp_path, capsys):
        program = tmp_path / "bad.vada"
        program.write_text(
            """
            p(X, Z) :- e(X).
            r(Y) :- p(X, Y), p(X2, Y).
            """
        )
        exit_code = main(["engine", str(program), "--check-warded"])
        assert exit_code == 3
