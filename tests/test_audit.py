"""Confidentiality audit ledger tests: RiskVerdict, CellKey parsing,
event folding, live-fold == file-replay identity, multi-iteration
last-action-wins semantics, why/why_not explanations, the provenance
join with the declarative risk programs, the console renderers, the
``repro audit`` / ``repro events`` CLIs, the sdc.* metric family and
the /audit HTTP endpoint."""

import json
import urllib.request

import pytest

from repro import telemetry
from repro.audit import (
    ACTIONS,
    AuditLedger,
    CellKey,
    DecisionRecord,
    render_summary,
    render_timeline,
    render_why,
)
from repro.cli import main as cli_main
from repro.data import generate_dataset
from repro.framework import VadaSA
from repro.risk.base import RiskReport, RiskVerdict
from repro.telemetry import EventLog, MetricsHTTPServer
from repro.vadalog import Program
from repro.vadalog.atoms import Atom
from repro.vadalog_programs import K_ANONYMITY, TUPLE_BUILD


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def run_cycle(tmp_path, scale=25, k=3, **kwargs):
    """A full anonymization cycle with events + a live ledger."""
    events_path = tmp_path / "events.jsonl"
    telemetry.enable(events_path=str(events_path))
    live = AuditLedger().attach(telemetry.state.events)
    db = generate_dataset("R25A4W", seed=20210323, scale=scale)
    vada = VadaSA()
    vada.register(db)
    result = vada.anonymize(db.name, measure="k-anonymity", k=k, **kwargs)
    telemetry.disable()
    return events_path, live, result, vada, db


class TestRiskVerdict:
    def test_risky_comparison(self):
        verdict = RiskVerdict("k-anonymity", 3, 1.0, 0.5,
                              detail="group of 1 < k=3")
        assert verdict.risky
        assert verdict.comparison() == "1 > T=0.5"
        assert "row 3" in verdict.explain()
        assert "group of 1 < k=3" in verdict.explain()

    def test_safe_comparison_uses_lte(self):
        verdict = RiskVerdict("k-anonymity", 0, 0.0, 0.5)
        assert not verdict.risky
        assert verdict.comparison() == "0 <= T=0.5"

    def test_to_dict_is_json_safe(self):
        verdict = RiskVerdict("suda", 1, 0.31, 0.2,
                              parameters={"max_order": 3})
        doc = json.loads(json.dumps(verdict.to_dict()))
        assert doc["risky"] is True
        assert doc["parameters"] == {"max_order": 3}

    def test_report_verdicts(self):
        report = RiskReport("k-anonymity", [0.0, 1.0], ["Age"],
                            details=["safe", "unique"])
        verdicts = report.verdicts(0.5)
        assert [v.risky for v in verdicts] == [False, True]
        assert verdicts[1].detail == "unique"
        assert report.mean_score() == 0.5
        assert report.verdict(1, 0.5).row == 1


class TestCellKey:
    def test_parse_row_only(self):
        key = CellKey.parse("17")
        assert (key.db, key.row, key.attribute) == (None, 17, None)

    def test_parse_row_attribute(self):
        key = CellKey.parse("17:Age")
        assert (key.db, key.row, key.attribute) == (None, 17, "Age")

    def test_parse_full(self):
        key = CellKey.parse("R25A4W:17:Residential Rev.")
        assert key.db == "R25A4W"
        assert key.row == 17
        assert key.attribute == "Residential Rev."

    def test_str_round_trips(self):
        text = "R25A4W:17:Age"
        assert str(CellKey.parse(text)) == text

    def test_parse_without_row_raises(self):
        with pytest.raises(ValueError):
            CellKey.parse("no-row-here")

    def test_partial_matching(self):
        key = CellKey.parse("17")
        assert key.matches("AnyDB", 17, "Age")
        assert key.matches("AnyDB", 17, None)
        assert not key.matches("AnyDB", 18, "Age")
        full = CellKey.parse("DB:17:Age")
        assert not full.matches("Other", 17, "Age")
        assert not full.matches("DB", 17, "Sex")


def decision(log, **payload):
    log.emit("decision", **payload)


class TestLedgerFold:
    def synthetic_log(self):
        """A hand-built stream: suppress, keep, recode over two rows."""
        log = EventLog(clock=lambda: 1.0)
        ledger = AuditLedger().attach(log)
        decision(log, kind="suppress", db="D", row=1, attribute="Age",
                 iteration=1, measure="k-anonymity", score=1.0,
                 threshold=0.5, old="30-60", new=None,
                 method="local-suppression", qis=["Age", "Sex"],
                 qi_values=["30-60", "F"])
        decision(log, kind="keep", db="D", row=2, iteration=1,
                 measure="k-anonymity", score=1.0, threshold=0.5,
                 evidence="group regrew to 3 member(s)")
        decision(log, kind="recode", db="D", row=1, attribute="Age",
                 iteration=2, measure="k-anonymity", score=1.0,
                 threshold=0.5, old=None, new="*",
                 method="global-recoding", qis=["Age", "Sex"])
        log.emit("cycle_iteration", db="D", measure="k-anonymity",
                 iteration=2, risky=1, max_score=1.0, mean_score=0.2,
                 threshold=0.5, acted=1, suppressed=0, recoded=1,
                 kept=0)
        log.emit("cycle_summary", db="D", measure="k-anonymity",
                 iterations=2, converged=True, final_risky=0,
                 final_max_score=0.4, threshold=0.5)
        return log, ledger

    def test_actions_and_cells(self):
        _, ledger = self.synthetic_log()
        summary = ledger.summary()
        assert summary["by_action"] == {
            "suppress": 1, "recode": 1, "keep": 1,
        }
        assert summary["cells"] == 2
        assert summary["iterations"] == 2
        assert summary["by_measure"] == {"k-anonymity": 3}
        assert summary["outcome"]["converged"] is True

    def test_non_audit_events_ignored_but_counted(self):
        log, ledger = self.synthetic_log()
        before = len(ledger.records)
        log.emit("metrics", snapshot={})
        decision(log, kind="derive", rule="r", derived=["p(1)"])
        assert len(ledger.records) == before
        assert ledger.events_seen == 7

    def test_last_action_wins(self):
        _, ledger = self.synthetic_log()
        current = ledger.current(CellKey.parse("D:1:Age"))
        assert current.action == "recode"
        assert current.iteration == 2

    def test_records_for_partial_key(self):
        _, ledger = self.synthetic_log()
        assert len(ledger.records_for(CellKey.parse("1"))) == 2
        assert len(ledger.records_for(CellKey.parse("D:1:Age"))) == 2
        assert len(ledger.records_for(CellKey.parse("2"))) == 1
        assert ledger.records_for(CellKey.parse("99")) == []

    def test_cells_sorted_with_governing_record(self):
        _, ledger = self.synthetic_log()
        cells = ledger.cells()
        assert [cell for cell, _ in cells] == ["D:1:Age", "D:2"]
        assert cells[0][1].action == "recode"

    def test_actions_constant_matches_events(self):
        from repro.telemetry.events import AUDIT_ACTIONS

        assert ACTIONS == AUDIT_ACTIONS

    def test_decision_record_roundtrip(self):
        _, ledger = self.synthetic_log()
        doc = ledger.records[0].to_dict()
        assert doc["action"] == "suppress"
        assert doc["qi_values"] == ["30-60", "F"]
        json.dumps(doc)  # JSON-safe


class TestMultiIterationSameCell:
    """Satellite: suppress-then-recode on the same cell across
    iterations must stay gap-free, replay-stable and resolve by
    last-action-wins."""

    def write_stream(self, tmp_path):
        path = tmp_path / "two_pass.jsonl"
        telemetry.enable(events_path=str(path))
        log = telemetry.state.events
        live = AuditLedger().attach(log)
        decision(log, kind="suppress", db="D", row=7, attribute="Age",
                 iteration=1, measure="k-anonymity", score=1.0,
                 threshold=0.5, old="30-60", new=None)
        decision(log, kind="recode", db="D", row=7, attribute="Age",
                 iteration=2, measure="k-anonymity", score=1.0,
                 threshold=0.5, old=None, new="*")
        telemetry.disable()
        return path, live

    def test_sequence_gap_free_and_replay_stable(self, tmp_path):
        path, live = self.write_stream(tmp_path)
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [line["seq"] for line in lines] == \
            list(range(1, len(lines) + 1))
        replayed = AuditLedger.replay(str(path))
        assert replayed.summary() == live.summary()

    def test_last_action_wins_after_replay(self, tmp_path):
        path, _ = self.write_stream(tmp_path)
        ledger = AuditLedger.replay(str(path))
        assert ledger.current(CellKey.parse("D:7:Age")).action == "recode"

    def test_why_shows_history(self, tmp_path):
        path, _ = self.write_stream(tmp_path)
        why = AuditLedger.replay(str(path)).why("D:7:Age")
        assert "recoded at iteration 2" in why
        assert "history (last action wins)" in why
        assert "iteration 1: suppress" in why

    def test_corrupted_stream_refused(self, tmp_path):
        path, _ = self.write_stream(tmp_path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join([lines[0]] + lines[2:]) + "\n")
        with pytest.raises(ValueError, match="sequence gap"):
            AuditLedger.replay(str(path))
        # Opt-out still folds what is there.
        ledger = AuditLedger.replay(str(path), strict_sequence=False)
        assert len(ledger.records) >= 1


class TestLiveReplayIdentity:
    def test_full_cycle_replay_equals_live(self, tmp_path):
        events_path, live, result, _, _ = run_cycle(tmp_path)
        assert result.converged
        replayed = AuditLedger.replay(str(events_path))
        assert replayed.summary() == live.summary()
        summary = replayed.summary()
        assert summary["by_action"]["suppress"] > 0
        assert summary["iteration_points"] >= summary["iterations"] > 0
        assert summary["cycles"] == 1
        outcome = summary["outcome"]
        assert outcome["converged"] is True
        assert outcome["final_risky"] == 0
        assert outcome["measure"] == "k-anonymity"
        assert outcome["nulls_injected"] > 0

    def test_timeline_matches_iterations(self, tmp_path):
        events_path, live, _, _, _ = run_cycle(tmp_path)
        timeline = AuditLedger.replay(str(events_path)).timeline()
        assert timeline == live.timeline()
        assert [p["iteration"] for p in timeline] == \
            list(range(1, len(timeline) + 1))
        for point in timeline:
            assert point["suppressed"] + point["recoded"] + \
                point["kept"] >= 0
            assert point["max_score"] >= point["mean_score"] >= 0.0

    def test_disabled_telemetry_records_nothing(self):
        db = generate_dataset("R25A4W", seed=20210323, scale=10)
        vada = VadaSA()
        vada.register(db)
        vada.anonymize(db.name, measure="k-anonymity", k=2)
        assert telemetry.state.events is None


class TestWhy:
    def test_why_suppressed_cell(self, tmp_path):
        events_path, _, _, _, _ = run_cycle(tmp_path)
        ledger = AuditLedger.replay(str(events_path))
        record = next(r for r in ledger.records
                      if r.action == "suppress")
        why = ledger.why(record.cell)
        assert f"cell {record.cell}" in why
        assert "suppressed at iteration" in why
        assert "k-anonymity" in why
        assert "T=0.5" in why
        assert "quasi-identifiers:" in why
        assert "derivation:" in why
        assert f"risky(row {record.row})" in why
        # QI evidence was captured BEFORE the mutation.
        assert "'⊥" not in why.split("group(")[-1].split(")")[0]

    def test_why_not_published_cell(self, tmp_path):
        events_path, _, _, _, db = run_cycle(tmp_path)
        ledger = AuditLedger.replay(str(events_path))
        touched = {record.row for record in ledger.records}
        row = next(i for i in range(len(db)) if i not in touched)
        text = ledger.why_not(f"{db.name}:{row}")
        assert "published (no decision recorded)" in text
        assert "never exceeded the k-anonymity threshold" in text
        assert "T=0.5" in text

    def test_why_falls_through_to_why_not(self, tmp_path):
        events_path, _, _, _, db = run_cycle(tmp_path)
        ledger = AuditLedger.replay(str(events_path))
        touched = {record.row for record in ledger.records}
        row = next(i for i in range(len(db)) if i not in touched)
        assert ledger.why(f"{db.name}:{row}") == \
            ledger.why_not(f"{db.name}:{row}")

    def test_why_not_kept_cell(self):
        log = EventLog()
        ledger = AuditLedger().attach(log)
        decision(log, kind="keep", db="D", row=4, iteration=1,
                 measure="k-anonymity", score=1.0, threshold=0.5,
                 evidence="group regrew to 3 member(s)",
                 qis=["Age"])
        text = ledger.why_not("D:4")
        assert "published (kept at iteration 1)" in text
        assert "was risky when iteration 1 started" in text
        assert "but group regrew to 3 member(s)" in text

    def test_why_not_without_outcome(self):
        ledger = AuditLedger()
        text = ledger.why_not("D:0")
        assert "no cycle outcome in this ledger" in text


class TestProvenanceJoin:
    def risk_run(self, cities_db):
        facts = cities_db.to_facts() + [
            Atom.of("anonSet", cities_db.name,
                    frozenset(cities_db.quasi_identifiers)),
            Atom.of("param", "k", 2),
        ]
        return Program.parse(TUPLE_BUILD + K_ANONYMITY).run(facts)

    def test_why_names_declarative_rule_chain(self, cities_db):
        result = self.risk_run(cities_db)
        risky_rows = [int(i) for i, r in result.tuples("riskOutput")
                      if r == 1]
        assert risky_rows, "Figure 5a has unique tuples under k=2"
        row = risky_rows[0]
        log = EventLog()
        ledger = AuditLedger().attach(log)
        decision(log, kind="suppress", db=cities_db.name, row=row,
                 attribute="City", iteration=1, measure="k-anonymity",
                 score=1.0, threshold=0.5, old="Rome", new=None)
        why = ledger.why(f"{cities_db.name}:{row}:City",
                         provenance=result.provenance)
        assert "risky via rules" in why
        assert "kanon-2" in why
        assert "riskOutput(" in why  # the bounded explain tree

    def test_rule_chain_bounded(self, cities_db):
        result = self.risk_run(cities_db)
        facts = result.provenance.find("riskOutput")
        assert facts
        for fact in facts:
            chain = result.provenance.rule_chain(fact, max_depth=2)
            assert len(chain) <= 2

    def test_derive_events_ground_rows_through_replay(self, tmp_path):
        path = tmp_path / "derive.jsonl"
        telemetry.enable(events_path=str(path))
        log = telemetry.state.events
        decision(log, kind="derive", rule="kanon-2",
                 derived=["riskOutput(3, 1)", "other(1)"])
        decision(log, kind="suppress", db="D", row=3, attribute="Age",
                 iteration=1, measure="k-anonymity", score=1.0,
                 threshold=0.5, old="x", new=None)
        telemetry.disable()
        ledger = AuditLedger.replay(str(path))
        assert ledger.risk_rule_chain(3) == ["kanon-2"]
        assert "risky via rules kanon-2" in ledger.why("D:3:Age")
        assert ledger.summary()["risk_grounded_rows"] == 1


class TestConsoleRenderers:
    def test_summary_text_and_json(self, tmp_path):
        events_path, _, _, _, _ = run_cycle(tmp_path)
        ledger = AuditLedger.replay(str(events_path))
        text = render_summary(ledger)
        assert "Confidentiality audit summary" in text
        assert "converged: True" in text
        assert "information loss:" in text
        doc = json.loads(render_summary(ledger, fmt="json"))
        assert doc == ledger.summary()

    def test_timeline_table(self, tmp_path):
        events_path, _, _, _, _ = run_cycle(tmp_path)
        ledger = AuditLedger.replay(str(events_path))
        table = render_timeline(ledger)
        assert "iter" in table and "suppress" in table
        assert len(table.splitlines()) == 2 + len(ledger.timeline())
        doc = json.loads(render_timeline(ledger, fmt="json"))
        assert doc == ledger.timeline()

    def test_timeline_empty(self):
        assert "no cycle_iteration" in render_timeline(AuditLedger())

    def test_why_json_includes_records(self, tmp_path):
        events_path, _, _, _, _ = run_cycle(tmp_path)
        ledger = AuditLedger.replay(str(events_path))
        record = next(r for r in ledger.records
                      if r.action == "suppress")
        doc = json.loads(render_why(ledger, record.cell, fmt="json"))
        assert doc["cell"] == record.cell
        assert "suppressed" in doc["explanation"]
        assert doc["records"][0]["action"] == "suppress"


class TestAuditCLI:
    def test_summary(self, tmp_path, capsys):
        events_path, _, _, _, _ = run_cycle(tmp_path)
        assert cli_main(["audit", "summary",
                         "--ledger", str(events_path)]) == 0
        out = capsys.readouterr().out
        assert "Confidentiality audit summary" in out

    def test_summary_json(self, tmp_path, capsys):
        events_path, _, _, _, _ = run_cycle(tmp_path)
        assert cli_main(["audit", "summary", "--ledger",
                         str(events_path), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["by_action"]["suppress"] > 0

    def test_why(self, tmp_path, capsys):
        events_path, _, _, _, _ = run_cycle(tmp_path)
        ledger = AuditLedger.replay(str(events_path))
        cell = next(r.cell for r in ledger.records
                    if r.action == "suppress")
        assert cli_main(["audit", "why", cell,
                         "--ledger", str(events_path)]) == 0
        out = capsys.readouterr().out
        assert "suppressed at iteration" in out
        assert "T=" in out

    def test_why_published(self, tmp_path, capsys):
        events_path, _, _, _, db = run_cycle(tmp_path)
        ledger = AuditLedger.replay(str(events_path))
        touched = {record.row for record in ledger.records}
        row = next(i for i in range(len(db)) if i not in touched)
        assert cli_main(["audit", "why", f"{db.name}:{row}",
                         "--published",
                         "--ledger", str(events_path)]) == 0
        assert "published" in capsys.readouterr().out

    def test_timeline(self, tmp_path, capsys):
        events_path, _, _, _, _ = run_cycle(tmp_path)
        assert cli_main(["audit", "timeline",
                         "--ledger", str(events_path)]) == 0
        assert "iter" in capsys.readouterr().out

    def test_why_without_cell_errors(self, tmp_path, capsys):
        events_path, _, _, _, _ = run_cycle(tmp_path)
        assert cli_main(["audit", "why",
                         "--ledger", str(events_path)]) == 2
        assert "needs a cell" in capsys.readouterr().err

    def test_bad_cell_errors(self, tmp_path, capsys):
        events_path, _, _, _, _ = run_cycle(tmp_path)
        assert cli_main(["audit", "why", "not-a-cell",
                         "--ledger", str(events_path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_ledger_errors(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert cli_main(["audit", "summary",
                         "--ledger", str(missing)]) == 2
        assert "cannot fold ledger" in capsys.readouterr().err


class TestEventsCLI:
    def test_replay_text(self, tmp_path, capsys):
        events_path, _, _, _, _ = run_cycle(tmp_path)
        assert cli_main(["events", "replay", str(events_path)]) == 0
        out = capsys.readouterr().out
        assert "events:" in out
        assert "audit:" in out

    def test_replay_json_matches_fold(self, tmp_path, capsys):
        events_path, _, _, _, _ = run_cycle(tmp_path)
        assert cli_main(["events", "replay", str(events_path),
                         "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc == telemetry.replay(str(events_path))
        assert doc["audit"]["cells"]["suppress"] > 0

    def test_replay_missing_file_errors(self, tmp_path, capsys):
        assert cli_main(["events", "replay",
                         str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot replay" in capsys.readouterr().err


class TestSdcMetrics:
    def test_gauges_counters_histograms(self, tmp_path):
        run_cycle(tmp_path)
        snapshot = telemetry.state.registry.snapshot()
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        histograms = snapshot["histograms"]
        assert counters.get("sdc.cells_suppressed", 0) > 0
        assert any(key.startswith("sdc.risk.max") for key in gauges)
        assert any(key.startswith("sdc.risk.score") for key in histograms)
        assert gauges.get("sdc.cells_published", -1) >= 0
        assert 0.0 <= gauges.get("sdc.utility.information_loss", -1) <= 1.0
        assert gauges.get("sdc.iteration", 0) >= 1

    def test_prometheus_exposition_carries_sdc(self, tmp_path):
        run_cycle(tmp_path)
        text = telemetry.to_prometheus_text(
            telemetry.state.registry.snapshot()
        )
        assert "repro_sdc_cells_suppressed_total" in text
        assert 'measure="k-anonymity"' in text
        telemetry.validate_prometheus_text(text)


class TestAuditHTTPEndpoint:
    def test_audit_and_timeline_served(self, tmp_path):
        events_path, live, _, _, _ = run_cycle(tmp_path)
        with MetricsHTTPServer(port=0, audit=live) as server:
            url = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{url}/audit",
                                        timeout=5) as response:
                assert response.status == 200
                doc = json.loads(response.read().decode("utf-8"))
            with urllib.request.urlopen(f"{url}/audit/timeline",
                                        timeout=5) as response:
                timeline = json.loads(response.read().decode("utf-8"))
        assert doc == live.summary()
        assert timeline == live.timeline()

    def test_audit_404_without_ledger(self):
        with MetricsHTTPServer(port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/audit", timeout=5
                )
            assert excinfo.value.code == 404


class TestExchangeReportOutcome:
    def test_outcome_section(self, tmp_path):
        _, _, _, vada, db = run_cycle(tmp_path)
        report = vada.exchange_report(db.name)
        assert "SDC outcome (last anonymization cycle)" in report
        assert "information loss" in report
        assert "mean " in report  # per-measure mean risk line

    def test_last_result_accessor(self, tmp_path):
        _, _, result, vada, db = run_cycle(tmp_path)
        assert vada.last_result(db.name) is result
        assert vada.last_result("unknown") is None
