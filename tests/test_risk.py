"""Risk-measure tests against the paper's worked numbers, the
registry, and cross-checks between measures."""

import math

import pytest

from repro.errors import ReproError
from repro.model import MAYBE_MATCH, STANDARD
from repro.risk import (
    RISK_REGISTRY,
    IndividualRisk,
    KAnonymityRisk,
    ReidentificationRisk,
    SudaRisk,
    combined_cluster_risk,
    find_minimal_sample_uniques,
    measure_by_name,
    posterior_mean_inverse_frequency,
    propagate_over_clusters,
    suda_dis_scores,
)
from repro.vadalog.terms import LabelledNull


class TestRegistry:
    def test_all_paper_measures_registered(self):
        assert {"reidentification", "k-anonymity", "individual",
                "suda"} <= set(RISK_REGISTRY)

    def test_measure_by_name_with_params(self):
        measure = measure_by_name("k-anonymity", k=4)
        assert measure.k == 4

    def test_unknown_measure(self):
        with pytest.raises(ReproError):
            measure_by_name("quantum")


class TestReidentification:
    def test_paper_numbers(self, ig_db):
        report = ReidentificationRisk().assess(ig_db)
        assert report.scores[14] == pytest.approx(1 / 30)   # tuple 15
        assert report.scores[6] == pytest.approx(1 / 300)   # tuple 7
        assert report.scores[3] == pytest.approx(1 / 60)    # tuple 4

    def test_group_weights_are_summed(self, ig_db):
        # No two tuples of the fragment share all five QIs, so every
        # group is a singleton and risk = 1/W.
        report = ReidentificationRisk().assess(ig_db)
        for index in range(len(ig_db)):
            assert report.scores[index] == pytest.approx(
                1 / ig_db.weight_of(index)
            )

    def test_risk_clipped_to_one(self):
        from repro.model import MicrodataDB, survey_schema

        schema = survey_schema(quasi_identifiers=["A"], weight="W")
        db = MicrodataDB("t", schema, [{"A": 1, "W": 0.2}])
        report = ReidentificationRisk().assess(db)
        assert report.scores == [1.0]

    def test_attribute_subset(self, ig_db):
        # Restricting to Area only: groups are the three areas.
        report = ReidentificationRisk().assess(ig_db, attributes=["Area"])
        north_weight = sum(
            ig_db.weight_of(i)
            for i in range(len(ig_db))
            if ig_db.rows[i]["Area"] == "North"
        )
        north_rows = [
            i for i in range(len(ig_db))
            if ig_db.rows[i]["Area"] == "North"
        ]
        for index in north_rows:
            assert report.scores[index] == pytest.approx(1 / north_weight)

    def test_safe_from_group(self):
        measure = ReidentificationRisk()
        assert measure.safe_from_group(1, 100.0, 0.5)
        assert not measure.safe_from_group(1, 1.0, 0.5)

    def test_explanation_mentions_group(self, ig_db):
        report = ReidentificationRisk().assess(ig_db)
        assert "group weight sum" in report.explain(14)


class TestKAnonymity:
    def test_fig5a_risky_rows(self, cities_db):
        report = KAnonymityRisk(k=2).assess(cities_db)
        assert report.risky_indices(0.5) == [0, 5, 6]

    def test_higher_k_is_stricter(self, cities_db):
        risky2 = KAnonymityRisk(k=2).assess(cities_db).risky_indices(0.5)
        risky3 = KAnonymityRisk(k=3).assess(cities_db).risky_indices(0.5)
        assert set(risky2) <= set(risky3)

    def test_invalid_k(self):
        with pytest.raises(ReproError):
            KAnonymityRisk(k=0)

    def test_safe_from_group(self):
        measure = KAnonymityRisk(k=3)
        assert measure.safe_from_group(3, 0.0, 0.5)
        assert not measure.safe_from_group(2, 0.0, 0.5)

    def test_maybe_match_reduces_risk(self, cities_db):
        db = cities_db.copy()
        db.with_value(0, "Sector", LabelledNull(1))
        maybe = KAnonymityRisk(k=2).assess(db, semantics=MAYBE_MATCH)
        standard = KAnonymityRisk(k=2).assess(db, semantics=STANDARD)
        assert maybe.scores[0] == 0.0
        assert standard.scores[0] == 1.0


class TestIndividualRisk:
    def test_simple_mode_is_f_over_weight(self, ig_db):
        report = IndividualRisk(mode="simple").assess(ig_db)
        for index in range(len(ig_db)):
            assert report.scores[index] == pytest.approx(
                1 / ig_db.weight_of(index)
            )

    def test_closed_form_f1(self):
        p = 0.1
        expected = (p / (1 - p)) * math.log(1 / p)
        assert posterior_mean_inverse_frequency(1, p) == pytest.approx(
            expected
        )

    def test_series_converges_to_sample_risk_at_p1(self):
        assert posterior_mean_inverse_frequency(3, 1.0) == pytest.approx(
            1 / 3
        )

    def test_series_between_bounds(self):
        # E[1/F | f] is below 1/f (population at least the sample) and
        # above p/f (population about f/p on average, Jensen upward).
        for f in (1, 2, 5):
            for p in (0.05, 0.3, 0.7):
                risk = posterior_mean_inverse_frequency(f, p)
                assert 0 < risk <= 1 / f + 1e-12

    def test_sampled_mode_close_to_series(self, ig_db):
        series = IndividualRisk(mode="series").assess(ig_db)
        sampled = IndividualRisk(mode="sampled", samples=4000).assess(
            ig_db
        )
        for expected, estimate in zip(series.scores, sampled.scores):
            assert estimate == pytest.approx(expected, rel=0.15)

    def test_invalid_mode(self):
        with pytest.raises(ReproError):
            IndividualRisk(mode="magic")

    def test_invalid_frequency(self):
        with pytest.raises(ReproError):
            posterior_mean_inverse_frequency(0, 0.5)

    def test_safe_from_group_deterministic_modes(self):
        simple = IndividualRisk(mode="simple")
        assert simple.safe_from_group(1, 100.0, 0.5)
        sampled = IndividualRisk(mode="sampled")
        assert sampled.safe_from_group(1, 100.0, 0.5) is None


class TestSuda:
    def test_paper_tuple20_msus(self, ig_db):
        # Section 4.2's example restricts to the four Figure 5
        # attributes: tuple 20 has exactly the 2 MSUs named in the
        # paper.
        attrs = ["Area", "Sector", "Employees", "Residential Rev."]
        msus = find_minimal_sample_uniques(ig_db, attrs)
        tuple20 = sorted(sorted(s) for s in msus[19])
        assert tuple20 == [
            ["Employees", "Residential Rev."],
            ["Sector"],
        ]

    def test_sample_unique_but_not_msu_excluded(self, ig_db):
        attrs = ["Area", "Sector", "Employees", "Residential Rev."]
        msus = find_minimal_sample_uniques(ig_db, attrs)
        full = frozenset(attrs)
        for sets in msus.values():
            assert full not in sets or len(sets) == 1

    def test_fig5a_scores(self, cities_db):
        report = SudaRisk(k=3).assess(cities_db)
        assert report.risky_indices(0.5) == [0, 5, 6]

    def test_duplicated_rows_have_no_msu(self):
        from repro.model import MicrodataDB, survey_schema

        schema = survey_schema(quasi_identifiers=["A", "B"])
        db = MicrodataDB(
            "t", schema, [{"A": 1, "B": 2}, {"A": 1, "B": 2}]
        )
        assert find_minimal_sample_uniques(db, ["A", "B"]) == {}

    def test_msu_threshold_semantics(self, cities_db):
        # With k=1 no MSU of size < 1 exists: nothing is dangerous.
        report = SudaRisk(k=1).assess(cities_db)
        assert report.risky_indices(0.5) == []

    def test_dis_scores_weigh_small_msus_more(self, ig_db):
        attrs = ["Area", "Sector", "Employees", "Residential Rev."]
        msus = find_minimal_sample_uniques(ig_db, attrs)
        scores = suda_dis_scores(msus, len(ig_db), len(attrs))
        # Tuple 20 has a size-1 MSU; tuple 4 (row 3) has MSUs of size
        # >= 2 only: tuple 20 must score higher.
        assert scores[19] > scores[3] > 0

    def test_suppressed_cells_fall_back_to_slow_path(self, cities_db):
        db = cities_db.copy()
        db.with_value(0, "Sector", LabelledNull(1))
        report = SudaRisk(k=3).assess(db, semantics=MAYBE_MATCH)
        # With its sector wildcarded, tuple 1 matches tuples 2-5 on
        # every combination: no MSU, not dangerous.
        assert report.scores[0] == 0.0


class TestClusterRisk:
    def test_combined_formula(self):
        assert combined_cluster_risk([0.5, 0.5]) == pytest.approx(0.75)
        assert combined_cluster_risk([]) == 0.0
        assert combined_cluster_risk([1.0, 0.1]) == 1.0

    def test_propagation_assigns_cluster_risk(self, cities_db):
        base = KAnonymityRisk(k=2).assess(cities_db)
        lifted = propagate_over_clusters(base, [{0, 1}])
        # Row 1 was safe but is linked to risky row 0.
        assert lifted.scores[1] == pytest.approx(1.0)
        assert lifted.scores[2] == base.scores[2]

    def test_overlapping_clusters_rejected(self, cities_db):
        base = KAnonymityRisk(k=2).assess(cities_db)
        with pytest.raises(ReproError):
            propagate_over_clusters(base, [{0, 1}, {1, 2}])

    def test_out_of_range_member_rejected(self, cities_db):
        base = KAnonymityRisk(k=2).assess(cities_db)
        with pytest.raises(ReproError):
            propagate_over_clusters(base, [{0, 99}])

    def test_singleton_cluster_is_noop(self, cities_db):
        base = KAnonymityRisk(k=2).assess(cities_db)
        lifted = propagate_over_clusters(base, [{2}])
        assert lifted.scores == base.scores
