"""Model-layer tests: schemas, microdata DBs, oracle, hierarchy,
metadata dictionary."""

import pytest

from repro.errors import HierarchyError, SchemaError
from repro.model import (
    AttributeCategory,
    DomainHierarchy,
    ExperienceBase,
    IdentityOracle,
    MetadataDictionary,
    MicrodataDB,
    MicrodataSchema,
    survey_schema,
)
from repro.vadalog.terms import LabelledNull


class TestAttributeCategory:
    def test_from_label_variants(self):
        c = AttributeCategory
        assert c.from_label("Identifier") is c.IDENTIFIER
        assert c.from_label("quasi-identifier") is c.QUASI_IDENTIFIER
        assert c.from_label("Non-identifying") is c.NON_IDENTIFYING
        assert c.from_label("Sampling Weight") is c.WEIGHT
        assert c.from_label("weight") is c.WEIGHT

    def test_unknown_label_raises(self):
        with pytest.raises(SchemaError):
            AttributeCategory.from_label("mystery")


class TestMicrodataSchema:
    def test_category_views(self, ig_db):
        schema = ig_db.schema
        assert schema.identifiers == ["Id"]
        assert len(schema.quasi_identifiers) == 5
        assert schema.weight_attribute == "Weight"
        assert "Export to DE" in schema.non_identifying

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            MicrodataSchema(
                ["A", "A"],
                {"A": AttributeCategory.QUASI_IDENTIFIER},
            )

    def test_missing_category_rejected(self):
        with pytest.raises(SchemaError):
            MicrodataSchema(["A", "B"],
                            {"A": AttributeCategory.QUASI_IDENTIFIER})

    def test_two_weights_rejected(self):
        with pytest.raises(SchemaError):
            MicrodataSchema(
                ["W1", "W2"],
                {
                    "W1": AttributeCategory.WEIGHT,
                    "W2": AttributeCategory.WEIGHT,
                },
            )

    def test_shared_view_drops_identifiers(self, ig_db):
        shared = ig_db.schema.shared_view()
        assert "Id" not in shared
        assert "Area" in shared

    def test_with_categories_override(self, ig_db):
        updated = ig_db.schema.with_categories(
            {"Export to DE": AttributeCategory.QUASI_IDENTIFIER}
        )
        assert "Export to DE" in updated.quasi_identifiers
        # The original is untouched.
        assert "Export to DE" in ig_db.schema.non_identifying


class TestMicrodataDB:
    def test_row_validation_missing_attribute(self):
        schema = survey_schema(quasi_identifiers=["A"])
        with pytest.raises(SchemaError):
            MicrodataDB("t", schema, [{}])

    def test_row_validation_unknown_attribute(self):
        schema = survey_schema(quasi_identifiers=["A"])
        with pytest.raises(SchemaError):
            MicrodataDB("t", schema, [{"A": 1, "B": 2}])

    def test_weights(self, ig_db):
        assert ig_db.weight_of(14) == 30.0
        assert ig_db.weight_of(6) == 300.0
        assert len(ig_db.weights()) == 20

    def test_weight_default_when_absent(self, cities_db):
        assert cities_db.weight_of(0) == 1.0

    def test_qi_values(self, ig_db):
        values = ig_db.qi_values(3)
        assert values == ("North", "Textiles", "1000+", "90+", "0-30")

    def test_suppressed_cells_counting(self, cities_db):
        db = cities_db.copy()
        assert db.suppressed_cells() == 0
        db.with_value(0, "Sector", LabelledNull(1))
        assert db.suppressed_cells() == 1
        assert db.suppressed_cells(["Area"]) == 0

    def test_copy_is_deep_for_rows(self, cities_db):
        clone = cities_db.copy()
        clone.with_value(0, "Area", "Changed")
        assert cities_db.rows[0]["Area"] == "Roma"

    def test_drop_identifiers(self, ig_db):
        shared = ig_db.drop_identifiers()
        assert "Id" not in shared.schema.attributes
        assert len(shared) == len(ig_db)

    def test_facts_roundtrip(self, cities_db):
        facts = cities_db.to_facts()
        val_tuples = [
            tuple(
                t.value if hasattr(t, "value") else t for t in fact.terms
            )
            for fact in facts
            if fact.predicate == "val"
        ]
        rebuilt = MicrodataDB.from_facts(
            cities_db.name, cities_db.schema, val_tuples
        )
        assert rebuilt.rows == cities_db.rows


class TestIdentityOracle:
    def make_oracle(self):
        rows = [
            {"Id": "1", "Area": "N", "Sector": "T", "Identity": "acme"},
            {"Id": "2", "Area": "N", "Sector": "C", "Identity": "beta"},
            {"Id": "3", "Area": "S", "Sector": "C", "Identity": "gamma"},
        ]
        return IdentityOracle(["Id"], ["Area", "Sector"], "Identity", rows)

    def test_direct_identifier_selects_single_tuple(self):
        oracle = self.make_oracle()
        hits = oracle.match_by_identifier("Id", "2")
        assert len(hits) == 1
        assert hits[0]["Identity"] == "beta"

    def test_non_identifier_join_rejected(self):
        oracle = self.make_oracle()
        with pytest.raises(SchemaError):
            oracle.match_by_identifier("Area", "N")

    def test_qi_join(self):
        oracle = self.make_oracle()
        hits = oracle.match_by_quasi_identifiers({"Area": "N"})
        assert len(hits) == 2

    def test_none_is_wildcard(self):
        oracle = self.make_oracle()
        hits = oracle.match_by_quasi_identifiers(
            {"Area": None, "Sector": "C"}
        )
        assert len(hits) == 2

    def test_full_qi_join_uses_index(self):
        oracle = self.make_oracle()
        hits = oracle.match_by_quasi_identifiers(
            {"Area": "N", "Sector": "T"}
        )
        assert len(hits) == 1

    def test_context_selection(self):
        oracle = self.make_oracle()
        north = oracle.context(lambda row: row["Area"] == "N")
        assert len(north) == 2
        assert oracle.frequency({"Sector": "C"}) == 2

    def test_missing_attribute_rejected(self):
        with pytest.raises(SchemaError):
            IdentityOracle(["Id"], ["Area"], "Identity", [{"Id": "1"}])


class TestDomainHierarchy:
    def test_generalize_city_to_region(self):
        hierarchy = DomainHierarchy.italian_geography()
        assert hierarchy.generalize("Area", "Milano") == "North"
        assert hierarchy.generalize("Area", "Roma") == "Center"
        assert hierarchy.generalize("Area", "North") == "Italy"
        assert hierarchy.generalize("Area", "Italy") is None

    def test_generalization_path(self):
        hierarchy = DomainHierarchy.italian_geography()
        assert hierarchy.generalization_path("Area", "Torino") == [
            "Torino", "North", "Italy",
        ]

    def test_levels(self):
        hierarchy = DomainHierarchy.italian_geography()
        assert hierarchy.level_of("Milano") == 0
        assert hierarchy.level_of("North") == 1
        assert hierarchy.level_of("Italy") == 2

    def test_unknown_value_not_generalizable(self):
        hierarchy = DomainHierarchy.italian_geography()
        assert not hierarchy.can_generalize("Area", "Atlantis")

    def test_type_cycle_rejected(self):
        hierarchy = DomainHierarchy()
        hierarchy.add_subtype("A", "B")
        with pytest.raises(HierarchyError):
            hierarchy.add_subtype("B", "A")

    def test_value_cycle_rejected(self):
        hierarchy = DomainHierarchy()
        hierarchy.add_is_a("x", "y")
        with pytest.raises(HierarchyError):
            hierarchy.add_is_a("y", "x")

    def test_from_intervals(self):
        hierarchy = DomainHierarchy.from_intervals(
            "Rev", [["0-30", "30-60", "60-90", "90+"], ["low", "high"]]
        )
        assert hierarchy.generalize("Rev", "0-30") == "low"
        assert hierarchy.generalize("Rev", "90+") == "high"

    def test_to_facts_shapes(self):
        hierarchy = DomainHierarchy.italian_geography()
        predicates = {f.predicate for f in hierarchy.to_facts()}
        assert predicates == {"typeOf", "subTypeOf", "instOf", "isA"}


class TestMetadataDictionary:
    def test_register_and_categorize(self):
        dictionary = MetadataDictionary()
        dictionary.register("db", [("A", "attr a"), ("B", "attr b")])
        dictionary.set_category("db", "A",
                                AttributeCategory.QUASI_IDENTIFIER)
        with pytest.raises(SchemaError):
            dictionary.categorized_schema("db")  # B uncategorized
        dictionary.set_category("db", "B",
                                AttributeCategory.NON_IDENTIFYING)
        schema = dictionary.categorized_schema("db")
        assert schema.quasi_identifiers == ["A"]

    def test_duplicate_registration_rejected(self):
        dictionary = MetadataDictionary()
        dictionary.register("db", [("A", "")])
        with pytest.raises(SchemaError):
            dictionary.register("db", [("A", "")])

    def test_unknown_attribute_category_rejected(self):
        dictionary = MetadataDictionary()
        dictionary.register("db", [("A", "")])
        with pytest.raises(SchemaError):
            dictionary.set_category("db", "Z",
                                    AttributeCategory.IDENTIFIER)

    def test_register_schema_imports_categories(self, ig_db):
        dictionary = MetadataDictionary()
        dictionary.register_schema(ig_db.name, ig_db.schema)
        assert (
            dictionary.category(ig_db.name, "Id")
            is AttributeCategory.IDENTIFIER
        )

    def test_to_facts(self, ig_db):
        dictionary = MetadataDictionary()
        dictionary.register_schema(ig_db.name, ig_db.schema)
        predicates = {f.predicate for f in dictionary.to_facts()}
        assert predicates == {"microDB", "att", "category"}


class TestExperienceBase:
    def test_know_and_forget(self):
        base = ExperienceBase()
        base.know("Area", AttributeCategory.QUASI_IDENTIFIER)
        assert "Area" in base
        base.forget("Area")
        assert "Area" not in base

    def test_banking_defaults_cover_survey(self):
        base = ExperienceBase.banking_defaults()
        assert base.category_of("Id") is AttributeCategory.IDENTIFIER
        assert (
            base.category_of("Sector")
            is AttributeCategory.QUASI_IDENTIFIER
        )
