"""The docs/extending.md extension points, exercised end to end:
custom measures, custom methods, custom similarity, custom builtins all
plug into the framework without core changes."""

import pytest

from repro.anonymize import (
    AdaptiveMethod,
    AnonymizationMethod,
    AnonymizationStep,
    LocalSuppression,
    anonymize,
)
from repro.categorize import AttributeCategorizer
from repro.errors import ReproError
from repro.model import AttributeCategory, ExperienceBase, MAYBE_MATCH
from repro.risk import RiskMeasure, RiskReport
from repro.vadalog import Program, register_scalar_function


class RareSectorRisk(RiskMeasure):
    """The docs example: sector frequency drives risk directly."""

    name = "rare-sector-test"

    def __init__(self, n=2, attribute="Sector"):
        self.n = n
        self.attribute = attribute

    def assess(self, db, semantics=MAYBE_MATCH, attributes=None):
        from collections import Counter

        from repro.model import is_suppressed

        counts = Counter(
            row[self.attribute]
            for row in db.rows
            if not is_suppressed(row[self.attribute])
        )
        scores = [
            0.0
            if is_suppressed(row[self.attribute])  # hidden => not rare
            else (1.0 if counts[row[self.attribute]] < self.n else 0.0)
            for row in db.rows
        ]
        return RiskReport(
            self.name, scores, attributes or db.quasi_identifiers
        )


class TestCustomMeasure:
    def test_assess_and_cycle(self, cities_db):
        measure = RareSectorRisk(n=2)
        report = measure.assess(cities_db)
        # 'Textiles' occurs once in Figure 5a.
        assert report.scores[0] == 1.0
        result = anonymize(cities_db, measure, LocalSuppression())
        assert result.converged
        final = measure.assess(result.db)
        assert final.risky_indices(0.5) == []

    def test_registry_rejects_duplicates(self):
        from repro.risk import RISK_REGISTRY, register_measure

        assert "k-anonymity" in RISK_REGISTRY
        with pytest.raises(ReproError):

            @register_measure
            class Clash(RiskMeasure):
                name = "k-anonymity"


class TopCoding(AnonymizationMethod):
    """The docs example: clamp extremes instead of erasing."""

    name = "top-coding-test"
    TOP = {"Employees": "0-200"}

    def applicable_attributes(self, db, row):
        return [
            a
            for a, top in self.TOP.items()
            if a in db.quasi_identifiers and db.rows[row][a] != top
        ]

    def apply(self, db, row, attribute, null_factory, reason=""):
        old = db.rows[row][attribute]
        new = self.TOP[attribute]
        db.with_value(row, attribute, new)
        return AnonymizationStep(
            row, attribute, self.name, old, new, reason
        )


class TestCustomMethod:
    def test_method_runs_in_cycle(self, cities_db):
        from repro.risk import KAnonymityRisk

        method = AdaptiveMethod(
            methods=[TopCoding(), LocalSuppression()], patience=1
        )
        result = anonymize(cities_db, KAnonymityRisk(k=2), method)
        assert result.converged
        used = {step.method for step in result.steps}
        assert any("top-coding-test" in m for m in used)


class TestCustomSimilarity:
    def test_callable_similarity(self):
        def prefix(a, b):
            return 1.0 if a.lower()[:4] == b.lower()[:4] else 0.0

        base = ExperienceBase(
            {"Sector": AttributeCategory.QUASI_IDENTIFIER}
        )
        categorizer = AttributeCategorizer(
            base, similarity=prefix, threshold=0.9
        )
        result = categorizer.categorize(["SECTOR_CODE"])
        assert (
            result.assigned["SECTOR_CODE"]
            is AttributeCategory.QUASI_IDENTIFIER
        )


class TestCustomBuiltin:
    def test_registered_function_usable_in_rules(self):
        register_scalar_function(
            "clip01_test", lambda x: min(1.0, max(0.0, x))
        )
        program = Program.parse(
            """
            f(a, 3.0). f(b, -1.0). f(c, 0.4).
            r(I, V) :- f(I, X), V = clip01_test(X).
            """
        )
        result = program.run()
        values = dict(result.tuples("r"))
        assert values == {"a": 1.0, "b": 0.0, "c": 0.4}
