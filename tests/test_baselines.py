"""Baseline tests: procedural k-anonymity suppression and SUDA2,
cross-checked against the declarative path."""

import pytest

from repro.anonymize import LocalSuppression, anonymize
from repro.baselines import (
    procedural_k_anonymity,
    sample_uniques,
    suda2_msus,
    suda2_risky_rows,
)
from repro.model import STANDARD
from repro.risk import KAnonymityRisk, SudaRisk, find_minimal_sample_uniques


class TestProceduralKAnonymity:
    def test_reaches_k_anonymity_up_to_full_suppression(self, small_u):
        from repro.baselines.procedural import SUPPRESSED

        result = procedural_k_anonymity(small_u, k=2)
        counts = STANDARD.match_counts(result.db)
        # Any residual unsafe row must be fully suppressed already —
        # the NA-category dead end the declarative maybe-match
        # semantics avoids (a labelled null matches everything).
        for index, count in enumerate(counts):
            if count < 2:
                row = result.db.rows[index]
                assert all(
                    row[a] == SUPPRESSED
                    for a in result.db.quasi_identifiers
                )

    def test_procedural_needs_more_suppressions_than_vada_sa(
        self, small_u
    ):
        """The declarative maybe-match cycle should dominate the
        procedural distinct-category baseline on nulls injected."""
        baseline = procedural_k_anonymity(small_u, k=2)
        declarative = anonymize(
            small_u, KAnonymityRisk(k=2), LocalSuppression()
        )
        assert declarative.nulls_injected <= baseline.suppressions

    def test_custom_priority_respected(self, cities_db):
        result = procedural_k_anonymity(
            cities_db, k=2, attribute_priority=["Employees"]
        )
        # Suppressing only Employees cannot fix Roma/Textiles, so the
        # loop keeps going through the single allowed attribute and
        # stops unsafe (distinct categories never merge).
        assert result.suppressions > 0

    def test_invalid_k(self, cities_db):
        from repro.errors import AnonymizationError

        with pytest.raises(AnonymizationError):
            procedural_k_anonymity(cities_db, k=0)

    def test_sample_uniques(self, cities_db):
        assert sample_uniques(cities_db) == [0, 5, 6]


class TestSuda2Baseline:
    def test_matches_declarative_msus(self, ig_db):
        attrs = ["Area", "Sector", "Employees", "Residential Rev."]
        declarative = find_minimal_sample_uniques(ig_db, attrs)
        procedural = suda2_msus(ig_db, attributes=attrs)
        assert set(declarative) == set(procedural)
        for row in declarative:
            assert set(declarative[row]) == set(procedural[row])

    def test_matches_on_synthetic_data(self, small_w):
        attrs = small_w.quasi_identifiers
        declarative = find_minimal_sample_uniques(
            small_w, attrs, max_size=2
        )
        procedural = suda2_msus(small_w, attributes=attrs, max_size=2)
        assert {
            row: frozenset(sets) for row, sets in declarative.items()
        } == {row: frozenset(sets) for row, sets in procedural.items()}

    def test_risky_rows_match_suda_measure(self, cities_db):
        procedural = suda2_risky_rows(cities_db, k=3)
        declarative = (
            SudaRisk(k=3).assess(cities_db).risky_indices(0.5)
        )
        assert procedural == declarative

    def test_duplicates_have_no_msus(self):
        from repro.model import MicrodataDB, survey_schema

        schema = survey_schema(quasi_identifiers=["A"])
        db = MicrodataDB("t", schema, [{"A": 1}, {"A": 1}])
        assert suda2_msus(db) == {}
