"""Inspection primitives: StepStats/PlanAnalysis accounting, the
explain renderer, peak-RSS sampling and the chase progress tracker
(heartbeat rate-limiting + stall episodes, on a fake clock)."""

import pytest

from repro.telemetry.inspect import (
    ChaseProgress,
    PeakRSSSampler,
    PlanAnalysis,
    StepStats,
    current_rss_bytes,
    render_explain,
    render_memory,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestStepStats:
    def test_probe_misses_derived(self):
        stats = StepStats()
        stats.probe_calls = 5
        stats.probe_hits = 3
        assert stats.probe_misses == 2

    def test_to_json_omits_probe_fields_for_eval_steps(self):
        stats = StepStats()
        stats.invocations = 4
        stats.rows_out = 2
        stats.wall_ns = 1000
        data = stats.to_json()
        assert data == {"invocations": 4, "rows_out": 2,
                        "wall_ns": 1000}

    def test_to_json_includes_probe_fields_when_probing(self):
        stats = StepStats()
        stats.probe_calls = 2
        stats.probe_hits = 1
        stats.rows_scanned = 9
        data = stats.to_json()
        assert data["probe_calls"] == 2
        assert data["probe_misses"] == 1
        assert data["rows_scanned"] == 9

    def test_plan_analysis_allocates_per_step(self):
        analysis = PlanAnalysis(3)
        assert len(analysis.steps) == 3
        assert analysis.steps[0] is not analysis.steps[1]
        assert analysis.to_json()["executions"] == 0


class TestRenderExplain:
    def doc(self, analyze=False):
        step = {"op": "scan", "detail": "scan e(X, Y)"}
        if analyze:
            step["actual"] = {
                "invocations": 1, "rows_out": 3, "wall_ns": 1500,
                "probe_calls": 1, "probe_hits": 1, "rows_scanned": 3,
            }
        plan = {"name": "first-round", "steps": [step]}
        if analyze:
            plan["executions"] = 1
            plan["matches"] = 3
        return {
            "version": 1,
            "analyze": analyze,
            "rules": [{
                "rule": "hop", "stratum": 0, "unplannable": False,
                "streamable": True, "plans": [plan],
            }],
        }

    def test_static_render(self):
        text = render_explain(self.doc())
        assert text.startswith("EXPLAIN: 1 rule(s)")
        assert "rule hop  [stratum 0, streamable]" in text
        assert "1. scan e(X, Y)" in text
        assert "execution" not in text

    def test_analyze_render_carries_actuals(self):
        text = render_explain(self.doc(analyze=True))
        assert text.startswith("EXPLAIN ANALYZE")
        assert "(1 execution(s), 3 match(es))" in text
        assert "rows in=1 out=3" in text
        assert "probes=1/1 (100% hit)" in text
        assert "1.5us" in text

    def test_unplannable_rule_rendered_with_reason(self):
        doc = {"analyze": False, "rules": [{
            "rule": "bad", "unplannable": True,
            "reason": "reads external-only variables",
        }]}
        text = render_explain(doc)
        assert "rule bad: UNPLANNABLE — reads external-only" in text

    def test_empty_program(self):
        text = render_explain({"analyze": False, "rules": []})
        assert "0 rule(s)" in text
        assert "nothing to plan" in text

    def test_empty_plan_marked_unconditional(self):
        doc = {"analyze": False, "rules": [{
            "rule": "r", "unplannable": False,
            "plans": [{"name": "first-round", "steps": []}],
        }]}
        assert "fires unconditionally" in render_explain(doc)

    def test_memory_section_appended(self):
        doc = self.doc()
        doc["memory"] = {
            "store": {
                "predicates": {"e": {
                    "facts": 3, "delta": 0,
                    "estimated_bytes": 2048, "index_entries": 3,
                }},
                "facts": 3, "estimated_bytes": 2048,
                "index_entries": 3,
            },
            "provenance": {"derivations": 2, "estimated_bytes": 512},
        }
        text = render_explain(doc)
        assert "memory:" in text
        assert "e: 3 fact(s), ~2.0 KiB, 3 index entr(ies)" in text
        assert "provenance: 2 derivation(s), ~512 B" in text

    def test_render_memory_standalone(self):
        text = render_memory({"store": {
            "predicates": {}, "facts": 0,
            "estimated_bytes": 0, "index_entries": 0,
        }})
        assert "total: 0 fact(s)" in text


class TestPeakRSS:
    def test_current_rss_is_positive_here(self):
        # Linux CI and dev boxes have /proc; the fallback still
        # returns a positive peak via getrusage.
        assert current_rss_bytes() > 0

    def test_sampler_context_manager_records_peak(self):
        with PeakRSSSampler(interval=0.001) as rss:
            ballast = [bytes(4096) for _ in range(2000)]
        assert rss.max_rss_bytes > 0
        assert ballast  # keep alive until after the edge sample

    def test_sampler_monotonic_and_restartable(self):
        sampler = PeakRSSSampler(interval=0.001)
        sampler.start()
        first = sampler.stop()
        assert first == sampler.max_rss_bytes > 0
        sampler.start()
        second = sampler.stop()
        assert second >= first  # peak never decreases in-process

    def test_synchronous_sample_without_thread(self):
        sampler = PeakRSSSampler()
        value = sampler.sample()
        assert value > 0
        assert sampler.max_rss_bytes == value


class TestChaseProgress:
    def test_stall_reported_once_per_episode(self):
        clock = FakeClock()
        progress = ChaseProgress(stall_threshold=10.0, clock=clock)
        assert progress.check_stall() is None
        clock.advance(11.0)
        stall = progress.check_stall()
        assert stall is not None
        assert stall["idle_seconds"] == pytest.approx(11.0)
        assert stall["threshold"] == 10.0
        # Same episode: quiet.
        clock.advance(100.0)
        assert progress.check_stall() is None
        assert progress.stalls == 1

    def test_recovery_ends_episode_and_allows_next(self):
        clock = FakeClock()
        progress = ChaseProgress(stall_threshold=5.0, clock=clock)
        clock.advance(6.0)
        assert progress.check_stall() is not None
        assert progress.progressed() is True  # recovery
        assert progress.stalled is False
        assert progress.progressed() is False  # plain progress
        clock.advance(6.0)
        assert progress.check_stall() is not None
        assert progress.stalls == 2

    def test_zero_threshold_stalls_immediately(self):
        clock = FakeClock()
        progress = ChaseProgress(stall_threshold=0.0, clock=clock)
        assert progress.check_stall() is not None

    def test_heartbeat_fire_rate_guards_zero_duration(self):
        progress = ChaseProgress(clock=FakeClock())
        beat = progress.heartbeat(0, 1, new_facts=10, frontier=4,
                                  seconds=0.0, total_facts=10)
        assert beat["fire_rate"] == 0.0
        beat = progress.heartbeat(0, 2, new_facts=10, frontier=4,
                                  seconds=2.0, total_facts=20)
        assert beat["fire_rate"] == pytest.approx(5.0)
        assert progress.rounds == 2
        assert progress.facts_derived == 20

    def test_event_rate_limiter(self):
        clock = FakeClock()
        progress = ChaseProgress(heartbeat_interval=5.0, clock=clock)
        assert progress.event_due() is True
        clock.advance(1.0)
        assert progress.event_due() is False
        clock.advance(4.5)
        assert progress.event_due() is True

    def test_zero_interval_always_due(self):
        progress = ChaseProgress(heartbeat_interval=0.0,
                                 clock=FakeClock())
        assert progress.event_due() is True
        assert progress.event_due() is True
