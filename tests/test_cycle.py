"""Anonymization-cycle tests: convergence, minimality, tracker
consistency, explainability, business-knowledge clusters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.anonymize import (
    AnonymizationCycle,
    GroupTracker,
    LocalSuppression,
    RecodeThenSuppress,
    anonymize,
)
from repro.errors import AnonymizationError
from repro.model import (
    MAYBE_MATCH,
    STANDARD,
    DomainHierarchy,
    MicrodataDB,
    survey_schema,
)
from repro.risk import KAnonymityRisk, ReidentificationRisk, SudaRisk
from repro.vadalog.terms import NullFactory


class TestFigure5Walkthrough:
    def test_suppression_cycle_matches_paper(self, cities_db):
        result = anonymize(
            cities_db, KAnonymityRisk(k=2), LocalSuppression()
        )
        assert result.converged
        # The greedy minimum: one null for tuple 1 (Sector), one null
        # covering the Milano/Torino pair.
        assert result.nulls_injected == 2
        freqs = KAnonymityRisk(k=2).frequencies(result.db)
        assert min(freqs) >= 2
        assert freqs[0] == 5  # the Figure 5b frequency for tuple 1

    def test_first_step_suppresses_sector_of_tuple1(self, cities_db):
        result = anonymize(
            cities_db, KAnonymityRisk(k=2), LocalSuppression()
        )
        first = result.steps[0]
        assert first.row == 0
        assert first.attribute == "Sector"

    def test_recoding_cycle_reproduces_fig5b(self, cities_db):
        hierarchy = DomainHierarchy.italian_geography()
        result = anonymize(
            cities_db,
            KAnonymityRisk(k=2),
            RecodeThenSuppress(hierarchy),
        )
        assert result.converged
        # Milano and Torino roll up to North (Figure 5b, tuples 6-7).
        assert result.db.rows[5]["Area"] == "North"
        assert result.db.rows[6]["Area"] == "North"

    def test_trace_explains_every_step(self, cities_db):
        result = anonymize(
            cities_db, KAnonymityRisk(k=2), LocalSuppression()
        )
        for step in result.steps:
            assert "k-anonymity" in step.reason
        story = result.explain_row(0)
        assert "initial" in story and "final" in story


class TestConvergence:
    def test_risk_never_above_threshold_after_convergence(self, small_u):
        result = anonymize(
            small_u, KAnonymityRisk(k=2), LocalSuppression()
        )
        assert result.converged
        final = KAnonymityRisk(k=2).assess(result.db)
        assert final.risky_indices(0.5) == []

    def test_reidentification_cycle(self, ig_db):
        result = anonymize(
            ig_db,
            ReidentificationRisk(),
            LocalSuppression(),
            threshold=0.02,
        )
        assert result.converged
        final = ReidentificationRisk().assess(result.db)
        assert max(final.scores) <= 0.02

    def test_suda_cycle_without_recheck(self, cities_db):
        result = anonymize(
            cities_db, SudaRisk(k=2), LocalSuppression()
        )
        assert result.converged
        final = SudaRisk(k=2).assess(result.db)
        assert final.risky_indices(0.5) == []

    def test_standard_semantics_needs_more_nulls(self, cities_db):
        maybe = anonymize(
            cities_db,
            KAnonymityRisk(k=2),
            LocalSuppression(),
            semantics=MAYBE_MATCH,
        )
        standard = anonymize(
            cities_db,
            KAnonymityRisk(k=2),
            LocalSuppression(),
            semantics=STANDARD,
        )
        assert maybe.nulls_injected < standard.nulls_injected

    def test_non_convergence_reported_not_raised(self):
        # Two rows that can never reach k=3 anonymity (only 2 rows).
        schema = survey_schema(quasi_identifiers=["A"])
        db = MicrodataDB("t", schema, [{"A": 1}, {"A": 2}])
        result = anonymize(db, KAnonymityRisk(k=3), LocalSuppression(),
                           semantics=STANDARD)
        assert not result.converged

    def test_invalid_threshold(self):
        with pytest.raises(AnonymizationError):
            AnonymizationCycle(
                KAnonymityRisk(), LocalSuppression(), threshold=1.5
            )

    def test_original_dataset_untouched(self, cities_db):
        snapshot = [dict(row) for row in cities_db.rows]
        anonymize(cities_db, KAnonymityRisk(k=2), LocalSuppression())
        assert cities_db.rows == snapshot


class TestWithinIterationRecheck:
    def test_recheck_avoids_redundant_suppressions(self, cities_db):
        with_recheck = anonymize(
            cities_db, KAnonymityRisk(k=2), LocalSuppression(),
            recheck=True,
        )
        without = anonymize(
            cities_db, KAnonymityRisk(k=2), LocalSuppression(),
            recheck=False,
        )
        assert with_recheck.nulls_injected <= without.nulls_injected

    def test_recheck_result_still_converges(self, small_v):
        result = anonymize(
            small_v, KAnonymityRisk(k=3), LocalSuppression(),
            recheck=True,
        )
        assert result.converged


class TestBusinessClusters:
    def test_cluster_forces_anonymization_of_safe_tuples(self, cities_db):
        plain = anonymize(
            cities_db, KAnonymityRisk(k=2), LocalSuppression()
        )
        clustered = anonymize(
            cities_db,
            KAnonymityRisk(k=2),
            LocalSuppression(),
            clusters=[{0, 1, 2, 3, 4}],
        )
        assert clustered.nulls_injected >= plain.nulls_injected
        assert clustered.converged

    def test_cluster_risk_in_trace(self, cities_db):
        result = anonymize(
            cities_db,
            KAnonymityRisk(k=2),
            LocalSuppression(),
            clusters=[{0, 1}],
        )
        assert any("cluster" in step.reason for step in result.steps)


class TestGroupTracker:
    def test_stats_match_semantics(self, cities_db):
        tracker = GroupTracker(
            cities_db, cities_db.quasi_identifiers, MAYBE_MATCH
        )
        counts = MAYBE_MATCH.match_counts(cities_db)
        for index in range(len(cities_db)):
            count, _ = tracker.stats(index)
            assert count == counts[index]

    def test_stats_after_suppression(self, cities_db):
        db = cities_db.copy()
        tracker = GroupTracker(db, db.quasi_identifiers, MAYBE_MATCH)
        factory = NullFactory()
        old_key = tracker.before_change(0)
        LocalSuppression().apply(db, 0, "Sector", factory)
        tracker.after_change(0, old_key)
        expected = MAYBE_MATCH.match_counts(db)
        for index in range(len(db)):
            count, _ = tracker.stats(index)
            assert count == expected[index]

    @given(
        st.lists(
            st.tuples(st.integers(0, 6), st.sampled_from(
                ["Area", "Sector", "Employees", "Residential Revenue"]
            )),
            max_size=6,
        )
    )
    def test_tracker_consistency_under_random_edits(
        self, edits
    ):
        """Property: after any sequence of suppressions the tracker's
        per-row stats equal a fresh full computation."""
        from repro.data import city_fragment

        db = city_fragment()
        tracker = GroupTracker(db, db.quasi_identifiers, MAYBE_MATCH)
        factory = NullFactory()
        method = LocalSuppression()
        for row, attribute in edits:
            if attribute not in method.applicable_attributes(db, row):
                continue
            old_key = tracker.before_change(row)
            method.apply(db, row, attribute, factory)
            tracker.after_change(row, old_key)
        expected_counts = MAYBE_MATCH.match_counts(db)
        expected_sums = MAYBE_MATCH.match_weight_sums(db)
        for index in range(len(db)):
            count, weight_sum = tracker.stats(index)
            assert count == expected_counts[index]
            assert weight_sum == pytest.approx(expected_sums[index])


# -- hypothesis: cycle-level invariants ---------------------------------------

@st.composite
def random_db(draw):
    n_rows = draw(st.integers(min_value=2, max_value=14))
    rows = [
        {
            "A": draw(st.integers(0, 2)),
            "B": draw(st.integers(0, 2)),
            "C": draw(st.integers(0, 1)),
            "W": draw(st.integers(1, 50)),
        }
        for _ in range(n_rows)
    ]
    schema = survey_schema(
        quasi_identifiers=["A", "B", "C"], weight="W"
    )
    return MicrodataDB("rand", schema, rows)


class TestCycleProperties:
    @given(random_db(), st.integers(min_value=2, max_value=3))
    def test_cycle_terminates_and_converges(self, db, k):
        result = anonymize(db, KAnonymityRisk(k=k), LocalSuppression())
        # With <= k rows full suppression may still not reach k under
        # any semantics only when rows < k.
        if len(db) >= k:
            assert result.converged
            final = KAnonymityRisk(k=k).assess(result.db)
            assert final.risky_indices(0.5) == []

    @given(random_db())
    def test_nulls_bounded_by_risky_cells(self, db):
        result = anonymize(db, KAnonymityRisk(k=2), LocalSuppression())
        bound = len(result.initial_risky) * len(db.quasi_identifiers)
        assert result.nulls_injected <= max(bound, 0) + len(db.quasi_identifiers)

    @given(random_db())
    def test_weights_and_non_qis_never_touched(self, db):
        result = anonymize(db, KAnonymityRisk(k=2), LocalSuppression())
        for before, after in zip(db.rows, result.db.rows):
            assert before["W"] == after["W"]
