"""The null-isomorphism comparison must itself be trustworthy: a bug
here silently masks (or fabricates) engine/oracle disagreements."""

from repro.testing.compare import (
    ComparisonResult,
    compare_fact_sets,
    diff_summary,
    homomorphically_equivalent,
    homomorphism_exists,
    isomorphic,
)
from repro.vadalog.atoms import Fact
from repro.vadalog.terms import LabelledNull


def fact(predicate, *values):
    return Fact.of(predicate, *values)


def null(label):
    return LabelledNull(label)


class TestIsomorphic:
    def test_identical_sets(self):
        facts = [fact("p", 1, 2), fact("q", "a")]
        assert isomorphic(facts, facts)

    def test_relabelled_nulls(self):
        a = [fact("p", 1, null(1)), fact("q", null(1))]
        b = [fact("p", 1, null(7)), fact("q", null(7))]
        assert isomorphic(a, b)

    def test_nulls_across_multiple_predicates(self):
        # The bijection must be consistent across predicates: ⊥1 plays
        # the role of ⊥3 in p AND q, ⊥2 the role of ⊥4.
        a = [
            fact("p", null(1), null(2)),
            fact("q", null(2)),
            fact("r", null(1), "x"),
        ]
        b = [
            fact("p", null(3), null(4)),
            fact("q", null(4)),
            fact("r", null(3), "x"),
        ]
        assert isomorphic(a, b)

    def test_inconsistent_cross_predicate_roles(self):
        # Same shapes per predicate, but no single bijection works:
        # p says ⊥1↦⊥3, q says ⊥1↦⊥4.
        a = [fact("p", null(1)), fact("q", null(1), "u")]
        b = [fact("p", null(3)), fact("q", null(4), "u")]
        assert not isomorphic(a, b)

    def test_injectivity(self):
        # Two distinct nulls may not collapse onto one target.
        a = [fact("p", null(1), null(2))]
        b = [fact("p", null(5), null(5))]
        assert not isomorphic(a, b)
        # ... and the symmetric direction also fails (not a bijection).
        assert not isomorphic(b, a)

    def test_ground_mismatch(self):
        assert not isomorphic([fact("p", 1)], [fact("p", 2)])

    def test_cardinality_mismatch(self):
        a = [fact("p", null(1))]
        b = [fact("p", null(1)), fact("p", null(2))]
        assert not isomorphic(a, b)

    def test_null_never_maps_to_constant(self):
        assert not isomorphic([fact("p", null(1))], [fact("p", "a")])


class TestHomomorphism:
    def test_null_to_constant_is_allowed(self):
        assert homomorphism_exists([fact("p", null(1))], [fact("p", "a")])
        # ... but not the reverse: constants are fixed.
        assert not homomorphism_exists([fact("p", "a")], [fact("p", null(1))])

    def test_non_injective_collapse_is_allowed(self):
        a = [fact("p", null(1), null(2))]
        b = [fact("p", null(5), null(5))]
        assert homomorphism_exists(a, b)
        assert not homomorphism_exists(b, a)

    def test_equivalence_of_differently_blocked_runs(self):
        # Classic restricted-chase divergence: one run blocked the
        # existential because q(a, b) already provided an image, the
        # other invented q(a, ⊥1).  Hom-equivalent, not isomorphic.
        a = [fact("q", "a", "b")]
        b = [fact("q", "a", "b"), fact("q", "a", null(1))]
        assert homomorphically_equivalent(a, b)
        assert not isomorphic(a, b)

    def test_different_certain_answers_are_not_equivalent(self):
        a = [fact("q", "a", "b")]
        b = [fact("q", "a", "b"), fact("q", "c", null(1))]
        assert not homomorphically_equivalent(a, b)


class TestCompareFactSets:
    def test_verdict_ladder(self):
        same = [fact("p", 1, null(1))]
        assert compare_fact_sets(same, same).verdict == ComparisonResult.EQUAL

        renamed = [fact("p", 1, null(9))]
        assert (
            compare_fact_sets(same, renamed).verdict
            == ComparisonResult.ISOMORPHIC
        )

        redundant = [fact("p", 1, null(1)), fact("p", 1, null(2))]
        assert (
            compare_fact_sets(same, redundant).verdict
            == ComparisonResult.HOM_EQUIVALENT
        )

        other = [fact("p", 2, null(1))]
        result = compare_fact_sets(same, other)
        assert result.verdict == ComparisonResult.DIFFERENT
        assert not result.agree

    def test_agree_covers_all_non_different_verdicts(self):
        assert ComparisonResult(ComparisonResult.EQUAL).agree
        assert ComparisonResult(ComparisonResult.ISOMORPHIC).agree
        assert ComparisonResult(ComparisonResult.HOM_EQUIVALENT).agree
        assert not ComparisonResult(ComparisonResult.DIFFERENT).agree

    def test_diff_summary_names_both_sides(self):
        summary = diff_summary([fact("p", 1)], [fact("p", 2)])
        assert "only in left: p(1)" in summary
        assert "only in right: p(2)" in summary
