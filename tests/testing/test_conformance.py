"""The conformance harness: generator guarantees, runner verdicts,
minimization and seed artifacts.

The hypothesis property drives the generator through shrinkable
``st.randoms(use_true_random=False)`` instances, so a failing example
shrinks to a small random stream rather than an opaque seed.
"""

import json

from hypothesis import given
from hypothesis import strategies as st

from repro.testing.conformance import (
    ConformanceOutcome,
    minimize_case,
    replay_artifact,
    run_conformance,
    run_one,
    write_artifact,
)
from repro.testing.generator import GeneratorConfig, generate_program
from repro.vadalog import Program
from repro.vadalog.negation import check_negation_safety
from repro.vadalog.wardedness import check_wardedness

import random


class TestGenerator:
    def test_programs_are_warded_and_stratifiable(self):
        config = GeneratorConfig()
        for seed in range(120):
            program = generate_program(random.Random(seed), config)
            check_wardedness(program.rules)  # raises on violation
            check_negation_safety(program.rules)

    def test_fact_and_rule_budgets(self):
        config = GeneratorConfig()
        for seed in range(60):
            program = generate_program(random.Random(seed), config)
            assert (
                config.min_facts
                <= len(program.facts)
                <= config.max_facts
            )
            assert len(program.rules) >= 1
            assert all(fact.is_ground for fact in program.facts)

    def test_generation_is_deterministic_in_the_seed(self):
        config = GeneratorConfig()
        first = generate_program(random.Random(42), config)
        second = generate_program(random.Random(42), config)
        assert first.to_source() == second.to_source()

    def test_config_roundtrips_through_dict(self):
        config = GeneratorConfig(p_negation=0.5, max_rules=9)
        restored = GeneratorConfig.from_dict(config.to_dict())
        assert restored == config


class TestRunOne:
    def test_fixed_seed_batch_has_no_disagreements(self):
        report = run_conformance(base_seed=77000, examples=40)
        assert report.executed == 40
        assert report.disagreements == []
        # The batch must actually exercise both engines, not just skip.
        agreed = sum(
            report.counts.get(status, 0)
            for status in ConformanceOutcome.AGREEMENT_STATUSES
        )
        assert agreed >= 35

    @given(rng=st.randoms(use_true_random=False))
    def test_generated_pair_agrees(self, rng):
        program = generate_program(rng, GeneratorConfig())
        outcome = run_one(program)
        assert not outcome.is_disagreement, outcome.detail

    @given(rng=st.randoms(use_true_random=False))
    def test_generated_pair_agrees_under_isomorphic_termination(self, rng):
        program = generate_program(rng, GeneratorConfig())
        outcome = run_one(program, termination="isomorphic")
        assert not outcome.is_disagreement, outcome.detail

    def test_disagreement_classification(self):
        # Artificial "oracle" check via statuses: an unknown status is a
        # disagreement, every agreement/skip status is not.
        for status in ConformanceOutcome.AGREEMENT_STATUSES:
            assert not ConformanceOutcome(status).is_disagreement
        for status in ConformanceOutcome.SKIP_STATUSES:
            assert not ConformanceOutcome(status).is_disagreement
        assert ConformanceOutcome("disagree").is_disagreement


class TestMinimization:
    def test_minimize_keeps_failure_and_shrinks(self):
        program = generate_program(random.Random(3), GeneratorConfig())

        # A synthetic failure predicate: "program still derives
        # something beyond its facts" — monotone enough to shrink.
        # preflight=False: generated programs carry sensitivity seeding
        # and may trip VDL070 by design, which is not this failure.
        def still_failing(candidate):
            result = candidate.run(provenance=False, preflight=False)
            return len(set(result.facts())) > len(candidate.facts)

        if not still_failing(program):  # pragma: no cover — seed-stable
            return
        minimized = minimize_case(program, still_failing)
        assert still_failing(minimized)
        assert len(minimized.rules) + len(minimized.facts) <= len(
            program.rules
        ) + len(program.facts)


class TestArtifacts:
    def test_artifact_roundtrip(self, tmp_path):
        config = GeneratorConfig()
        seed = 77001
        program = generate_program(random.Random(seed), config)
        outcome = run_one(program)
        outcome.seed = seed
        path = write_artifact(
            str(tmp_path),
            seed,
            77000,
            config,
            outcome,
            program,
            minimized=None,
            max_rounds=400,
            max_facts=4000,
            termination="restricted",
        )
        payload = json.loads(open(path).read())
        assert payload["seed"] == seed
        assert "--replay" in payload["replay"]
        # Replaying reproduces the same verdict from the artifact alone.
        replayed = replay_artifact(path)
        assert replayed.status == outcome.status

    def test_replay_prefers_minimized_program(self, tmp_path):
        # Hand-craft an artifact whose full program disagrees with its
        # minimized program; replay must use the minimized one.
        path = tmp_path / "artifact.json"
        payload = {
            "seed": 1,
            "base_seed": 1,
            "config": GeneratorConfig().to_dict(),
            "max_rounds": 100,
            "max_facts": 1000,
            "termination": "restricted",
            "status": "equal",
            "detail": "",
            "program": 'e(1).\np(X) :- e(X).\nq(X) :- p(X).',
            "minimized_program": "e(1).\np(X) :- e(X).",
            "replay": "",
        }
        path.write_text(json.dumps(payload))
        outcome = replay_artifact(str(path))
        assert outcome.status == "equal"


def test_program_roundtrips_through_renderer():
    # The artifact format embeds rendered source; parsing it back must
    # yield the same evaluation result.
    config = GeneratorConfig()
    for seed in range(40):
        program = generate_program(random.Random(seed), config)
        reparsed = Program.parse(program.to_source())
        assert run_one(reparsed).status == run_one(program).status


class TestEngineVariant:
    """The engine_variant knob: planned, legacy, and three-way."""

    def test_unknown_variant_rejected(self):
        program = generate_program(random.Random(5), GeneratorConfig())
        try:
            run_one(program, engine_variant="quantum")
        except ValueError as exc:
            assert "quantum" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_legacy_variant_agrees_with_oracle(self):
        report = run_conformance(
            base_seed=77100, examples=15, engine_variant="legacy"
        )
        assert report.disagreements == []

    def test_both_variant_three_way_agreement(self):
        report = run_conformance(
            base_seed=77200, examples=15, engine_variant="both"
        )
        assert report.disagreements == []

    def test_artifact_records_engine_variant(self, tmp_path):
        config = GeneratorConfig()
        program = generate_program(random.Random(77001), config)
        outcome = run_one(program, engine_variant="both")
        outcome.seed = 77001
        path = write_artifact(
            str(tmp_path), 77001, 77000, config, outcome, program,
            minimized=None, max_rounds=400, max_facts=4000,
            termination="restricted", engine_variant="both",
        )
        payload = json.loads(open(path).read())
        assert payload["engine_variant"] == "both"
        replayed = replay_artifact(path)
        assert replayed.status == outcome.status

    def test_planned_vs_legacy_disagreement_is_caught(self):
        # Sabotage the planned path via a monkeypatched engine run to
        # prove the 'both' variant actually compares the two paths.
        from repro.testing import conformance as mod
        from repro.vadalog.atoms import Atom

        program = generate_program(random.Random(9), GeneratorConfig())
        real = mod._run_engine

        def crooked(prog, max_rounds, max_facts, termination,
                    use_plans=True, backend="dict", **kwargs):
            run = real(prog, max_rounds, max_facts, termination,
                       use_plans=use_plans, backend=backend, **kwargs)
            if use_plans and run.kind == "ok":
                run.facts = run.facts | {Atom.of("smuggled", 1)}
            return run

        mod._run_engine = crooked
        try:
            outcome = run_one(program, engine_variant="both")
        finally:
            mod._run_engine = real
        assert outcome.is_disagreement
        assert "planned" in outcome.detail


class TestParallelismMode:
    """The parallelism knob: bit-identical parallel/serial gating."""

    def test_unknown_mode_rejected(self):
        program = generate_program(random.Random(5), GeneratorConfig())
        try:
            run_one(program, parallelism="turbo")
        except ValueError as exc:
            assert "turbo" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_both_mode_gates_parallel_before_oracle(self):
        report = run_conformance(
            base_seed=78100, examples=15, parallelism="both"
        )
        assert report.disagreements == []

    def test_parallel_mode_agrees_with_oracle(self):
        report = run_conformance(
            base_seed=78200, examples=15, parallelism="parallel"
        )
        assert report.disagreements == []

    def test_artifact_records_parallelism(self, tmp_path):
        config = GeneratorConfig()
        program = generate_program(random.Random(78001), config)
        outcome = run_one(program, parallelism="both")
        outcome.seed = 78001
        path = write_artifact(
            str(tmp_path), 78001, 78000, config, outcome, program,
            minimized=None, max_rounds=400, max_facts=4000,
            termination="restricted", engine_variant="planned",
            backend="dict", parallelism="both",
        )
        payload = json.loads(open(path).read())
        assert payload["parallelism"] == "both"
        replayed = replay_artifact(path)
        assert replayed.status == outcome.status

    def test_parallel_divergence_is_caught(self):
        # Sabotage the parallel lane: a fact smuggled only into
        # parallel runs must surface as parallel-diverged, proving
        # the gate actually compares the two execution modes.
        from repro.testing import conformance as mod
        from repro.vadalog.atoms import Atom

        program = generate_program(random.Random(9), GeneratorConfig())
        real = mod._run_engine

        def crooked(prog, max_rounds, max_facts, termination,
                    use_plans=True, backend="dict", parallelism=0,
                    provenance=False):
            run = real(prog, max_rounds, max_facts, termination,
                       use_plans=use_plans, backend=backend,
                       parallelism=parallelism, provenance=provenance)
            if parallelism > 1 and run.kind == "ok":
                run.facts = run.facts | {Atom.of("smuggled", 1)}
            return run

        mod._run_engine = crooked
        try:
            outcome = run_one(program, parallelism="both")
        finally:
            mod._run_engine = real
        assert outcome.status == "parallel-diverged"
        assert outcome.is_disagreement

    def test_round_skew_is_caught(self):
        # Same facts, different round count: weaker harnesses would
        # call that agreement; the bit-identical gate must not.
        from repro.testing import conformance as mod

        program = generate_program(random.Random(9), GeneratorConfig())
        real = mod._run_engine

        def skewed(prog, max_rounds, max_facts, termination,
                   use_plans=True, backend="dict", parallelism=0,
                   provenance=False):
            run = real(prog, max_rounds, max_facts, termination,
                       use_plans=use_plans, backend=backend,
                       parallelism=parallelism, provenance=provenance)
            if parallelism > 1 and run.kind == "ok":
                run.rounds = (run.rounds or 0) + 1
            return run

        mod._run_engine = skewed
        try:
            outcome = run_one(program, parallelism="both")
        finally:
            mod._run_engine = real
        assert outcome.status == "parallel-diverged"
        assert "round" in outcome.detail
