"""VadaSA facade tests and an end-to-end integration walkthrough."""

import pytest

from repro import AttributeCategory, VadaSA
from repro.business import OwnershipGraph
from repro.data import (
    city_fragment,
    generate_dataset,
    inflation_growth_fragment,
)
from repro.errors import ReproError, SchemaError
from repro.model import DomainHierarchy
from repro.risk import KAnonymityRisk


class TestRegistration:
    def test_register_and_assess(self, ig_db):
        vada = VadaSA()
        vada.register(ig_db)
        report = vada.assess(ig_db.name, measure="reidentification")
        assert report.scores[14] == pytest.approx(1 / 30)

    def test_unknown_dataset(self):
        vada = VadaSA()
        with pytest.raises(SchemaError):
            vada.assess("ghost")

    def test_register_uncategorized_complete(self):
        vada = VadaSA()
        db = inflation_growth_fragment()
        result = vada.register_uncategorized(
            "raw",
            [(a, "") for a in db.schema.attributes],
            db.rows,
        )
        assert result.is_complete
        report = vada.assess("raw", measure="k-anonymity", k=2)
        assert len(report) == len(db)

    def test_register_uncategorized_pending_then_resolve(self):
        vada = VadaSA()
        result = vada.register_uncategorized(
            "raw",
            [("Area", ""), ("Zorblax", "")],
            [{"Area": "North", "Zorblax": 1}],
        )
        assert "Zorblax" in result.pending
        with pytest.raises(SchemaError):
            vada.dataset("raw")
        vada.dictionary.set_category(
            "raw", "Zorblax", AttributeCategory.NON_IDENTIFYING
        )
        db = vada.complete_registration("raw")
        assert len(db) == 1


class TestAnonymizeAndShare:
    def test_anonymize_defaults(self, cities_db):
        vada = VadaSA()
        vada.register(cities_db)
        result = vada.anonymize(cities_db.name, measure="k-anonymity",
                                k=2)
        assert result.converged
        assert result.nulls_injected == 2

    def test_share_drops_identifiers(self, cities_db):
        vada = VadaSA()
        vada.register(cities_db)
        shared = vada.share(cities_db.name, measure="k-anonymity", k=2)
        assert "Id" not in shared.schema.attributes

    def test_share_raises_on_non_convergence(self):
        from repro.model import MicrodataDB, survey_schema

        schema = survey_schema(quasi_identifiers=["A"])
        db = MicrodataDB("tiny", schema, [{"A": 1}, {"A": 2}])
        vada = VadaSA(semantics="standard")
        vada.register(db)
        with pytest.raises(ReproError):
            vada.share("tiny", measure="k-anonymity", k=3)

    def test_recoding_method_uses_installed_hierarchy(self, cities_db):
        vada = VadaSA(hierarchy=DomainHierarchy.italian_geography())
        vada.register(cities_db)
        result = vada.anonymize(
            cities_db.name,
            measure="k-anonymity",
            method="recode-then-suppress",
            k=2,
        )
        assert result.converged
        assert result.db.rows[5]["Area"] == "North"

    def test_business_knowledge_requires_graph(self, cities_db):
        vada = VadaSA()
        vada.register(cities_db)
        with pytest.raises(ReproError):
            vada.anonymize(
                cities_db.name, use_business_knowledge=True, k=2
            )

    def test_business_knowledge_cycle(self, cities_db):
        vada = VadaSA()
        vada.register(cities_db)
        ids = [row["Id"] for row in cities_db.rows]
        vada.set_ownership(OwnershipGraph([(ids[1], ids[2], 0.9)]))
        result = vada.anonymize(
            cities_db.name,
            measure="k-anonymity",
            k=2,
            use_business_knowledge=True,
        )
        assert result.converged

    def test_threshold_override(self, ig_db):
        vada = VadaSA()
        vada.register(ig_db)
        result = vada.anonymize(
            ig_db.name,
            measure="reidentification",
            threshold=0.02,
        )
        assert result.converged
        final = vada.assess(ig_db.name, measure="reidentification")
        # Assessment of the *original* dataset is unchanged.
        assert max(final.scores) > 0.02


class TestEndToEnd:
    def test_full_pipeline_on_synthetic_data(self):
        """Register -> categorize -> assess -> anonymize -> attack."""
        from repro.attack import (
            LinkageAttacker,
            evaluate_attack,
            ground_truth,
        )
        from repro.data import generate_oracle

        db = generate_dataset("R6A4U", scale=20, seed=3)  # 300 rows
        oracle = generate_oracle(db, max_population=40_000)
        vada = VadaSA()
        vada.register(db)

        report = vada.assess(db.name, measure="k-anonymity", k=2)
        risky = report.risky_indices(0.5)
        assert risky

        result = vada.anonymize(db.name, measure="k-anonymity", k=2)
        assert result.converged

        truth = ground_truth(db, oracle)
        rows = [r for r in risky if r in truth]
        attacker = LinkageAttacker(oracle)
        before = evaluate_attack(attacker, db, truth, rows=rows)
        after = evaluate_attack(attacker, result.db, truth, rows=rows)
        assert after.mean_cohort >= before.mean_cohort
