"""Benchmark-regression gate tests (``benchmarks/regress.py``) run
against stub workloads and a temp history file — including the
acceptance self-test: an injected 2x slowdown must trip the gate."""

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"


@pytest.fixture(scope="module")
def regress():
    sys.path.insert(0, str(BENCHMARKS))
    try:
        import regress

        yield regress
    finally:
        sys.path.remove(str(BENCHMARKS))


@pytest.fixture
def stub_workloads(regress, monkeypatch):
    """Replace the real (seconds-long) workloads with deterministic
    stubs measuring exactly 1.0s / 2 metrics."""
    monkeypatch.setattr(regress, "WORKLOADS", {
        "stub": lambda: {"seconds": 1.0},
        "twin": lambda: {"seconds": 0.5, "rows": 100.0},
    })


def seed(regress, path, tag="stub", values=(1.0,), metric="seconds",
         scale=None):
    from bench_tracker import record_history_entry
    from paperfig import SCALE

    for value in values:
        entry_path = record_history_entry(
            tag, {metric: value}, path=path
        )
        if scale is not None:
            history = json.loads(Path(entry_path).read_text())
            history[-1]["scale"] = scale
            Path(entry_path).write_text(json.dumps(history))
    return SCALE


class TestHistory:
    def test_record_appends_entries(self, regress, stub_workloads,
                                    tmp_path, capsys):
        history_path = tmp_path / "history.json"
        code = regress.main(["record", "--history", str(history_path),
                             "--workloads", "stub", "twin"])
        assert code == 0
        history = regress.load_history(history_path)
        assert [e["tag"] for e in history] == ["stub", "twin"]
        entry = history[0]
        assert entry["metrics"] == {"seconds": 1.0}
        assert entry["source"] == "regress-record"
        assert "recorded_at" in entry and "scale" in entry
        assert "recorded stub" in capsys.readouterr().out

    def test_load_history_missing_file(self, regress, tmp_path):
        assert regress.load_history(tmp_path / "nope.json") == []

    def test_load_history_coerces_single_entry(self, regress,
                                               tmp_path):
        path = tmp_path / "one.json"
        path.write_text(json.dumps({"tag": "x", "metrics": {}}))
        assert regress.load_history(path) == [
            {"tag": "x", "metrics": {}}
        ]


class TestBaselineFor:
    def history(self, regress, tmp_path, values):
        path = tmp_path / "history.json"
        scale = seed(regress, path, values=values)
        return regress.load_history(path), scale

    def test_median_min_last(self, regress, tmp_path):
        history, scale = self.history(regress, tmp_path,
                                      (1.0, 3.0, 2.0))
        args = ("stub", "seconds")
        assert regress.baseline_for(history, *args, scale=scale) == 2.0
        assert regress.baseline_for(history, *args, scale=scale,
                                    mode="min") == 1.0
        assert regress.baseline_for(history, *args, scale=scale,
                                    mode="last") == 2.0

    def test_window_keeps_newest(self, regress, tmp_path):
        history, scale = self.history(
            regress, tmp_path, (100.0, 1.0, 1.0, 1.0)
        )
        assert regress.baseline_for(history, "stub", "seconds",
                                    scale=scale, window=3) == 1.0

    def test_scale_filtering(self, regress, tmp_path):
        path = tmp_path / "history.json"
        scale = seed(regress, path, values=(9.0,), scale=12345)
        seed(regress, path, values=(1.0,))
        history = regress.load_history(path)
        assert regress.baseline_for(history, "stub", "seconds",
                                    scale=scale) == 1.0
        assert regress.baseline_for(history, "stub", "seconds",
                                    scale=12345) == 9.0

    def test_no_matching_entries(self, regress, tmp_path):
        history, scale = self.history(regress, tmp_path, (1.0,))
        assert regress.baseline_for(history, "other", "seconds",
                                    scale=scale) is None
        assert regress.baseline_for(history, "stub", "rows",
                                    scale=scale) is None


class TestCheck:
    def seeded_path(self, regress, tmp_path):
        path = tmp_path / "history.json"
        seed(regress, path, values=(1.0, 1.0, 1.0))
        return path

    def test_clean_check_passes(self, regress, stub_workloads,
                                tmp_path, capsys):
        path = self.seeded_path(regress, tmp_path)
        code = regress.main(["check", "--history", str(path),
                             "--workloads", "stub"])
        assert code == 0
        assert "[ok]" in capsys.readouterr().out

    def test_injected_slowdown_trips_the_gate(self, regress,
                                              stub_workloads,
                                              tmp_path, capsys):
        """Acceptance criterion: a 2x slowdown vs the seeded baseline
        exits non-zero at the default threshold."""
        path = self.seeded_path(regress, tmp_path)
        code = regress.main(["check", "--history", str(path),
                             "--workloads", "stub",
                             "--inject-slowdown", "2.0"])
        assert code == 1
        captured = capsys.readouterr()
        assert "[REGRESSION]" in captured.out
        assert "regression(s) detected" in captured.err

    def test_warn_only_reports_but_passes(self, regress,
                                          stub_workloads, tmp_path,
                                          capsys):
        path = self.seeded_path(regress, tmp_path)
        code = regress.main(["check", "--history", str(path),
                             "--workloads", "stub",
                             "--inject-slowdown", "2.0",
                             "--warn-only"])
        assert code == 0
        assert "[REGRESSION]" in capsys.readouterr().out

    def test_threshold_is_configurable(self, regress, stub_workloads,
                                       tmp_path):
        path = self.seeded_path(regress, tmp_path)
        assert regress.main(["check", "--history", str(path),
                             "--workloads", "stub",
                             "--inject-slowdown", "2.0",
                             "--threshold", "3.0"]) == 0

    def test_no_baseline_passes_with_note(self, regress,
                                          stub_workloads, tmp_path,
                                          capsys):
        path = tmp_path / "empty.json"
        code = regress.main(["check", "--history", str(path),
                             "--workloads", "stub"])
        assert code == 0
        captured = capsys.readouterr()
        assert "no baseline" in captured.out
        assert "seed them" in captured.err

    def test_update_appends_measurements(self, regress,
                                         stub_workloads, tmp_path):
        path = self.seeded_path(regress, tmp_path)
        before = len(regress.load_history(path))
        regress.main(["check", "--history", str(path),
                      "--workloads", "stub", "--update"])
        history = regress.load_history(path)
        assert len(history) == before + 1
        assert history[-1]["source"] == "regress-check"

    def test_report_file(self, regress, stub_workloads, tmp_path):
        path = self.seeded_path(regress, tmp_path)
        report = tmp_path / "report.json"
        regress.main(["check", "--history", str(path),
                      "--workloads", "stub",
                      "--inject-slowdown", "2.0", "--warn-only",
                      "--report", str(report)])
        [entry] = json.loads(report.read_text())
        assert entry["tag"] == "stub"
        assert entry["ratio"] == pytest.approx(2.0)
        assert entry["regressed"] is True

    def test_unknown_workload_fails_loudly(self, regress,
                                           stub_workloads, tmp_path):
        with pytest.raises(SystemExit, match="unknown workload"):
            regress.main(["check",
                          "--history", str(tmp_path / "h.json"),
                          "--workloads", "nope"])


class TestMemoryGate:
    """``max_rss_bytes`` is gated exactly like latency: check()
    auto-compares every metric a workload reports."""

    def seeded_path(self, regress, tmp_path):
        from bench_tracker import record_history_entry

        path = tmp_path / "history.json"
        for _ in range(3):
            record_history_entry(
                "memstub",
                {"seconds": 1.0, "max_rss_bytes": 100_000_000.0},
                path=path,
            )
        return path

    @pytest.fixture
    def mem_workload(self, regress, monkeypatch):
        monkeypatch.setattr(regress, "WORKLOADS", {
            "memstub": lambda: {"seconds": 1.0,
                                "max_rss_bytes": 100_000_000.0},
        })

    def test_rss_within_threshold_passes(self, regress, mem_workload,
                                         tmp_path, capsys):
        path = self.seeded_path(regress, tmp_path)
        assert regress.main(["check", "--history", str(path),
                             "--workloads", "memstub"]) == 0
        out = capsys.readouterr().out
        assert "memstub/max_rss_bytes" in out
        assert "[ok]" in out

    def test_rss_blowup_trips_the_gate(self, regress, mem_workload,
                                       tmp_path, capsys):
        path = self.seeded_path(regress, tmp_path)
        code = regress.main(["check", "--history", str(path),
                             "--workloads", "memstub",
                             "--inject-slowdown", "2.0"])
        assert code == 1
        assert "memstub/max_rss_bytes" in capsys.readouterr().out

    def test_real_memory_workloads_sample_rss(self, regress,
                                              monkeypatch):
        """figure7e/figure7f report max_rss_bytes without running the
        full figure generator (stub the row builders)."""
        import bench_fig7e_scalability_size as fig7e

        monkeypatch.setattr(fig7e, "figure7e_rows",
                            lambda: [{"stub": True}])
        metrics = regress.WORKLOADS["figure7e"]()
        assert set(metrics) == {"seconds", "max_rss_bytes"}
        assert metrics["max_rss_bytes"] > 0

    def test_baseline_for_ignores_entries_without_rss(self, regress,
                                                      tmp_path):
        # Pre-PR history entries lack max_rss_bytes; they must not
        # poison the new metric's baseline.
        path = tmp_path / "history.json"
        seed(regress, path, tag="memstub", values=(1.0,))
        scale = seed(regress, path, tag="memstub", values=(5.0,),
                     metric="max_rss_bytes")
        history = regress.load_history(path)
        assert regress.baseline_for(history, "memstub",
                                    "max_rss_bytes", scale=scale) == 5.0


class TestComparison:
    def test_ratio_none_without_baseline(self, regress):
        comparison = regress.Comparison("t", "seconds", 1.0, None, 1.75)
        assert comparison.ratio is None
        assert comparison.regressed is False
        assert "no baseline" in comparison.render()

    def test_regressed_only_past_threshold(self, regress):
        at = regress.Comparison("t", "s", 1.75, 1.0, 1.75)
        past = regress.Comparison("t", "s", 1.76, 1.0, 1.75)
        assert at.regressed is False
        assert past.regressed is True

    def test_real_workload_registry_shape(self, regress):
        assert set(regress.WORKLOADS) == {
            "figure7e", "figure7f", "smoke_telemetry",
            "engine_fig7e", "engine_fig7f",
        }
        assert all(callable(w) for w in regress.WORKLOADS.values())
