"""Telemetry subsystem tests: registry instruments, span trees, sinks,
instrumented chase/cycle runs, and the disabled-mode fast path."""

import json

import pytest

from repro import telemetry
from repro.telemetry import (
    JSONLFileSink,
    MetricsRegistry,
    RingBufferSink,
    Tracer,
    format_snapshot,
    metric_key,
    profile_block,
    profiled,
)
from repro.vadalog import Program


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every test starts and ends with telemetry off and empty."""
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


TRANSITIVE = """
edge(a, b). edge(b, c). edge(c, d).
@label("base").
path(X, Y) :- edge(X, Y).
@label("step").
path(X, Z) :- path(X, Y), edge(Y, Z).
@label("mint").
manager(X, M) :- edge(X, _).
"""


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.snapshot()["counters"]["hits"] == 5

    def test_labelled_counters_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("firings", rule="r1").inc(2)
        registry.counter("firings", rule="r2").inc(3)
        counters = registry.snapshot()["counters"]
        assert counters["firings{rule=r1}"] == 2
        assert counters["firings{rule=r2}"] == 3

    def test_metric_key_sorts_labels(self):
        assert metric_key("m", {"b": 1, "a": 2}) == "m{a=2,b=1}"
        assert metric_key("m", {}) == "m"

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("size").set(10)
        registry.gauge("size").set(3)
        assert registry.snapshot()["gauges"]["size"] == 3

    def test_histogram_percentiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_ns")
        for value in range(1, 101):
            histogram.observe(float(value))
        data = registry.snapshot()["histograms"]["latency_ns"]
        assert data["count"] == 100
        assert data["min"] == 1.0 and data["max"] == 100.0
        assert data["mean"] == pytest.approx(50.5)
        assert 49 <= data["p50"] <= 52
        assert 94 <= data["p95"] <= 97
        assert 98 <= data["p99"] <= 100

    def test_histogram_reservoir_keeps_exact_totals(self):
        from repro.telemetry.metrics import RESERVOIR_SIZE

        registry = MetricsRegistry()
        histogram = registry.histogram("big")
        n = RESERVOIR_SIZE + 500
        for value in range(n):
            histogram.observe(1.0)
        data = histogram.to_dict()
        assert data["count"] == n
        assert data["sum"] == pytest.approx(float(n))

    def test_merge_adds_counters_and_samples(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("c").inc(1)
        right.counter("c").inc(2)
        right.counter("only_right").inc(7)
        left.histogram("h").observe(1.0)
        right.histogram("h").observe(3.0)
        left.merge(right)
        snapshot = left.snapshot()
        assert snapshot["counters"]["c"] == 3
        assert snapshot["counters"]["only_right"] == 7
        assert snapshot["histograms"]["h"]["count"] == 2
        assert snapshot["histograms"]["h"]["sum"] == pytest.approx(4.0)

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(1.0)
        registry.reset()
        assert len(registry) == 0

    def test_format_snapshot_mentions_metrics(self):
        registry = MetricsRegistry()
        registry.counter("chase.rule_firings", rule="r2").inc(9)
        registry.histogram("chase.run_ns").observe(1234.0)
        text = format_snapshot(registry.snapshot())
        assert "chase.rule_firings{rule=r2} = 9" in text
        assert "chase.run_ns" in text


class TestTracer:
    def test_span_nesting_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        spans = {s["name"]: s for s in tracer.spans()}
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["outer"]["parent_id"] is None
        # children finish before parents, so durations nest
        assert (spans["outer"]["duration_ns"]
                >= spans["inner"]["duration_ns"])

    def test_span_attributes(self):
        tracer = Tracer()
        with tracer.span("work", kind="test") as span:
            span.set(result=42)
        (record,) = tracer.spans("work")
        assert record["attributes"] == {"kind": "test", "result": 42}

    def test_exception_marks_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (record,) = tracer.spans("boom")
        assert record["attributes"]["error"] == "ValueError"

    def test_ring_buffer_capacity(self):
        sink = RingBufferSink(capacity=3)
        tracer = Tracer(sinks=[sink])
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(sink) == 3
        assert [s["name"] for s in sink.spans()] == ["s2", "s3", "s4"]

    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sinks=[JSONLFileSink(str(path))])
        with tracer.span("a", step=1):
            with tracer.span("b"):
                pass
        tracer.close()
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["b", "a"]
        assert records[0]["parent_id"] == records[1]["span_id"]
        assert all(r["duration_ns"] >= 0 for r in records)


class TestProfilingHooks:
    def test_profiled_decorator_records_histogram(self):
        telemetry.enable()

        @profiled("work.unit")
        def unit():
            return 7

        assert unit() == 7
        data = telemetry.snapshot()["histograms"]["work.unit_ns"]
        assert data["count"] == 1
        assert data["sum"] > 0

    def test_profiled_disabled_records_nothing(self):
        @profiled("work.off")
        def unit():
            return 7

        assert unit() == 7
        assert telemetry.snapshot()["histograms"] == {}

    def test_profile_block(self):
        telemetry.enable()
        with profile_block("block", phase="x"):
            pass
        assert "block_ns{phase=x}" in telemetry.snapshot()["histograms"]


class TestInstrumentedChase:
    def test_chase_run_records_required_metrics(self):
        telemetry.enable()
        result = Program.parse(TRANSITIVE).run()
        stats = result.stats
        assert stats["rounds"] >= 2
        counters = stats["telemetry"]["counters"]
        histograms = stats["telemetry"]["histograms"]
        # per-rule firing counts
        assert counters["chase.rule_firings{rule=base}"] == 3
        assert counters["chase.rule_firings{rule=step}"] >= 1
        # nulls introduced + iteration count
        assert counters["chase.nulls_introduced"] == 3
        assert counters["chase.iterations"] == stats["rounds"]
        # at least three timing histograms, all populated
        timing = [k for k in histograms if k.endswith("_ns")]
        assert len(timing) >= 3
        assert all(histograms[k]["count"] > 0 for k in timing)

    def test_chase_spans_form_a_tree(self):
        telemetry.enable()
        Program.parse(TRANSITIVE).run()
        spans = telemetry.tracer().spans()
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        assert len(by_name["chase.run"]) == 1
        run_id = by_name["chase.run"][0]["span_id"]
        assert all(s["parent_id"] == run_id
                   for s in by_name["chase.stratum"])
        stratum_ids = {s["span_id"] for s in by_name["chase.stratum"]}
        assert all(s["parent_id"] in stratum_ids
                   for s in by_name["chase.round"])

    def test_run_metrics_merge_into_global_registry(self):
        telemetry.enable()
        Program.parse(TRANSITIVE).run()
        Program.parse(TRANSITIVE).run()
        counters = telemetry.snapshot()["counters"]
        assert counters["chase.runs"] == 2
        assert counters["chase.rule_firings{rule=base}"] == 6
        # store-level instruments record globally too
        assert counters["store.adds"] > 0

    def test_provenance_stats_by_rule(self):
        telemetry.enable()
        result = Program.parse(TRANSITIVE).run()
        stats = result.provenance.stats()
        assert stats["derivations"] == len(result.provenance)
        assert stats["by_rule"]["base"] == 3
        counters = telemetry.snapshot()["counters"]
        assert counters["provenance.derivations{rule=base}"] == 3


class TestDisabledFastPath:
    def test_no_spans_and_no_metrics_recorded(self):
        result = Program.parse(TRANSITIVE).run()
        assert telemetry.tracer().spans() == []
        snapshot = telemetry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["histograms"] == {}
        # ChaseResult carries no telemetry section
        assert "telemetry" not in result.stats
        # ...but the basic stats are always there
        assert result.stats["nulls_introduced"] == 3

    def test_disabled_run_equals_enabled_run(self):
        plain = Program.parse(TRANSITIVE).run()
        telemetry.enable()
        observed = Program.parse(TRANSITIVE).run()
        assert (set(map(str, plain.facts()))
                == set(map(str, observed.facts())))
        assert plain.rounds == observed.rounds

    def test_span_helper_returns_null_span(self):
        from repro.telemetry.tracing import _NullSpan

        span = telemetry.span("anything")
        assert isinstance(span, _NullSpan)
        with span as inner:
            inner.set(ignored=True)  # no-op, no error


class TestEnableDisable:
    def test_enable_with_trace_path_writes_jsonl(self, tmp_path):
        path = tmp_path / "chase.jsonl"
        telemetry.enable(trace_path=str(path))
        Program.parse(TRANSITIVE).run()
        telemetry.disable()
        records = [json.loads(line)
                   for line in path.read_text().strip().splitlines()]
        assert any(r["name"] == "chase.run" for r in records)

    def test_reset_drops_recorded_state(self):
        telemetry.enable()
        Program.parse(TRANSITIVE).run()
        assert telemetry.snapshot()["counters"]
        telemetry.reset()
        assert telemetry.snapshot()["counters"] == {}
        assert telemetry.tracer().spans() == []
