"""Routing-table and standard-externals tests."""

import pytest

from repro.vadalog import Program, standard_registry
from repro.vadalog.atoms import Atom
from repro.vadalog.routing import (
    RoutingTable,
    fifo_strategy,
    less_significant_first,
    most_risky_first,
    sort_by_variable,
)
from repro.vadalog.rules import Rule
from repro.vadalog.terms import Constant, Variable


def binding(**values):
    return {Variable(k): Constant(v) for k, v in values.items()}


def dummy_rule(label=None):
    from repro.vadalog.atoms import Literal

    return Rule(
        [Atom("h", (Variable("X"),))],
        [Literal(Atom("b", (Variable("X"),)))],
        label=label,
    )


class TestStrategies:
    def test_fifo_preserves(self):
        rows = [binding(X=3), binding(X=1)]
        assert fifo_strategy(dummy_rule(), rows) == rows

    def test_sort_ascending(self):
        rows = [binding(W=5.0), binding(W=1.0), binding(W=3.0)]
        ordered = sort_by_variable("W")(dummy_rule(), rows)
        weights = [b[Variable("W")].value for b in ordered]
        assert weights == [1.0, 3.0, 5.0]

    def test_sort_descending(self):
        rows = [binding(R=0.1), binding(R=0.9)]
        ordered = most_risky_first("R")(dummy_rule(), rows)
        assert ordered[0][Variable("R")].value == 0.9

    def test_less_significant_first_is_ascending_weight(self):
        rows = [binding(W=300), binding(W=30)]
        ordered = less_significant_first("W")(dummy_rule(), rows)
        assert ordered[0][Variable("W")].value == 30

    def test_missing_variable_uses_default(self):
        rows = [binding(W=5.0), binding(OTHER=1)]
        ordered = sort_by_variable("W", default=0.0)(dummy_rule(), rows)
        assert Variable("OTHER") in ordered[0]


class TestRoutingTable:
    def test_default_strategy(self):
        table = RoutingTable()
        rows = [binding(X=2), binding(X=1)]
        assert table.order(dummy_rule(), rows) == rows

    def test_per_label_strategy(self):
        table = RoutingTable()
        table.set_strategy("special", sort_by_variable("X"))
        rows = [binding(X=2), binding(X=1)]
        plain = table.order(dummy_rule(), rows)
        special = table.order(dummy_rule(label="special"), rows)
        assert plain == rows
        assert special[0][Variable("X")].value == 1

    def test_table_default_override(self):
        table = RoutingTable(default=sort_by_variable("X",
                                                      descending=True))
        rows = [binding(X=1), binding(X=9)]
        assert table.order(dummy_rule(), rows)[0][Variable("X")].value == 9


class TestStandardExternals:
    def run(self, source, facts=()):
        return Program.parse(source).run(
            facts, externals=standard_registry()
        )

    def test_distinct(self):
        result = self.run(
            """
            n(1). n(2).
            pair(X, Y) :- n(X), n(Y), #distinct(X, Y).
            """
        )
        assert sorted(result.tuples("pair")) == [(1, 2), (2, 1)]

    def test_range_enumerates(self):
        result = self.run(
            """
            bounds(0, 4).
            num(V) :- bounds(L, H), #range(L, H, V).
            """
        )
        assert sorted(v for (v,) in result.tuples("num")) == [0, 1, 2, 3]

    def test_range_filters_bound_value(self):
        result = self.run(
            """
            candidate(2). candidate(9).
            ok(V) :- candidate(V), #range(0, 5, V).
            """
        )
        assert result.tuples("ok") == [(2,)]

    def test_member_enumerates_collection(self):
        result = self.run(
            """
            bag([a, b]).
            item(X) :- bag(S), #member(X, S).
            """
        )
        assert sorted(v for (v,) in result.tuples("item")) == ["a", "b"]

    def test_strict_subset(self):
        result = self.run(
            """
            s1([a]). s2([a, b]).
            sub(A, B) :- s1(A), s2(B), #strictSubset(A, B).
            """
        )
        assert len(result.tuples("sub")) == 1
