"""Aggregate state, stratification, wardedness, EGD unit tests."""

import pytest

from repro.errors import (
    EGDViolationError,
    EvaluationError,
    SafetyError,
    StratificationError,
)
from repro.vadalog import Program
from repro.vadalog.aggregates import AggregateState
from repro.vadalog.atoms import Atom, Literal
from repro.vadalog.database import FactStore
from repro.vadalog.egd import enforce_egds
from repro.vadalog.negation import DependencyGraph, stratify
from repro.vadalog.parser.parser import parse_program
from repro.vadalog.rules import EGD, Rule
from repro.vadalog.terms import Constant, LabelledNull, Variable
from repro.vadalog.wardedness import affected_positions, check_wardedness


class TestAggregateState:
    def test_msum_accumulates(self):
        state = AggregateState("msum")
        changed, value = state.contribute("g", "a", 10)
        assert changed and value == 10
        changed, value = state.contribute("g", "b", 5)
        assert changed and value == 15

    def test_msum_same_contributor_keeps_max(self):
        state = AggregateState("msum")
        state.contribute("g", "a", 10)
        changed, value = state.contribute("g", "a", 4)
        assert not changed and value == 10
        changed, value = state.contribute("g", "a", 12)
        assert changed and value == 12

    def test_mcount_dedups(self):
        state = AggregateState("mcount")
        state.contribute("g", "a", 1)
        changed, value = state.contribute("g", "a", 1)
        assert not changed and value == 1
        _, value = state.contribute("g", "b", 1)
        assert value == 2

    def test_mprod_multiplies_max_contributions(self):
        state = AggregateState("mprod")
        state.contribute("g", "a", 0.5)
        state.contribute("g", "b", 0.5)
        assert state.value("g") == pytest.approx(0.25)
        # A "less risky" replacement (bigger factor) supersedes.
        state.contribute("g", "a", 0.9)
        assert state.value("g") == pytest.approx(0.45)

    def test_mmin_mmax(self):
        low = AggregateState("mmin")
        low.contribute("g", "a", 4)
        low.contribute("g", "b", 2)
        assert low.value("g") == 2
        high = AggregateState("mmax")
        high.contribute("g", "a", 4)
        high.contribute("g", "b", 9)
        assert high.value("g") == 9

    def test_munion_unions(self):
        state = AggregateState("munion")
        state.contribute("g", "a", ("x", 1))
        state.contribute("g", "b", ("y", 2))
        assert state.value("g") == frozenset({("x", 1), ("y", 2)})

    def test_non_numeric_contribution_rejected(self):
        state = AggregateState("msum")
        with pytest.raises(EvaluationError):
            state.contribute("g", "a", "not-a-number")

    def test_empty_group_value_raises(self):
        state = AggregateState("msum")
        with pytest.raises(EvaluationError):
            state.value("missing")


class TestStratification:
    def parse_rules(self, source):
        return parse_program(source).rules

    def test_linear_program_single_pass(self):
        rules = self.parse_rules(
            "p(X) :- e(X). q(X) :- p(X). r(X) :- q(X)."
        )
        strata = stratify(rules)
        flat = [rule.head[0].predicate for stratum in strata
                for rule in stratum]
        assert flat.index("p") < flat.index("q") < flat.index("r")

    def test_negation_pushes_to_later_stratum(self):
        rules = self.parse_rules(
            """
            reach(Y) :- reach(X), e(X, Y).
            un(X) :- n(X), not reach(X).
            """
        )
        strata = stratify(rules)
        labels = [
            {rule.head[0].predicate for rule in stratum}
            for stratum in strata
        ]
        reach_stratum = next(
            i for i, s in enumerate(labels) if "reach" in s
        )
        un_stratum = next(i for i, s in enumerate(labels) if "un" in s)
        assert reach_stratum < un_stratum

    def test_negation_in_cycle_rejected(self):
        rules = self.parse_rules(
            """
            p(X) :- n(X), not q(X).
            q(X) :- p(X).
            """
        )
        with pytest.raises(StratificationError):
            stratify(rules)

    def test_aggregation_recursion_allowed(self):
        rules = self.parse_rules(
            """
            rel(X, Y) :- own(X, Y, W), W > 0.5.
            rel(X, Y) :- rel(X, Z), own(Z, Y, W), msum(W, <Z>) > 0.5.
            """
        )
        strata = stratify(rules)  # must not raise
        assert sum(len(s) for s in strata) == 2

    def test_dependency_graph_ancestors(self):
        rules = self.parse_rules("p(X) :- e(X). q(X) :- p(X).")
        graph = DependencyGraph(rules)
        assert graph.depends_on("q") == {"p", "e"}


class TestWardedness:
    def test_affected_positions_from_existential(self):
        rules = parse_program("p(X, Z) :- e(X).").rules
        affected = affected_positions(rules)
        assert ("p", 1) in affected
        assert ("p", 0) not in affected

    def test_affected_propagates_through_frontier(self):
        rules = parse_program(
            """
            p(X, Z) :- e(X).
            q(Y) :- p(X, Y).
            """
        ).rules
        affected = affected_positions(rules)
        assert ("q", 0) in affected

    def test_warded_program_passes(self):
        program = Program.parse(
            """
            p(X, Z) :- e(X).
            q(X, Y) :- p(X, Y).
            """
        )
        assert program.wardedness().is_warded

    def test_dangerous_join_without_ward_flagged(self):
        # Y is harmful in both body atoms (only affected positions) and
        # appears in the head; the two atoms share it, so no ward.
        program = Program.parse(
            """
            p(X, Z) :- e(X).
            r(Y) :- p(X, Y), p(X2, Y).
            """
        )
        report = program.wardedness()
        assert not report.is_warded
        assert len(report.violations()) == 1

    def test_strict_mode_raises(self):
        from repro.errors import WardednessError

        program = Program.parse(
            """
            p(X, Z) :- e(X).
            r(Y) :- p(X, Y), p(X2, Y).
            """
        )
        with pytest.raises(WardednessError):
            program.wardedness(strict=True)

    def test_datalog_without_existentials_is_warded(self):
        program = Program.parse(
            "p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z)."
        )
        assert program.wardedness().is_warded


class TestEGDs:
    def test_null_unification(self):
        store = FactStore(
            [
                Atom("cat", (Constant("m"), Constant("a"), LabelledNull(1))),
                Atom("cat", (Constant("m"), Constant("a"), Constant("qi"))),
            ]
        )
        egd = parse_program(
            "C1 = C2 :- cat(M, A, C1), cat(M, A, C2)."
        ).egds[0]
        violations = enforce_egds([egd], store)
        assert violations == []
        facts = list(store.facts("cat"))
        assert len(facts) == 1
        assert facts[0].terms[2] == Constant("qi")

    def test_constant_clash_reported(self):
        store = FactStore(
            [
                Atom.of("cat", "m", "a", "qi"),
                Atom.of("cat", "m", "a", "id"),
            ]
        )
        egd = parse_program(
            "C1 = C2 :- cat(M, A, C1), cat(M, A, C2)."
        ).egds[0]
        violations = enforce_egds([egd], store)
        assert violations
        values = {str(violations[0].left), str(violations[0].right)}
        assert values == {'"qi"', '"id"'}

    def test_strict_mode_raises(self):
        store = FactStore(
            [Atom.of("cat", "m", "a", "qi"), Atom.of("cat", "m", "a", "id")]
        )
        egd = parse_program(
            "C1 = C2 :- cat(M, A, C1), cat(M, A, C2)."
        ).egds[0]
        with pytest.raises(EGDViolationError):
            enforce_egds([egd], store, strict=True)

    def test_egd_requires_body_variables(self):
        body = [Literal(Atom("p", (Variable("X"),)))]
        with pytest.raises(SafetyError):
            EGD(body, [(Variable("X"), Variable("Y"))])


class TestRuleSafety:
    def test_unbound_assignment_input_rejected(self):
        with pytest.raises(SafetyError):
            parse_program("p(X, Y) :- q(X), Y = Z + 1.")

    def test_unbound_condition_rejected(self):
        with pytest.raises(SafetyError):
            parse_program("p(X) :- q(X), Z > 1.")

    def test_negated_unbound_variable_rejected(self):
        with pytest.raises(SafetyError):
            parse_program("p(X) :- q(X), not r(Y).")

    def test_negated_anonymous_variable_allowed(self):
        rules = parse_program("p(X) :- q(X), not r(X, _).").rules
        assert len(rules) == 1
