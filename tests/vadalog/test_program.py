"""Program-container tests: composition, annotations, outputs,
strata, source access."""

import pytest

from repro.vadalog import Program
from repro.vadalog.atoms import Atom


class TestComposition:
    def test_addition_merges_everything(self):
        first = Program.parse("p(X) :- e(X).", name="base")
        second = Program.parse(
            "e(1). q(X) :- p(X). C1 = C2 :- c(A, C1), c(A, C2).",
            name="ext",
        )
        combined = first + second
        assert len(combined.rules) == 2
        assert len(combined.egds) == 1
        assert len(combined.facts) == 1
        assert combined.name == "base+ext"

    def test_composed_program_runs(self):
        risk = Program.parse("risky(X) :- score(X, S), S > 3.")
        scores = Program.parse("score(a, 5). score(b, 1).")
        result = (risk + scores).run()
        assert result.tuples("risky") == [("a",)]

    def test_addition_type_check(self):
        with pytest.raises(TypeError):
            Program.parse("p(a).") + 42


class TestAnnotations:
    def test_outputs_and_inputs(self):
        program = Program.parse(
            """
            @input("val"). @output("riskOutput"). @output("tupleA").
            riskOutput(X, 1) :- val(X).
            """
        )
        assert program.outputs() == ["riskOutput", "tupleA"]
        assert program.inputs() == ["val"]

    def test_output_facts_filter(self):
        program = Program.parse(
            """
            @output("q").
            e(1). e(2).
            p(X) :- e(X).
            q(X) :- p(X).
            """
        )
        result = program.run()
        outputs = list(result.output_facts(program.outputs()))
        assert {fact.predicate for fact in outputs} == {"q"}
        assert len(outputs) == 2

    def test_module_annotation_kept(self):
        program = Program.parse('@module("risk"). p(X) :- e(X).')
        assert ("module", ("risk",)) in program.annotations


class TestIntrospection:
    def test_predicates(self):
        program = Program.parse("e(1). p(X) :- e(X), not q(X).")
        assert program.predicates() == ["e", "p", "q"]

    def test_rule_by_label(self):
        program = Program.parse('@label("r1"). p(X) :- e(X).')
        assert program.rule_by_label("r1").head[0].predicate == "p"
        with pytest.raises(KeyError):
            program.rule_by_label("missing")

    def test_strata_ordering(self):
        program = Program.parse(
            """
            p(X) :- e(X).
            q(X) :- p(X), not r(X).
            r(X) :- e(X), special(X).
            """
        )
        strata = program.strata()
        flattened = [
            rule.head[0].predicate
            for stratum in strata
            for rule in stratum
        ]
        assert flattened.index("r") < flattened.index("q")

    def test_len_and_repr(self):
        program = Program.parse(
            "e(1). p(X) :- e(X). C1 = C2 :- c(A, C1), c(A, C2)."
        )
        assert len(program) == 2
        assert "1 rules" in repr(program) or "1 rule" in repr(program)

    def test_extra_facts_at_run(self):
        program = Program.parse("p(X) :- e(X).")
        result = program.run([Atom.of("e", 7)])
        assert result.tuples("p") == [(7,)]


class TestFiringListener:
    def test_listener_sees_every_derivation(self):
        program = Program.parse(
            """
            edge(a, b). edge(b, c).
            @label("base"). path(X, Y) :- edge(X, Y).
            @label("step"). path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        events = []
        program.run(
            listener=lambda label, facts, premises: events.append(
                (label, [str(f) for f in facts], len(premises))
            )
        )
        labels = [label for label, _, _ in events]
        assert labels.count("base") == 2
        assert labels.count("step") == 1
        step_event = next(e for e in events if e[0] == "step")
        assert step_event[2] == 2  # path + edge premises

    def test_listener_not_called_for_duplicates(self):
        program = Program.parse(
            """
            e(1).
            p(X) :- e(X).
            p(X) :- e(X), X > 0.
            """
        )
        events = []
        program.run(
            listener=lambda label, facts, premises: events.append(facts)
        )
        assert len(events) == 1
