"""Provenance-log unit tests: first-derivation-wins, truncation,
cycles, rendering."""

from repro.vadalog.atoms import Atom
from repro.vadalog.explain import ProvenanceLog


def fact(predicate, *values):
    return Atom.of(predicate, *values)


class TestRecording:
    def test_first_derivation_wins(self):
        log = ProvenanceLog()
        target = fact("p", 1)
        log.record(target, "rule-a", [fact("e", 1)])
        log.record(target, "rule-b", [fact("e", 2)])
        assert log.derivation_of(target).rule_label == "rule-a"

    def test_disabled_log_records_nothing(self):
        log = ProvenanceLog(enabled=False)
        log.record(fact("p", 1), "r", [])
        assert len(log) == 0
        assert not log.is_derived(fact("p", 1))

    def test_is_derived(self):
        log = ProvenanceLog()
        log.record(fact("p", 1), "r", [])
        assert log.is_derived(fact("p", 1))
        assert not log.is_derived(fact("p", 2))


class TestExplanationTrees:
    def build_chain(self, depth):
        log = ProvenanceLog()
        previous = fact("n", 0)
        for level in range(1, depth + 1):
            current = fact("n", level)
            log.record(current, f"step-{level}", [previous])
            previous = current
        return log, previous

    def test_chain_renders_to_input(self):
        log, top = self.build_chain(3)
        rendered = log.explain(top).render()
        assert "[input]" in rendered
        assert "step-3" in rendered and "step-1" in rendered

    def test_depth_truncation(self):
        log, top = self.build_chain(20)
        tree = log.explain(top, max_depth=3)
        rendered = tree.render()
        assert "truncated" in rendered

    def test_cycle_is_cut(self):
        log = ProvenanceLog()
        a, b = fact("p", "a"), fact("p", "b")
        log.record(a, "r1", [b])
        log.record(b, "r2", [a])
        tree = log.explain(a)
        rendered = tree.render()
        # Must terminate and flag the cut.
        assert "truncated" in rendered

    def test_extensional_leaf(self):
        log = ProvenanceLog()
        node = log.explain(fact("e", 1))
        assert node.is_extensional
        assert "[input]" in node.render()

    def test_note_rendering(self):
        log = ProvenanceLog()
        target = fact("total", "g", 5)
        log.record(target, "agg", [fact("x", 1)],
                   note="monotonic aggregate update")
        rendered = log.explain(target).render()
        assert "monotonic aggregate update" in rendered


class TestDepthLimit:
    def build_chain(self, depth):
        log = ProvenanceLog()
        previous = fact("n", 0)
        for level in range(1, depth + 1):
            current = fact("n", level)
            log.record(current, f"step-{level}", [previous])
            previous = current
        return log, previous

    def tree_height(self, node):
        if not node.children:
            return 0
        return 1 + max(self.tree_height(child) for child in node.children)

    def test_tree_height_equals_max_depth(self):
        log, top = self.build_chain(10)
        for limit in (1, 3, 7):
            tree = log.explain(top, max_depth=limit)
            assert self.tree_height(tree) == limit

    def test_max_depth_zero_is_a_truncated_leaf(self):
        log, top = self.build_chain(4)
        tree = log.explain(top, max_depth=0)
        assert tree.children == []
        assert tree.truncated
        assert not tree.is_extensional

    def test_exact_depth_chain_is_not_truncated(self):
        log, top = self.build_chain(5)
        tree = log.explain(top, max_depth=5)
        assert "truncated" not in tree.render()

    def test_truncated_node_keeps_fact(self):
        log, top = self.build_chain(8)
        tree = log.explain(top, max_depth=2)
        node = tree
        while node.children:
            node = node.children[0]
        assert node.truncated
        assert str(node.fact).startswith("n(")


class TestCycleHandling:
    def test_self_loop_terminates(self):
        log = ProvenanceLog()
        a = fact("p", "a")
        log.record(a, "r", [a])
        tree = log.explain(a)
        assert tree.children[0].truncated

    def test_three_cycle_unrolls_once_then_cuts(self):
        log = ProvenanceLog()
        a, b, c = fact("p", "a"), fact("p", "b"), fact("p", "c")
        log.record(a, "r1", [b])
        log.record(b, "r2", [c])
        log.record(c, "r3", [a])
        tree = log.explain(a, max_depth=50)
        # a <- b <- c <- (a truncated): each fact appears once on the
        # path before the seen-set cuts the loop.
        rendered = tree.render()
        assert rendered.count("[by r1]") == 1
        assert rendered.count("[by r2]") == 1
        assert rendered.count("[by r3]") == 1
        assert "truncated" in rendered

    def test_seen_is_per_path_not_global(self):
        # Diamond: top <- (left, right), both <- base.  The base fact
        # is visited on two sibling paths; the seen-set must not cut
        # the second branch (it only guards the path to the root).
        log = ProvenanceLog()
        base, left, right, top = (
            fact("b", 0), fact("l", 1), fact("r", 2), fact("t", 3)
        )
        log.record(base, "mk-base", [])
        log.record(left, "mk-left", [base])
        log.record(right, "mk-right", [base])
        log.record(top, "mk-top", [left, right])
        rendered = log.explain(top).render()
        assert rendered.count("[by mk-base]") == 2
        assert "truncated" not in rendered


class TestStats:
    def test_stats_counts_per_rule(self):
        log = ProvenanceLog()
        log.record(fact("p", 1), "r1", [])
        log.record(fact("p", 2), "r1", [])
        log.record(fact("q", 1), "r2", [])
        log.record(fact("q", 2), None, [])
        stats = log.stats()
        assert stats["derivations"] == 4
        assert stats["by_rule"] == {"<unlabelled>": 1, "r1": 2, "r2": 1}

    def test_stats_ignores_duplicate_recordings(self):
        log = ProvenanceLog()
        target = fact("p", 1)
        log.record(target, "r1", [])
        log.record(target, "r2", [])  # first derivation wins
        assert log.stats()["by_rule"] == {"r1": 1}

    def test_disabled_log_has_empty_stats(self):
        log = ProvenanceLog(enabled=False)
        log.record(fact("p", 1), "r1", [])
        assert log.stats() == {
            "derivations": 0, "estimated_bytes": 0, "by_rule": {}
        }

    def test_estimated_bytes_scales_with_entries(self):
        log = ProvenanceLog()
        for i in range(10):
            log.record(fact("p", i), "r1", [fact("q", i)])
        assert log.estimated_bytes() > 0
        assert log.stats()["estimated_bytes"] == log.estimated_bytes()


class TestHardBounds:
    """Regression tests: both explain() bounds are hard whatever the
    provenance graph looks like — (re-)derivation cycles must not
    defeat ``max_depth``, and ``max_nodes`` caps the whole tree."""

    def count_nodes(self, node):
        return 1 + sum(self.count_nodes(child)
                       for child in node.children)

    def test_two_cycle_respects_max_depth(self):
        # f <- g <- f: without the per-path seen-set this recursion
        # used to depend solely on max_depth; both bounds must hold.
        log = ProvenanceLog()
        f, g = fact("p", "f"), fact("p", "g")
        log.record(f, "rf", [g])
        log.record(g, "rg", [f])
        for limit in (1, 5, 50):
            tree = log.explain(f, max_depth=limit)
            assert self.count_nodes(tree) <= limit + 1

    def test_self_premise_fact_is_cut_and_noted(self):
        log = ProvenanceLog()
        f = fact("p", "f")
        log.record(f, "self", [f])
        tree = log.explain(f, max_depth=100)
        assert self.count_nodes(tree) == 2
        cut = tree.children[0]
        assert cut.truncated
        assert cut.note == "cycle"
        assert "(cycle)" in tree.render()

    def test_cycle_cut_only_marks_rederivable_facts(self):
        # An extensional leaf is truncation-free and note-free.
        log = ProvenanceLog()
        f = fact("p", "f")
        log.record(f, "r", [fact("e", 1)])
        leaf = log.explain(f).children[0]
        assert leaf.is_extensional
        assert leaf.note is None

    def test_max_nodes_bounds_diamond_blowup(self):
        # Layered diamonds: every fact in layer i derives from both
        # facts in layer i+1, so the unshared tree has ~2^depth nodes.
        log = ProvenanceLog()
        layers = [[fact("n", level, side) for side in (0, 1)]
                  for level in range(12)]
        for level in range(11):
            for node in layers[level]:
                log.record(node, f"step-{level}", layers[level + 1])
        tree = log.explain(layers[0][0], max_depth=11, max_nodes=64)
        assert self.count_nodes(tree) <= 64
        assert "truncated" in tree.render()

    def test_max_nodes_floor_is_one(self):
        log = ProvenanceLog()
        f = fact("p", "f")
        log.record(f, "r", [fact("e", 1)])
        tree = log.explain(f, max_nodes=0)
        assert self.count_nodes(tree) == 1
        assert tree.truncated

    def test_generous_budget_changes_nothing(self):
        log = ProvenanceLog()
        f = fact("p", "f")
        log.record(f, "r", [fact("e", 1), fact("e", 2)])
        bounded = log.explain(f, max_nodes=10_000)
        assert bounded.render() == log.explain(f).render()
        assert self.count_nodes(bounded) == 3
