"""Provenance-log unit tests: first-derivation-wins, truncation,
cycles, rendering."""

from repro.vadalog.atoms import Atom
from repro.vadalog.explain import ProvenanceLog


def fact(predicate, *values):
    return Atom.of(predicate, *values)


class TestRecording:
    def test_first_derivation_wins(self):
        log = ProvenanceLog()
        target = fact("p", 1)
        log.record(target, "rule-a", [fact("e", 1)])
        log.record(target, "rule-b", [fact("e", 2)])
        assert log.derivation_of(target).rule_label == "rule-a"

    def test_disabled_log_records_nothing(self):
        log = ProvenanceLog(enabled=False)
        log.record(fact("p", 1), "r", [])
        assert len(log) == 0
        assert not log.is_derived(fact("p", 1))

    def test_is_derived(self):
        log = ProvenanceLog()
        log.record(fact("p", 1), "r", [])
        assert log.is_derived(fact("p", 1))
        assert not log.is_derived(fact("p", 2))


class TestExplanationTrees:
    def build_chain(self, depth):
        log = ProvenanceLog()
        previous = fact("n", 0)
        for level in range(1, depth + 1):
            current = fact("n", level)
            log.record(current, f"step-{level}", [previous])
            previous = current
        return log, previous

    def test_chain_renders_to_input(self):
        log, top = self.build_chain(3)
        rendered = log.explain(top).render()
        assert "[input]" in rendered
        assert "step-3" in rendered and "step-1" in rendered

    def test_depth_truncation(self):
        log, top = self.build_chain(20)
        tree = log.explain(top, max_depth=3)
        rendered = tree.render()
        assert "truncated" in rendered

    def test_cycle_is_cut(self):
        log = ProvenanceLog()
        a, b = fact("p", "a"), fact("p", "b")
        log.record(a, "r1", [b])
        log.record(b, "r2", [a])
        tree = log.explain(a)
        rendered = tree.render()
        # Must terminate and flag the cut.
        assert "truncated" in rendered

    def test_extensional_leaf(self):
        log = ProvenanceLog()
        node = log.explain(fact("e", 1))
        assert node.is_extensional
        assert "[input]" in node.render()

    def test_note_rendering(self):
        log = ProvenanceLog()
        target = fact("total", "g", 5)
        log.record(target, "agg", [fact("x", 1)],
                   note="monotonic aggregate update")
        rendered = log.explain(target).render()
        assert "monotonic aggregate update" in rendered
