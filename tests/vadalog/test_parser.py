"""Parser tests: both rule directions, facts, EGDs, aggregates,
annotations, error reporting."""

import pytest

from repro.errors import ParseError
from repro.vadalog import Program
from repro.vadalog.parser.lexer import tokenize
from repro.vadalog.parser.parser import parse_program
from repro.vadalog.rules import AggregateSpec
from repro.vadalog.terms import Constant, Variable


class TestLexer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("p(X, 1) :- q(X).")]
        assert kinds == [
            "IDENT", "(", "IDENT", ",", "NUMBER", ")", ":-",
            "IDENT", "(", "IDENT", ")", ".", "EOF",
        ]

    def test_strings_with_escapes(self):
        tokens = tokenize(r'p("a\"b").')
        assert tokens[2].value == 'a"b'

    def test_comments_ignored(self):
        tokens = tokenize("p(a). % a comment\n// another\nq(b).")
        names = [t.value for t in tokens if t.kind == "IDENT"]
        assert names == ["p", "a", "q", "b"]

    def test_decimal_vs_terminator_dot(self):
        tokens = tokenize("p(0.5).")
        assert tokens[2].kind == "NUMBER" and tokens[2].value == "0.5"
        tokens = tokenize("p(5).")
        assert tokens[2].value == "5"

    def test_hash_identifier(self):
        tokens = tokenize("#risk(I, R)")
        assert tokens[0].kind == "HASH_IDENT"
        assert tokens[0].value == "#risk"

    def test_unterminated_string_raises_with_location(self):
        with pytest.raises(ParseError) as info:
            tokenize('p("abc')
        assert info.value.line == 1

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("p(a) ~ q(b).")


class TestFactsAndRules:
    def test_ground_fact(self):
        parsed = parse_program('edge("a", 1).')
        assert len(parsed.facts) == 1
        assert parsed.facts[0].predicate == "edge"
        assert parsed.facts[0].terms == (Constant("a"), Constant(1))

    def test_lowercase_identifiers_are_constants(self):
        parsed = parse_program("edge(a, b).")
        assert parsed.facts[0].terms == (Constant("a"), Constant("b"))

    def test_fact_with_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_program("edge(X, b).")

    def test_datalog_direction(self):
        parsed = parse_program("p(X) :- q(X).")
        rule = parsed.rules[0]
        assert rule.head[0].predicate == "p"
        assert rule.body[0].atom.predicate == "q"

    def test_paper_direction(self):
        parsed = parse_program("q(X) -> p(X).")
        rule = parsed.rules[0]
        assert rule.head[0].predicate == "p"
        assert rule.body[0].atom.predicate == "q"

    def test_negative_numbers_as_terms(self):
        parsed = parse_program("delta(-3).")
        assert parsed.facts[0].terms == (Constant(-3),)

    def test_set_literal_term(self):
        parsed = parse_program("anon([a, b]).")
        assert parsed.facts[0].terms == (Constant(frozenset({"a", "b"})),)

    def test_negated_literal(self):
        parsed = parse_program("p(X) :- q(X), not r(X).")
        negatives = [lit for lit in parsed.rules[0].body if lit.negated]
        assert len(negatives) == 1
        assert negatives[0].atom.predicate == "r"

    def test_condition_and_assignment(self):
        parsed = parse_program("p(X, Y) :- q(X), Y = X + 1, X > 2.")
        rule = parsed.rules[0]
        assert len(rule.assignments) == 1
        assert len(rule.conditions) == 1

    def test_missing_arrow_on_conjunction(self):
        with pytest.raises(ParseError):
            parse_program("p(a), q(b).")

    def test_two_arrows_rejected(self):
        with pytest.raises(ParseError):
            parse_program("p(X) :- q(X) :- r(X).")


class TestExistentials:
    def test_implicit_existential(self):
        parsed = parse_program("p(X, Z) :- q(X).")
        rule = parsed.rules[0]
        assert {v.name for v in rule.existential_variables()} == {"Z"}

    def test_explicit_exists_marker(self):
        parsed = parse_program("q(X) -> exists(Z) p(X, Z).")
        rule = parsed.rules[0]
        assert {v.name for v in rule.existential_variables()} == {"Z"}
        assert [a.predicate for a in rule.head] == ["p"]

    def test_exists_without_comma_before_atom(self):
        parsed = parse_program("att(M, A) -> exists(C) cat(M, A, C).")
        rule = parsed.rules[0]
        assert rule.head[0].predicate == "cat"

    def test_exists_for_bound_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_program("q(X, Z) -> exists(Z) p(X, Z).")


class TestAggregates:
    def test_msum_assignment(self):
        parsed = parse_program("p(X, S) :- q(X, W, I), S = msum(W, <I>).")
        rule = parsed.rules[0]
        assert len(rule.aggregates) == 1
        spec = rule.aggregates[0]
        assert spec.function == "msum"
        assert [v.name for v in spec.contributors] == ["I"]
        assert spec.target == Variable("S")

    def test_mcount_without_argument(self):
        parsed = parse_program("p(X, F) :- q(X, I), F = mcount(<I>).")
        assert parsed.rules[0].aggregates[0].function == "mcount"

    def test_aggregate_in_condition_desugars(self):
        parsed = parse_program(
            "rel(X, Y) :- rel(X, Z), own(Z, Y, W), msum(W, <Z>) > 0.5."
        )
        rule = parsed.rules[0]
        assert len(rule.aggregates) == 1
        assert len(rule.conditions) == 1

    def test_munion_of_pairs(self):
        parsed = parse_program(
            "t(M, I, VSet) :- val(M, I, A, V), VSet = munion((A, V), <A>)."
        )
        spec = parsed.rules[0].aggregates[0]
        assert spec.function == "munion"

    def test_multiple_contributors(self):
        parsed = parse_program(
            "p(X, S) :- q(X, W, I, J), S = msum(W, <I, J>)."
        )
        spec = parsed.rules[0].aggregates[0]
        assert [v.name for v in spec.contributors] == ["I", "J"]


class TestEGDs:
    def test_equality_head_makes_egd(self):
        parsed = parse_program("C1 = C2 :- cat(M, A, C1), cat(M, A, C2).")
        assert len(parsed.egds) == 1
        assert len(parsed.rules) == 0

    def test_paper_direction_egd(self):
        parsed = parse_program("cat(M, A, C1), cat(M, A, C2) -> C1 = C2.")
        assert len(parsed.egds) == 1

    def test_mixed_head_rejected(self):
        with pytest.raises(ParseError):
            parse_program("p(X), C1 = C2 :- q(X, C1, C2).")


class TestAnnotations:
    def test_label_applies_to_next_rule(self):
        parsed = parse_program('@label("r1"). p(X) :- q(X).')
        assert parsed.rules[0].label == "r1"

    def test_other_annotations_collected(self):
        parsed = parse_program('@module("risk"). p(X) :- q(X).')
        assert ("module", ("risk",)) in parsed.annotations

    def test_case_expression_in_rule(self):
        parsed = parse_program(
            "r(I, R) :- f(I, F), R = case F < 2 then 1 else 0."
        )
        program = Program(rules=parsed.rules)
        result = program.run([_fact("f", "a", 1), _fact("f", "b", 3)])
        assert sorted(result.tuples("r")) == [("a", 1), ("b", 0)]


def _fact(predicate, *values):
    from repro.vadalog.atoms import Atom

    return Atom.of(predicate, *values)
