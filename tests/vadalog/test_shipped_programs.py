"""Integration tests for the shipped Vadalog modules (Algorithms 1-9):
the declarative fidelity path, cross-checked against the native
executors."""

import pytest

from repro.business import OwnershipGraph
from repro.data import city_fragment, inflation_growth_fragment
from repro.model import AttributeCategory, MAYBE_MATCH, STANDARD
from repro.risk import (
    IndividualRisk,
    KAnonymityRisk,
    ReidentificationRisk,
    SudaRisk,
)
from repro.vadalog import Program
from repro.vadalog.atoms import Atom
from repro.vadalog_programs import (
    ANONYMIZATION_CYCLE,
    CATEGORIZATION,
    CLUSTER_RISK,
    INDIVIDUAL_RISK,
    K_ANONYMITY,
    OWNERSHIP_CONTROL,
    PROGRAMS,
    REIDENTIFICATION,
    SUDA,
    TUPLE_BUILD,
    cycle_registry,
)


def base_facts(db, **params):
    facts = db.to_facts()
    facts.append(
        Atom.of("anonSet", db.name, frozenset(db.quasi_identifiers))
    )
    for name, value in params.items():
        facts.append(Atom.of("param", name, value))
    return facts


def risk_by_row(result, n):
    scores = {}
    for i, r in result.tuples("riskOutput"):
        scores[i] = max(scores.get(i, 0), r)
    return [scores[i] for i in range(n)]


class TestShippedProgramsParse:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_parses(self, name):
        program = Program.parse(PROGRAMS[name], name=name)
        assert len(program) > 0

    @pytest.mark.parametrize(
        "name",
        [
            "tuple-build",
            "reidentification",
            "k-anonymity",
            "individual-risk",
            "ownership-control",
            "cluster-risk",
        ],
    )
    def test_risk_modules_are_warded(self, name):
        program = Program.parse(PROGRAMS[name])
        assert program.wardedness().is_warded


class TestCategorizationProgram:
    def test_borrows_category_through_similarity(self):
        registry, _ = cycle_registry()
        program = Program.parse(CATEGORIZATION)
        facts = [
            Atom.of("att", "I&G", "Area", "Geographic Area"),
            Atom.of("att", "I&G", "Sector", "Product Sector"),
            Atom.of("expBase", "Area", "Quasi-identifier"),
            Atom.of("expBase", "Sector", "Quasi-identifier"),
        ]
        result = program.run(facts, externals=registry)
        categories = {
            (m, a): c for m, a, c in result.tuples("cat")
        }
        assert categories[("I&G", "Area")] == "Quasi-identifier"
        assert categories[("I&G", "Sector")] == "Quasi-identifier"
        assert result.egd_violations == []

    def test_unknown_attribute_gets_labelled_null_category(self):
        from repro.vadalog.terms import LabelledNull

        registry, _ = cycle_registry()
        program = Program.parse(CATEGORIZATION)
        facts = [Atom.of("att", "db", "Mystery", "???")]
        result = program.run(facts, externals=registry)
        rows = result.tuples("cat")
        assert len(rows) == 1
        assert isinstance(rows[0][2], LabelledNull)

    def test_conflicting_experience_surfaces_egd_violation(self):
        registry, _ = cycle_registry()
        program = Program.parse(CATEGORIZATION)
        facts = [
            Atom.of("att", "db", "Area", "Geographic Area"),
            Atom.of("expBase", "Area", "Quasi-identifier"),
            Atom.of("expBase", "area", "Identifier"),
        ]
        result = program.run(facts, externals=registry)
        assert result.egd_violations

    def test_consolidation_feeds_experience_base(self):
        registry, _ = cycle_registry()
        program = Program.parse(CATEGORIZATION)
        facts = [
            Atom.of("att", "db", "Area", ""),
            Atom.of("expBase", "Area", "Quasi-identifier"),
        ]
        result = program.run(facts, externals=registry)
        entries = set(result.tuples("expBase"))
        assert ("Area", "Quasi-identifier") in entries


class TestRiskProgramEquivalence:
    """Engine-evaluated risk modules vs native plug-ins.

    The engine path groups labelled nulls by label, i.e. standard
    semantics; the fixtures here carry no nulls, so both semantics
    coincide and the native measure is run with STANDARD for clarity.
    """

    def test_k_anonymity_matches_native(self):
        db = city_fragment()
        program = Program.parse(TUPLE_BUILD + K_ANONYMITY)
        result = program.run(base_facts(db, k=2))
        engine_scores = risk_by_row(result, len(db))
        native = KAnonymityRisk(k=2).assess(db, semantics=STANDARD)
        assert engine_scores == native.scores

    def test_reidentification_matches_native(self, ig_db):
        program = Program.parse(TUPLE_BUILD + REIDENTIFICATION)
        result = program.run(base_facts(ig_db))
        engine_scores = risk_by_row(result, len(ig_db))
        native = ReidentificationRisk().assess(ig_db, semantics=STANDARD)
        for engine, expected in zip(engine_scores, native.scores):
            assert engine == pytest.approx(expected)

    def test_reidentification_paper_numbers(self, ig_db):
        program = Program.parse(TUPLE_BUILD + REIDENTIFICATION)
        result = program.run(base_facts(ig_db))
        scores = risk_by_row(result, len(ig_db))
        assert scores[14] == pytest.approx(1 / 30)   # tuple 15
        assert scores[6] == pytest.approx(1 / 300)   # tuple 7
        assert scores[3] == pytest.approx(1 / 60)    # tuple 4

    def test_individual_risk_matches_native(self, ig_db):
        program = Program.parse(TUPLE_BUILD + INDIVIDUAL_RISK)
        result = program.run(base_facts(ig_db))
        engine_scores = risk_by_row(result, len(ig_db))
        native = IndividualRisk(mode="simple").assess(
            ig_db, semantics=STANDARD
        )
        for engine, expected in zip(engine_scores, native.scores):
            assert engine == pytest.approx(expected)

    def test_l_diversity_matches_native(self):
        from repro.model import MicrodataDB, survey_schema
        from repro.risk import LDiversityRisk
        from repro.vadalog_programs import L_DIVERSITY

        schema = survey_schema(
            quasi_identifiers=["A", "B"], non_identifying=["S"]
        )
        db = MicrodataDB(
            "ld",
            schema,
            [
                {"A": 1, "B": 1, "S": "x"},
                {"A": 1, "B": 1, "S": "x"},
                {"A": 2, "B": 2, "S": "x"},
                {"A": 2, "B": 2, "S": "y"},
            ],
        )
        facts = db.to_facts() + [
            Atom.of("anonSet", db.name, frozenset(["A", "B"])),
            Atom.of("param", "sensitive", "S"),
            Atom.of("param", "l", 2),
        ]
        program = Program.parse(
            PROGRAMS["tuple-build"] + L_DIVERSITY
        )
        result = program.run(facts)
        engine_scores = risk_by_row(result, len(db))
        native = LDiversityRisk(sensitive="S", l=2).assess(
            db, semantics=STANDARD
        )
        assert engine_scores == native.scores

    def test_suda_matches_native(self):
        db = city_fragment()
        registry, _ = cycle_registry()
        program = Program.parse(TUPLE_BUILD + SUDA)
        result = program.run(
            base_facts(db, suda_k=3), externals=registry
        )
        engine_scores = risk_by_row(result, len(db))
        native = SudaRisk(k=3).assess(db, semantics=STANDARD)
        assert engine_scores == native.scores


class TestOwnershipProgramEquivalence:
    def test_control_closure_matches_native(self):
        graph = OwnershipGraph(
            [
                ("a", "b", 0.6),
                ("a", "c", 0.3),
                ("b", "c", 0.3),
                ("c", "d", 0.8),
                ("x", "y", 0.4),
            ]
        )
        program = Program.parse(OWNERSHIP_CONTROL)
        result = program.run(graph.to_facts())
        engine_pairs = {
            (x, y) for x, y in result.tuples("rel") if x != y
        }
        assert engine_pairs == graph.control_relation()


class TestClusterRiskProgram:
    def test_combined_risk_formula(self):
        program = Program.parse(CLUSTER_RISK)
        facts = [
            Atom.of("relRow", 1, 1),
            Atom.of("relRow", 1, 2),
            Atom.of("riskOutput", 1, 0.5),
            Atom.of("riskOutput", 2, 0.5),
        ]
        result = program.run(facts)
        values = dict(result.tuples("clusterRisk"))
        assert values[1] == pytest.approx(1 - 0.25)


class TestEngineCycle:
    def test_standard_semantics_proliferates_nulls(self):
        db = city_fragment()
        registry, _ = cycle_registry(k=2, semantics="standard")
        program = Program.parse(TUPLE_BUILD + ANONYMIZATION_CYCLE)
        result = program.run(base_facts(db, T=0.5), externals=registry)
        standard_nulls = result.nulls_introduced

        registry, _ = cycle_registry(k=2, semantics="maybe-match")
        result = Program.parse(TUPLE_BUILD + ANONYMIZATION_CYCLE).run(
            base_facts(db, T=0.5), externals=registry
        )
        maybe_nulls = result.nulls_introduced
        # Figure 7c: the standard semantics is "unusable" — it needs
        # strictly more nulls than the maybe-match interpretation.
        assert maybe_nulls < standard_nulls

    def test_maybe_match_cycle_accepts_all_tuples(self):
        db = city_fragment()
        registry, _ = cycle_registry(k=2, semantics="maybe-match")
        program = Program.parse(TUPLE_BUILD + ANONYMIZATION_CYCLE)
        result = program.run(base_facts(db, T=0.5), externals=registry)
        accepted = {i for _, i, _ in result.tuples("tupleA")}
        assert accepted == set(range(len(db)))
