"""Compiled join plans: compilation shape, execution fidelity, the
legacy escape hatch and the PlanFallback safety net."""

import os
from unittest import mock

import pytest

from repro.vadalog import Program
from repro.vadalog.atoms import Atom
from repro.vadalog.chase import ChaseEngine
from repro.vadalog.database import FactStore
from repro.vadalog.plans import (
    AssignStep,
    FilterStep,
    NegationStep,
    PlanFallback,
    ScanStep,
    compile_rule_plans,
)
from repro.vadalog.terms import Constant, Variable
from repro.vadalog.unification import probe_layout


def parse_rules(source):
    return Program.parse(source).rules


class TestProbeLayout:
    def test_constants_and_known_vars_form_the_key(self):
        X, Y = Variable("X"), Variable("Y")
        atom = Atom("p", (X, Constant("c"), Y))
        positions, sources, outputs, repeats = probe_layout(atom, {X})
        assert positions == (0, 1)
        assert sources == (X, Constant("c"))
        assert outputs == ((2, Y),)
        assert repeats == ()

    def test_repeated_fresh_variable_becomes_equality_check(self):
        X = Variable("X")
        atom = Atom("p", (X, X))
        positions, _sources, outputs, repeats = probe_layout(atom, set())
        assert positions == ()
        assert outputs == ((0, X),)
        assert repeats == ((1, X),)

    def test_anonymous_variables_constrain_nothing(self):
        atom = Atom("p", (Variable("_"), Variable("X")))
        positions, _sources, outputs, _repeats = probe_layout(atom, set())
        assert positions == ()
        assert [v.name for _, v in outputs] == ["X"]


class TestCompilation:
    def test_one_delta_plan_per_positive_literal(self):
        (rule,) = parse_rules(
            "out(X, Z) :- e(X, Y), f(Y, Z).\n@output(\"out\").\n"
        )
        plans = compile_rule_plans(rule)
        assert not plans.unplannable
        assert [pred for _, pred, _ in plans.delta_plans] == ["e", "f"]
        # Each delta plan leads with a delta-scoped scan of its literal.
        for index, _pred, plan in plans.delta_plans:
            first = plan.steps[0]
            assert isinstance(first, ScanStep) and first.delta_only

    def test_second_scan_probes_on_the_join_variable(self):
        (rule,) = parse_rules(
            "out(X, Z) :- e(X, Y), f(Y, Z).\n@output(\"out\").\n"
        )
        plans = compile_rule_plans(rule)
        second = plans.first_round.steps[1]
        assert isinstance(second, ScanStep)
        assert second.key_positions == (0,)  # f's Y, bound by e's scan

    def test_assignment_pushed_before_dependent_scan(self):
        # Q is assigned from e's variables and then *probes* f — the
        # cross-product-to-hash-probe rewrite the plan layer exists for.
        (rule,) = parse_rules(
            "out(X, F) :- e(X, Y), Q = Y + 1, f(Q, F).\n"
            "@output(\"out\").\n"
        )
        plans = compile_rule_plans(rule)
        kinds = [type(s).__name__ for s in plans.first_round.steps]
        assert kinds == ["ScanStep", "AssignStep", "ScanStep"]
        assert plans.first_round.steps[2].key_positions == (0,)

    def test_conditions_wait_for_assignments(self):
        # Legacy evaluates every assignment before any condition and
        # stops at the first failure; the plan preserves that order.
        (rule,) = parse_rules(
            "out(X) :- e(X, Y), X > 0, Q = Y * 2, R = Q + X.\n"
            "@output(\"out\").\n"
        )
        plans = compile_rule_plans(rule)
        kinds = [type(s).__name__ for s in plans.first_round.steps]
        assert kinds.index("FilterStep") > kinds.index("AssignStep")
        assert kinds.count("AssignStep") == 2

    def test_negation_scheduled_over_positive_vars_only(self):
        (rule,) = parse_rules(
            "out(X) :- e(X, Y), not f(X, Q), Q = Y + 1.\n"
            "@output(\"out\").\n"
        )
        plans = compile_rule_plans(rule)
        steps = plans.first_round.steps
        negation = next(s for s in steps if isinstance(s, NegationStep))
        # Q is assignment-bound: the legacy path checks negation before
        # assignments run, so Q must stay out of the probe key.
        assert negation.key_positions == (0,)

    def test_recursive_rule_not_streamable(self):
        (rule,) = parse_rules(
            "p(X, Z) :- p(X, Y), e(Y, Z).\np(1, 2).\n@output(\"p\").\n"
        )
        assert not compile_rule_plans(rule).streamable

    def test_negated_head_predicate_not_streamable(self):
        rules = parse_rules(
            "out(X) :- e(X), not aux(X).\naux(X) :- f(X).\n"
            "@output(\"out\").\n"
        )
        out_rule = next(r for r in rules if "out" in r.head_predicates())
        # 'out' is not read by its own body: streamable.
        assert compile_rule_plans(out_rule).streamable

    def test_plain_join_is_streamable_but_eval_steps_are_not(self):
        (plain,) = parse_rules(
            "out(X, Z) :- e(X, Y), f(Y, Z).\n@output(\"out\").\n"
        )
        assert compile_rule_plans(plain).streamable
        (with_filter,) = parse_rules(
            "out(X) :- e(X, Y), Y > 1.\n@output(\"out\").\n"
        )
        assert not compile_rule_plans(with_filter).streamable

    def test_describe_lists_every_plan(self):
        (rule,) = parse_rules(
            "out(X, Z) :- e(X, Y), f(Y, Z).\n@output(\"out\").\n"
        )
        dump = compile_rule_plans(rule).describe()
        assert set(dump) == {"first-round", "delta[0:e]", "delta[1:f]"}
        assert any("probe" in line for line in dump["first-round"])


class TestExecutionFidelity:
    def _facts(self, *rows):
        return [Atom.of(*row) for row in rows]

    def _run_both(self, source, facts=()):
        planned = Program.parse(source).run(
            facts, provenance=False, preflight=False, use_plans=True
        )
        legacy = Program.parse(source).run(
            facts, provenance=False, preflight=False, use_plans=False
        )
        return planned, legacy

    def test_join_results_match_legacy(self):
        source = (
            "e(1, 2). e(2, 3). e(3, 4).\n"
            "path(X, Y) :- e(X, Y).\n"
            "path(X, Z) :- path(X, Y), e(Y, Z).\n"
            "@output(\"path\").\n"
        )
        planned, legacy = self._run_both(source)
        assert frozenset(planned.facts()) == frozenset(legacy.facts())
        assert planned.rounds == legacy.rounds

    def test_duplicate_body_literals(self):
        # The seed suite's RecursionError shape: identical literals.
        source = (
            "e(1, 2). e(2, 3).\n"
            "out(X, Z) :- e(X, Z), e(X, Z).\n@output(\"out\").\n"
        )
        planned, legacy = self._run_both(source)
        assert frozenset(planned.facts()) == frozenset(legacy.facts())

    def test_repeated_variables_in_one_atom(self):
        source = (
            "e(1, 1). e(1, 2). e(2, 2).\n"
            "diag(X) :- e(X, X).\n@output(\"diag\").\n"
        )
        planned, _ = self._run_both(source)
        assert sorted(planned.tuples("diag")) == [(1,), (2,)]

    def test_assignment_equality_check_when_target_bound(self):
        source = (
            "e(1, 2). e(2, 4). f(1). f(2).\n"
            "out(X) :- e(X, Y), f(X), Y = X * 2.\n@output(\"out\").\n"
        )
        planned, legacy = self._run_both(source)
        assert sorted(planned.tuples("out")) == \
            sorted(legacy.tuples("out")) == [(1,), (2,)]

    def test_fallback_reproduces_legacy_error(self):
        # The pushed-down assignment divides by an e-value; with 0 in
        # range both paths must raise the same EvaluationError rather
        # than the planned path crashing earlier or differently.
        from repro.errors import EvaluationError

        source = (
            "e(1, 0). f(1).\n"
            "out(Q) :- e(X, Y), Q = X / Y, f(X).\n@output(\"out\").\n"
        )
        for use_plans in (True, False):
            with pytest.raises(EvaluationError):
                Program.parse(source).run(
                    provenance=False, preflight=False,
                    use_plans=use_plans,
                )

    def test_fallback_suppresses_error_legacy_never_hits(self):
        # Legacy never evaluates Q (the join on f filters X=2 out
        # before finish), so the planned path — whose pushed-down
        # assignment would divide by zero mid-join — must fall back
        # and agree, not crash.
        source = (
            "e(1, 1). e(2, 0). f(1).\n"
            "out(Q) :- e(X, Y), Q = X / Y, f(X).\n@output(\"out\").\n"
        )
        planned, legacy = self._run_both(source)
        assert frozenset(planned.facts()) == frozenset(legacy.facts())

    def test_negation_with_unbound_variable(self):
        source = (
            "e(1). e(2). f(2, 7).\n"
            "out(X) :- e(X), not f(X, _).\n@output(\"out\").\n"
        )
        planned, legacy = self._run_both(source)
        assert sorted(planned.tuples("out")) == \
            sorted(legacy.tuples("out")) == [(1,)]


class TestEscapeHatch:
    def test_env_var_disables_plans(self):
        with mock.patch.dict(
            os.environ, {"CHASE_LEGACY_ENUMERATION": "1"}
        ):
            engine = ChaseEngine([])
        assert not engine.use_plans

    def test_explicit_flag_wins(self):
        engine = ChaseEngine([], use_plans=False)
        assert not engine.use_plans
        assert ChaseEngine([]).use_plans

    def test_plan_cache_survives_across_runs(self):
        (rule,) = parse_rules("out(X) :- e(X).\n@output(\"out\").\n")
        engine = ChaseEngine([rule])
        engine.run([Atom.of("e", 1)])
        cached = engine._plan_cache[id(rule)]
        engine.run([Atom.of("e", 2)])
        assert engine._plan_cache[id(rule)] is cached

    def test_plan_report_names_rules(self):
        rules = parse_rules(
            "@label(\"hop\").\nout(X, Z) :- e(X, Y), e(Y, Z).\n"
            "@output(\"out\").\n"
        )
        engine = ChaseEngine(rules)
        engine.run([Atom.of("e", 1, 2)])
        report = engine.plan_report()
        assert "hop" in report
        assert "first-round" in report["hop"]


class TestPlanSteps:
    def test_filter_step_wraps_errors_in_fallback(self):
        (rule,) = parse_rules(
            "out(X) :- e(X), X > 1.\n@output(\"out\").\n"
        )
        condition = rule.conditions[0]
        step = FilterStep(condition)
        with pytest.raises(PlanFallback):
            # X bound to a string: '>' raises inside holds().
            list(step.iterate(
                FactStore(), {Variable("X"): Constant("nope")}, []
            ))

    def test_assign_step_wraps_errors_in_fallback(self):
        (rule,) = parse_rules(
            "out(Q) :- e(X), Q = X + 1.\n@output(\"out\").\n"
        )
        step = AssignStep(rule.assignments[0])
        with pytest.raises(PlanFallback):
            list(step.iterate(
                FactStore(), {Variable("X"): Constant("nope")}, []
            ))
