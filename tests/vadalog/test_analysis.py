"""Tests for the static analyzer: golden diagnostics per pass, span
threading, wardedness regressions, the pre-flight gate and the
conformance-harness integration.

The hypothesis property at the bottom runs under the profile selected
in ``tests/conftest.py`` (``HYPOTHESIS_PROFILE=deep`` in the nightly
lane)."""

import random
import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import (
    ParseError,
    SafetyError,
    StaticAnalysisError,
    StratificationError,
    WardednessError,
)
from repro.framework import VadaSA
from repro.testing.conformance import ConformanceOutcome, run_one
from repro.testing.generator import generate_program
from repro.vadalog import Program, analyze
from repro.vadalog.atoms import Atom, Condition, Literal
from repro.vadalog.chase import ChaseEngine
from repro.vadalog.expressions import BinOp, Lit, VarRef
from repro.vadalog.rules import Rule
from repro.vadalog.terms import Constant, Variable
from repro.vadalog.wardedness import check_wardedness
from repro.vadalog_programs import PROGRAMS, program_source

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def codes_of(report):
    return {d.code for d in report.diagnostics}


def diagnostic(report, code):
    matches = [d for d in report.diagnostics if d.code == code]
    assert matches, f"expected {code} in {sorted(codes_of(report))}"
    return matches[0]


class TestGoldenDiagnostics:
    """One minimal trigger per diagnostic code: code, span, message."""

    def test_vdl001_negation_only_binding(self):
        # Only constructible with validation off — the parser refuses
        # such rules outright, but programmatic clients can build them.
        rule = Rule(
            head=[Atom("p", (X,))],
            body=[
                Literal(Atom("q", (Y,))),
                Literal(Atom("r", (X,)), negated=True),
            ],
            validate=False,
        )
        program = Program(
            rules=[rule],
            facts=[Atom("q", (Constant(1),)), Atom("r", (Constant(1),))],
        )
        found = diagnostic(analyze(program), "VDL001")
        assert found.severity == "error"
        assert "only bound under negation" in found.message

    def test_vdl002_implicit_existential(self):
        report = analyze(Program.parse("p(X, Z) :- q(X).\nq(1)."))
        found = diagnostic(report, "VDL002")
        assert found.severity == "warning"
        assert "implicitly existential" in found.message
        assert str(found.span) == "1:1"

    def test_vdl002_silent_when_declared(self):
        report = analyze(Program.parse("exists(Z) p(X, Z) :- q(X).\nq(1)."))
        assert "VDL002" not in codes_of(report)

    def test_vdl003_floating_negation(self):
        rule = Rule(
            head=[Atom("p", (X,))],
            body=[
                Literal(Atom("q", (X,))),
                Literal(Atom("r", (X, Y)), negated=True),
            ],
            validate=False,
        )
        program = Program(
            rules=[rule],
            facts=[
                Atom("q", (Constant(1),)),
                Atom("r", (Constant(1), Constant(2))),
            ],
        )
        found = diagnostic(analyze(program), "VDL003")
        assert found.severity == "error"
        assert "no positive binding" in found.message

    def test_vdl004_unbound_condition_input(self):
        rule = Rule(
            head=[Atom("p", (X,))],
            body=[Literal(Atom("q", (X,)))],
            conditions=[Condition(BinOp(">", VarRef(Z), Lit(2)))],
            validate=False,
        )
        program = Program(rules=[rule], facts=[Atom("q", (Constant(1),))])
        found = diagnostic(analyze(program), "VDL004")
        assert found.severity == "error"
        assert "unbound variable(s) Z" in found.message

    def test_vdl010_negation_cycle(self):
        report = analyze(
            Program.parse(
                "p(X) :- b(X), not q(X).\n"
                "q(X) :- b(X), not p(X).\n"
                "b(1)."
            )
        )
        found = diagnostic(report, "VDL010")
        assert found.severity == "error"
        # The offending cycle is printed in the message.
        assert "q -> p -> q" in found.message or "p -> q -> p" in found.message
        assert found.span.known

    def test_vdl011_vacuous_negation(self):
        report = analyze(Program.parse("p(X) :- b(X), not ghost(X).\nb(1)."))
        found = diagnostic(report, "VDL011")
        assert found.severity == "warning"
        assert "never derivable" in found.message
        assert str(found.span) == "1:19"

    def test_vdl020_not_warded(self):
        report = analyze(
            Program.parse(
                "exists(Z) p(X, Z) :- e(X).\n"
                "r(Y) :- p(X1, Y), p(X2, Y).\n"
                "e(1)."
            )
        )
        found = diagnostic(report, "VDL020")
        assert found.severity == "error"
        assert "not warded" in found.message
        assert str(found.span) == "2:1"

    def test_vdl021_harmful_join(self):
        report = analyze(
            Program.parse(
                "exists(Z) p(X, Z) :- e(X).\n"
                "r(X1) :- p(X1, Y), p(X2, Y).\n"
                "e(1)."
            )
        )
        found = diagnostic(report, "VDL021")
        assert found.severity == "warning"
        assert "harmful join" in found.message
        # Warded (Y is not dangerous), so no error alongside the warning.
        assert "VDL020" not in codes_of(report)

    def test_vdl030_arity_mismatch(self):
        report = analyze(Program.parse("q(1).\nq(1, 2).\np(X) :- q(X)."))
        found = diagnostic(report, "VDL030")
        assert found.severity == "error"
        assert "arity 2" in found.message and "arity 1" in found.message
        assert str(found.span) == "2:1"

    def test_vdl031_undefined_predicate(self):
        report = analyze(Program.parse("p(X) :- mystery(X)."))
        found = diagnostic(report, "VDL031")
        assert found.severity == "warning"
        assert "never defined" in found.message
        assert str(found.span) == "1:9"

    def test_vdl032_unused_predicate(self):
        report = analyze(Program.parse("p(X) :- b(X).\nb(1)."))
        found = diagnostic(report, "VDL032")
        assert found.severity == "warning"
        assert "never read" in found.message

    def test_vdl032_silent_when_output(self):
        report = analyze(
            Program.parse('@output("p").\np(X) :- b(X).\nb(1).')
        )
        assert "VDL032" not in codes_of(report)

    def test_vdl040_dead_rule(self):
        report = analyze(
            Program.parse(
                '@output("goal").\n'
                "goal(X) :- b(X).\n"
                "orphan(X) :- b(X).\n"
                "b(1)."
            )
        )
        found = diagnostic(report, "VDL040")
        assert found.severity == "warning"
        assert "dead rule" in found.message
        assert str(found.span) == "3:1"

    def test_vdl040_needs_declared_outputs(self):
        # Without @output everything is presumed reachable.
        report = analyze(
            Program.parse("goal(X) :- b(X).\norphan(X) :- b(X).\nb(1).")
        )
        assert "VDL040" not in codes_of(report)

    def test_vdl041_duplicate_fact(self):
        report = analyze(Program.parse("b(1).\nb(1).\np(X) :- b(X)."))
        found = diagnostic(report, "VDL041")
        assert found.severity == "warning"
        assert "duplicate fact" in found.message
        assert str(found.span) == "2:1"

    def test_vdl042_shadowed_aggregate_fact(self):
        report = analyze(
            Program.parse(
                "total(5).\n"
                "total(S) :- q(X, W), S = msum(W, <X>).\n"
                "q(1, 2)."
            )
        )
        found = diagnostic(report, "VDL042")
        assert found.severity == "warning"
        assert "shadows an aggregate rule" in found.message

    def test_vdl050_singleton_variable(self):
        report = analyze(Program.parse("p(X) :- b(X), c(Y).\nb(1).\nc(2)."))
        found = diagnostic(report, "VDL050")
        assert found.severity == "warning"
        assert "occurs only once" in found.message and "_Y" in found.message

    def test_vdl050_anonymous_exempt(self):
        report = analyze(Program.parse("p(X) :- b(X), c(_Y).\nb(1).\nc(2)."))
        assert "VDL050" not in codes_of(report)

    def test_vdl060_position_type_conflict(self):
        report = analyze(Program.parse('b(1).\nb("x").\np(X) :- b(X).'))
        found = diagnostic(report, "VDL060")
        assert found.severity == "warning"
        assert "number" in found.message and "string" in found.message

    def test_vdl061_comparison_type_clash(self):
        report = analyze(Program.parse('b(1).\np(X) :- b(X), X > "s".'))
        found = diagnostic(report, "VDL061")
        assert found.severity == "warning"
        assert "number and string" in found.message
        assert str(found.span) == "2:15"

    def test_vdl061_unknown_function(self):
        report = analyze(Program.parse("b(1).\np(Y) :- b(X), Y = huh(X)."))
        found = diagnostic(report, "VDL061")
        assert "unknown function 'huh'" in found.message


class TestSuppression:
    def test_lint_ignore_moves_diagnostic_to_suppressed(self):
        report = analyze(
            Program.parse(
                '@lint_ignore("VDL050", "singleton kept for clarity").\n'
                "p(X) :- b(X), c(Y).\nb(1).\nc(2)."
            )
        )
        assert "VDL050" not in codes_of(report)
        assert any(d.code == "VDL050" for d in report.suppressed)

    def test_suppressed_errors_unblock_preflight(self):
        source = (
            '@lint_ignore("VDL010", "cycle is intentional here").\n'
            "p(X) :- b(X), not q(X).\n"
            "q(X) :- b(X), not p(X).\n"
            "b(1)."
        )
        report = analyze(Program.parse(source))
        assert not report.has_errors
        assert any(d.code == "VDL010" for d in report.suppressed)


class TestSpans:
    def test_rule_and_atom_spans(self):
        program = Program.parse("b(1).\n\np(X) :- b(X), X > 0.")
        rule = program.rules[0]
        assert (rule.line, rule.column) == (3, 1)
        assert (rule.body[0].atom.line, rule.body[0].atom.column) == (3, 9)
        condition = rule.conditions[0]
        assert (condition.line, condition.column) == (3, 15)

    def test_assignment_span(self):
        program = Program.parse("b(1).\np(Y) :- b(X), Y = X * 2.")
        assignment = program.rules[0].assignments[0]
        assert (assignment.line, assignment.column) == (2, 15)

    def test_spans_do_not_affect_atom_identity(self):
        assert Atom("p", (X,), line=1, column=1) == Atom(
            "p", (X,), line=9, column=9
        )
        assert hash(Atom("p", (X,), line=1, column=1)) == hash(
            Atom("p", (X,))
        )

    def test_parse_error_carries_location(self):
        with pytest.raises(ParseError) as excinfo:
            Program.parse("b(1).\np(X) q(X).")
        message = str(excinfo.value)
        assert "line 2" in message

    def test_fact_with_variable_error_has_location(self):
        with pytest.raises(ParseError) as excinfo:
            Program.parse("b(1).\nq(X).")
        assert "line 2" in str(excinfo.value)


class TestWardednessRegressions:
    def test_exists_marker_in_body_is_a_declaration(self):
        # Regression: `exists(Z)` written on the body side of a
        # Datalog-direction rule used to become a phantom body atom.
        program = Program.parse("h(X, Z) :- exists(Z) q(X).\nq(1).")
        rule = program.rules[0]
        assert {v.name for v in rule.existential_variables()} == {"Z"}
        assert {v.name for v in rule.declared_existentials} == {"Z"}
        assert [l.atom.predicate for l in rule.body] == ["q"]

    def test_duplicate_body_atoms_share_a_ward(self):
        # Regression: a ward duplicated in the body made the checker
        # believe the dangerous variable leaked into a second atom.
        program = Program.parse(
            "exists(Z) p(X, Z) :- e(X).\n"
            "q(Z) :- p(X, Z), p(X, Z).\n"
            "e(1)."
        )
        report = check_wardedness(program.rules)
        assert report.is_warded, report.violations()
        assert "VDL020" not in codes_of(analyze(program))

    def test_existential_also_in_body_not_existential(self):
        # A head variable that also occurs in the body is plain frontier,
        # never existential — even if an exists() prefix names it: the
        # parser rejects that contradiction outright.
        with pytest.raises(ParseError):
            Program.parse("exists(X) p(X) :- q(X).\nq(1).")


class TestPreflight:
    DIRTY = (
        "p(X) :- b(X), not q(X).\n"
        "q(X) :- b(X), not p(X).\n"
        "b(1)."
    )

    def test_run_rejects_error_level_programs(self):
        program = Program.parse(self.DIRTY)
        with pytest.raises(StaticAnalysisError) as excinfo:
            program.run()
        assert "VDL010" in str(excinfo.value)
        assert excinfo.value.report is not None
        assert excinfo.value.report.has_errors

    def test_escape_hatch_reaches_the_engine(self):
        program = Program.parse(self.DIRTY)
        with pytest.raises(StratificationError):
            program.run(preflight=False)

    def test_chase_engine_preflight_opt_in(self):
        program = Program.parse(self.DIRTY)
        with pytest.raises(StaticAnalysisError):
            ChaseEngine(program.rules, preflight=True)
        ChaseEngine(program.rules)  # default stays permissive

    def test_clean_program_runs(self):
        program = Program.parse('@output("p").\np(X) :- b(X).\nb(1).')
        result = program.run()
        assert (1,) in set(result.tuples("p"))

    def test_framework_analyze_and_run(self):
        vada = VadaSA()
        report = vada.analyze_program(self.DIRTY, name="dirty")
        assert report.has_errors
        with pytest.raises(StaticAnalysisError):
            vada.run_program(self.DIRTY)
        result = vada.run_program('@output("p").\np(X) :- b(X).\nb(1).')
        assert (1,) in set(result.tuples("p"))


class TestShippedProgramsClean:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_module_is_analyzer_clean(self, name):
        report = analyze(
            Program.parse(program_source(name)), source_name=name
        )
        assert report.diagnostics == [], report.render()

    def test_suda_suppressions_are_justified(self):
        report = analyze(Program.parse(program_source("suda")))
        suppressed = {d.code for d in report.suppressed}
        assert suppressed == {"VDL020", "VDL021"}
        assert not report.has_errors

    def test_composed_pipeline_is_clean_and_fast(self):
        source = "\n".join(
            program_source(name)
            for name in ("tuple-build", "reidentification",
                         "anonymization-cycle")
        )
        program = Program.parse(source)
        best = min(
            self._timed(program) for _ in range(3)
        )
        assert best < 0.050, f"analyze took {best * 1000:.1f}ms"

    @staticmethod
    def _timed(program):
        start = time.perf_counter()
        report = analyze(program)
        elapsed = time.perf_counter() - start
        assert report.is_clean, report.render()
        return elapsed


class TestConformanceIntegration:
    def test_analyzer_dirty_counts_as_disagreement(self):
        program = Program.parse(TestPreflight.DIRTY)
        outcome = run_one(program)
        assert outcome.status == "analyzer-dirty"
        assert outcome.is_disagreement
        assert "VDL010" in outcome.detail

    def test_analyzer_engine_disagree_status(self):
        outcome = ConformanceOutcome("analyzer-engine-disagree", "x")
        assert outcome.is_disagreement

    def test_clean_generated_program_agrees(self):
        program = generate_program(random.Random(7))
        outcome = run_one(program)
        assert not outcome.is_disagreement, (outcome.status, outcome.detail)


class TestGeneratedProgramProperties:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_generated_programs_are_analyzer_clean(self, seed):
        # VDL070 is exempt: sensitivity seeding *intends* to produce
        # leaky programs for the static/dynamic cross-check.
        program = generate_program(random.Random(seed))
        report = analyze(program)
        errors = [d for d in report.errors if d.code != "VDL070"]
        assert not errors, report.render()

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_clean_programs_never_trip_static_engine_errors(self, seed):
        program = generate_program(random.Random(seed))
        assert not any(
            d.code != "VDL070" for d in analyze(program).errors
        )
        try:
            program.run(
                preflight=False, max_rounds=50, max_facts=20000
            )
        except (SafetyError, StratificationError, WardednessError) as exc:
            pytest.fail(
                "analyzer-clean program rejected by the engine's static "
                f"machinery: {type(exc).__name__}: {exc}"
            )
        except Exception:
            # Budget exhaustion and runtime evaluation errors are out of
            # the analyzer's scope.
            pass
