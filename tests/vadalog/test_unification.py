"""Matching and homomorphism tests, including the restricted-chase
rigid-null semantics and the isomorphic (null-to-null) mode."""

from repro.vadalog.atoms import Atom
from repro.vadalog.database import FactStore
from repro.vadalog.terms import Constant, LabelledNull, Variable
from repro.vadalog.unification import (
    bound_positions,
    conjunction_has_image,
    is_homomorphic_image,
    match_atom,
)


def fact(predicate, *values):
    return Atom.of(predicate, *values)


class TestMatchAtom:
    def test_simple_match(self):
        atom = Atom("p", (Variable("X"), Constant(1)))
        result = match_atom(atom, fact("p", "a", 1), {})
        assert result == {Variable("X"): Constant("a")}

    def test_constant_mismatch(self):
        atom = Atom("p", (Variable("X"), Constant(1)))
        assert match_atom(atom, fact("p", "a", 2), {}) is None

    def test_repeated_variable_must_agree(self):
        atom = Atom("p", (Variable("X"), Variable("X")))
        assert match_atom(atom, fact("p", 1, 1), {}) is not None
        assert match_atom(atom, fact("p", 1, 2), {}) is None

    def test_existing_binding_respected(self):
        atom = Atom("p", (Variable("X"),))
        bound = {Variable("X"): Constant(1)}
        assert match_atom(atom, fact("p", 1), bound) is not None
        assert match_atom(atom, fact("p", 2), bound) is None

    def test_input_binding_not_mutated(self):
        atom = Atom("p", (Variable("X"),))
        bound = {}
        match_atom(atom, fact("p", 1), bound)
        assert bound == {}

    def test_anonymous_variable_matches_anything(self):
        atom = Atom("p", (Variable("_"), Variable("_")))
        result = match_atom(atom, fact("p", 1, 2), {})
        assert result == {}

    def test_predicate_mismatch(self):
        atom = Atom("p", (Variable("X"),))
        assert match_atom(atom, fact("q", 1), {}) is None


class TestBoundPositions:
    def test_constants_and_bound_variables(self):
        atom = Atom("p", (Constant(1), Variable("X"), Variable("Y")))
        bound = bound_positions(atom, {Variable("X"): Constant(2)})
        assert bound == {0: Constant(1), 1: Constant(2)}


class TestHomomorphism:
    def test_exact_fact_is_image(self):
        store = FactStore([fact("p", 1)])
        assert is_homomorphic_image(fact("p", 1), store)

    def test_null_maps_to_constant(self):
        store = FactStore([fact("p", "a", 42)])
        pattern = Atom("p", (Constant("a"), LabelledNull(-1)))
        assert is_homomorphic_image(pattern, store)

    def test_repeated_null_must_map_consistently(self):
        store = FactStore([fact("p", 1, 2)])
        null = LabelledNull(-1)
        pattern = Atom("p", (null, null))
        assert not is_homomorphic_image(pattern, store)
        store.add(fact("p", 3, 3))
        assert is_homomorphic_image(pattern, store)

    def test_rigid_null_does_not_remap(self):
        # A body-bound null (not in the mappable set) is rigid.
        store = FactStore([fact("p", "a", 42)])
        rigid = LabelledNull(7)
        pattern = Atom("p", (rigid, LabelledNull(-1)))
        assert not is_homomorphic_image(
            pattern, store, mappable={LabelledNull(-1)}
        )

    def test_null_to_null_mode_remaps_rigid_nulls_onto_nulls(self):
        store = FactStore(
            [Atom("p", (LabelledNull(1), Constant(42)))]
        )
        rigid = LabelledNull(7)
        pattern = Atom("p", (rigid, Constant(42)))
        assert not is_homomorphic_image(pattern, store, mappable=set())
        assert is_homomorphic_image(
            pattern, store, mappable=set(), null_to_null=True
        )

    def test_null_to_null_never_maps_null_to_constant(self):
        store = FactStore([fact("p", "a", 42)])
        rigid = LabelledNull(7)
        pattern = Atom("p", (rigid, Constant(42)))
        assert not is_homomorphic_image(
            pattern, store, mappable=set(), null_to_null=True
        )


class TestConjunctionImage:
    def test_joint_consistency_across_atoms(self):
        store = FactStore(
            [fact("comb", "z1", "t"), fact("in", "a", "z1")]
        )
        shared = LabelledNull(-1)
        atoms = [
            Atom("comb", (shared, Constant("t"))),
            Atom("in", (Constant("a"), shared)),
        ]
        assert conjunction_has_image(atoms, store, {shared})

    def test_joint_inconsistency_detected(self):
        store = FactStore(
            [fact("comb", "z1", "t"), fact("in", "a", "z2")]
        )
        shared = LabelledNull(-1)
        atoms = [
            Atom("comb", (shared, Constant("t"))),
            Atom("in", (Constant("a"), shared)),
        ]
        assert not conjunction_has_image(atoms, store, {shared})

    def test_independent_nulls_map_independently(self):
        store = FactStore([fact("p", 1), fact("q", 2)])
        atoms = [
            Atom("p", (LabelledNull(-1),)),
            Atom("q", (LabelledNull(-2),)),
        ]
        assert conjunction_has_image(
            atoms, store, {LabelledNull(-1), LabelledNull(-2)}
        )

    def test_backtracking_finds_second_candidate(self):
        # First candidate for the first atom fails the second atom;
        # the search must backtrack.
        store = FactStore(
            [
                fact("comb", "z1", "t"),
                fact("comb", "z2", "t"),
                fact("in", "a", "z2"),
            ]
        )
        shared = LabelledNull(-1)
        atoms = [
            Atom("comb", (shared, Constant("t"))),
            Atom("in", (Constant("a"), shared)),
        ]
        assert conjunction_has_image(atoms, store, {shared})
