"""Regression tests for multi-head rule stratum assignment.

Both programs here are minimized conformance-harness counterexamples
(differential fuzzing against the naive reference oracle, seeds 150474
and 150008 of the isomorphic-termination campaign).  The engine used to
schedule a multi-head rule with its *highest*-ranked head component, so
a rule consuming the lower-ranked co-head could close its fixpoint
before the multi-head rule ever fired, silently losing derivations.
Co-heads are now forced into one SCC (see ``negation.DependencyGraph``).
"""

import pytest

from repro.vadalog import Program
from repro.vadalog.negation import stratify
from repro.vadalog.reference import naive_chase


def _engine_facts(program, termination):
    return set(program.run(provenance=False, termination=termination).facts())


def _oracle_facts(program, termination):
    result = naive_chase(
        program.rules,
        facts=program.facts,
        egds=program.egds,
        termination=termination,
    )
    return set(result.facts())


# Seed 150474: r2 co-derives p3 (rank above p2) and p2; r1 consumes p2
# recursively.  r4 is inert but inflates p3's rank.
CASE_RECURSIVE_CONSUMER = """
e0("a").
e1(2).
e2("c", 2).
@label("r1").
p2(W) :- e2(V, W), e0(Y), p2(X).
@label("r2").
p3(E0, V, E0), p2("c") :- e1(V).
@label("r4").
p3(E0, V, E0), p0(V, E0) :- p1(V, V), p0(2, V).
"""

# Seed 150008: r2 co-derives p0 (ranked above p1 via r3) and p1; the
# aggregate rule r0 consumes p1.
CASE_AGGREGATE_CONSUMER = """
e1(2).
@label("r0").
agg0(V, AGG) :- p1(V, W), AGG = mmax(3, <W>), (AGG > 1).
@label("r2").
p0(E0, Z), p1(Z, E0) :- e1(Z), not e2("b", Z).
@label("r3").
p0(E1, E0) :- p1(1, X).
"""


@pytest.mark.parametrize("termination", ["restricted", "isomorphic"])
def test_recursive_consumer_sees_cohead_facts(termination):
    program = Program.parse(CASE_RECURSIVE_CONSUMER)
    facts = _engine_facts(program, termination)
    by_name = {str(fact) for fact in facts}
    assert 'p2("c")' in by_name
    # The lost derivation: r1 must re-fire on the co-derived p2("c").
    assert "p2(2)" in by_name
    assert facts == _oracle_facts(program, termination)


@pytest.mark.parametrize("termination", ["restricted", "isomorphic"])
def test_aggregate_consumer_sees_cohead_facts(termination):
    program = Program.parse(CASE_AGGREGATE_CONSUMER)
    facts = _engine_facts(program, termination)
    by_name = {str(fact) for fact in facts}
    # The lost derivation: r0 must aggregate over the co-derived p1.
    assert "agg0(2, 3)" in by_name
    assert facts == _oracle_facts(program, termination)


def test_coheads_share_a_stratum():
    program = Program.parse(CASE_RECURSIVE_CONSUMER)
    strata = stratify(program.rules)
    by_label = {}
    for rank, stratum in enumerate(strata):
        for rule in stratum:
            by_label[rule.label] = rank
    # The producer of p2 (r2) may not be scheduled after its consumer
    # (r1): both heads of r2 share p2's stratum.
    assert by_label["r2"] <= by_label["r1"]
