"""Columnar fact-store backend tests.

Covers the dictionary-encoded columnar relation (round-trips, lazy
encoding, frontier bookkeeping), the cardinality-threshold promotion
policy and its escape hatches, the batched executor's differential
equivalence with the tuple-at-a-time dict backend on generated warded
programs, the batched error-masking contract (mask vs fall back, in
both directions), and the memory/EXPLAIN ANALYZE reporting for
columnar predicates.
"""

import os
from unittest import mock

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import telemetry
from repro.errors import EvaluationError
from repro.telemetry.inspect import render_memory
from repro.vadalog import Program
from repro.vadalog.atoms import Atom, Fact
from repro.vadalog.chase import ChaseEngine
from repro.vadalog.columnar import ColumnarRelation, TermDictionary
from repro.vadalog.database import (
    DEFAULT_COLUMNAR_THRESHOLD,
    FactStore,
    columnar_default_enabled,
    columnar_default_threshold,
)
from repro.vadalog.terms import Constant, LabelledNull, wrap_tuple


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def columnar_store(facts=()):
    """A store where every relation promotes on its first fact."""
    return FactStore(facts, columnar=True, columnar_threshold=1)


# ---------------------------------------------------------------------------
# Dictionary-encoding round-trips.


#: Hashable scalars the engine stores in constants — unicode text,
#: ints, bools, floats and frozensets all share columns freely.
scalar_values = st.one_of(
    st.text(max_size=8),
    st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.frozensets(st.integers(0, 5), max_size=3),
)


class TestEncodingRoundTrip:
    @given(
        rows=st.lists(
            st.tuples(scalar_values, scalar_values, scalar_values),
            max_size=30,
        )
    )
    def test_mixed_type_rows_round_trip(self, rows):
        store = columnar_store()
        facts = {Atom("p", wrap_tuple(row)) for row in rows}
        for fact in facts:
            assert store.add(fact)
            assert not store.add(fact)  # dedup holds pre-encoding
        relation = store._relations.get("p")
        if rows:
            assert relation.backend == "columnar"
        assert set(store.facts("p")) == facts
        # Force the lazy encoding pass via a partial probe, then check
        # nothing was lost or reordered into a different fact.
        for fact in facts:
            hits = store.probe("p", (1,), (fact.terms[1],))
            assert fact in hits
            assert all(h.terms[1] == fact.terms[1] for h in hits)
        assert set(store.facts("p")) == facts

    @given(values=st.lists(st.text(max_size=6), max_size=20))
    def test_unicode_dictionary_round_trip(self, values):
        dictionary = TermDictionary()
        terms = [Constant(v) for v in values]
        codes = [dictionary.code(t) for t in terms]
        for term, code in zip(terms, codes):
            assert dictionary.probe(term) == code
            assert dictionary.decode[code] == term
        assert len(dictionary) == len(set(terms))

    def test_labelled_nulls_encode_and_probe(self):
        store = columnar_store()
        null = LabelledNull(7)
        fact = Atom("p", (Constant("row"), null))
        store.add(fact)
        store.add(Atom("p", (Constant("other"), Constant(1))))
        assert store.probe("p", (1,), (null,)) == (fact,)
        # A never-interned null must miss without growing the dictionary.
        assert store.probe("p", (1,), (LabelledNull(99),)) == ()
        relation = store._relations["p"]
        # Column pruning: only the probed column's terms are interned.
        assert len(relation.dictionary) == 2
        assert store.probe("p", (0,), (Constant("row"),)) == (fact,)
        assert len(relation.dictionary) == 4

    def test_probe_after_append_sees_unencoded_rows(self):
        store = columnar_store()
        store.add(Atom.of("p", "a", 1))
        assert store.probe("p", (0,), (Constant("a"),)) == (
            Atom.of("p", "a", 1),
        )
        # New rows appended after the first encoding pass are lazily
        # encoded by the next partial probe.
        store.add(Atom.of("p", "a", 2))
        assert set(store.probe("p", (0,), (Constant("a"),))) == {
            Atom.of("p", "a", 1),
            Atom.of("p", "a", 2),
        }

    def test_full_arity_probe_and_membership(self):
        store = columnar_store()
        fact = Atom.of("p", "x", 9)
        store.add(fact)
        assert fact in store
        assert store.probe("p", (0, 1), fact.terms) == (fact,)
        assert store.probe("p", (0, 1), (Constant("x"), Constant(8))) == ()


# ---------------------------------------------------------------------------
# Promotion threshold and escape hatches.


class TestThresholdBoundary:
    def test_promotes_exactly_at_threshold(self):
        store = FactStore(columnar=True, columnar_threshold=5)
        for i in range(4):
            store.add(Atom.of("p", i))
        assert store._relations["p"].backend == "dict"
        store.add(Atom.of("p", 4))
        assert store._relations["p"].backend == "columnar"
        assert set(store.facts("p")) == {Atom.of("p", i) for i in range(5)}

    def test_duplicates_do_not_count_toward_threshold(self):
        store = FactStore(columnar=True, columnar_threshold=3)
        for _ in range(10):
            store.add(Atom.of("p", 1))
            store.add(Atom.of("p", 2))
        assert store._relations["p"].backend == "dict"

    def test_disabled_store_never_promotes(self):
        store = FactStore(columnar=False, columnar_threshold=1)
        for i in range(50):
            store.add(Atom.of("p", i))
        assert store._relations["p"].backend == "dict"

    def test_env_hatch_disables_columnar(self):
        with mock.patch.dict(os.environ, {"CHASE_COLUMNAR": "0"}):
            assert not columnar_default_enabled()
            assert not ChaseEngine([]).use_columnar
        with mock.patch.dict(os.environ, {"CHASE_COLUMNAR": ""}):
            assert columnar_default_enabled()

    def test_explicit_flag_wins_over_env(self):
        with mock.patch.dict(os.environ, {"CHASE_COLUMNAR": "0"}):
            assert ChaseEngine([], use_columnar=True).use_columnar

    def test_env_threshold_override(self):
        with mock.patch.dict(
            os.environ, {"CHASE_COLUMNAR_THRESHOLD": "17"}
        ):
            assert columnar_default_threshold() == 17
            assert FactStore(columnar=True).columnar_threshold == 17
        assert columnar_default_threshold() == DEFAULT_COLUMNAR_THRESHOLD


# ---------------------------------------------------------------------------
# Frontier (delta) invariants under the lazy-encoding representation.


class TestFrontierInvariants:
    def _stores(self):
        """One columnar, one dict store with identical contents."""
        return columnar_store(), FactStore(columnar=False)

    def test_mid_round_retract_updates_delta(self):
        for store in self._stores():
            for i in range(4):
                store.add(Atom.of("p", i, "v"))
            store.advance_delta()
            victim = Atom.of("p", 2, "v")
            # A delta probe builds the frontier view, then the retract
            # must invalidate it (functional-aggregate replacement).
            before = store.probe(
                "p", (1,), (Constant("v"),), delta_only=True
            )
            assert victim in before
            assert store.retract(victim)
            assert victim not in store.delta("p")
            after = store.probe(
                "p", (1,), (Constant("v"),), delta_only=True
            )
            assert victim not in after
            assert len(after) == 3

    def test_retract_before_encoding_pass(self):
        store = columnar_store()
        facts = [Atom.of("p", i) for i in range(3)]
        for fact in facts:
            store.add(fact)
        assert store.retract(facts[1])
        assert facts[1] not in store
        assert store.probe("p", (0,), (Constant(1),)) == ()
        assert set(store.facts("p")) == {facts[0], facts[2]}
        assert store.count("p") == 2

    def test_retract_after_encoding_pass(self):
        store = columnar_store()
        facts = [Atom.of("p", i, i % 2) for i in range(6)]
        for fact in facts:
            store.add(fact)
        store.probe("p", (1,), (Constant(0),))  # forces encoding
        assert store.retract(facts[4])
        hits = store.probe("p", (1,), (Constant(0),))
        assert facts[4] not in hits
        assert set(hits) == {facts[0], facts[2]}

    def test_advance_delta_matches_dict_backend(self):
        columnar, plain = self._stores()
        for store in (columnar, plain):
            store.add(Atom.of("p", 1))
            store.advance_delta()
            store.add(Atom.of("p", 2))
        assert columnar.delta("p") == plain.delta("p") == {Atom.of("p", 1)}
        for store in (columnar, plain):
            store.advance_delta()
        assert columnar.delta("p") == plain.delta("p") == {Atom.of("p", 2)}
        assert columnar.frontier_size() == plain.frontier_size()

    def test_copy_is_independent_and_keeps_backend(self):
        store = columnar_store()
        store.add(Atom.of("p", 1))
        store.advance_delta()
        store.add(Atom.of("p", 2))
        clone = store.copy()
        assert clone._relations["p"].backend == "columnar"
        assert set(clone.facts()) == set(store.facts())
        assert clone.delta("p") == store.delta("p")
        clone.add(Atom.of("p", 3))
        store.retract(Atom.of("p", 1))
        assert Atom.of("p", 3) not in store
        assert Atom.of("p", 1) in clone

    def test_reset_delta_to_all(self):
        store = columnar_store()
        for i in range(3):
            store.add(Atom.of("p", i))
        store.advance_delta()
        store.reset_delta_to_all()
        assert store.delta("p") == {Atom.of("p", i) for i in range(3)}


# ---------------------------------------------------------------------------
# Differential equivalence: columnar batched vs dict tuple-at-a-time.


class TestDictColumnarEquivalence:
    MAX_ROUNDS = 400
    MAX_FACTS = 4_000

    def _run(self, program, columnar):
        try:
            result = program.run(
                provenance=True,
                max_rounds=self.MAX_ROUNDS,
                max_facts=self.MAX_FACTS,
                preflight=False,
                use_columnar=columnar,
                columnar_threshold=1 if columnar else None,
            )
        except Exception as exc:  # noqa: BLE001 — crashes compared too
            return ("error", type(exc).__name__)
        return (
            "ok",
            frozenset(result.facts()),
            len(result.provenance),
            result.rounds,
        )

    @given(rng=st.randoms(use_true_random=False))
    def test_identical_facts_provenance_and_rounds(self, rng):
        """Without existentials and aggregates the two backends agree
        on everything observable: fact sets (labels and all),
        provenance entry counts, and semi-naive round counts."""
        from repro.testing.generator import (
            GeneratorConfig, generate_program,
        )

        config = GeneratorConfig(p_existential=0.0, p_aggregate=0.0)
        program = generate_program(rng, config)
        batched = self._run(program, columnar=True)
        rowwise = self._run(program, columnar=False)
        assert batched == rowwise, (
            f"columnar {batched[:2]} != dict {rowwise[:2]}\n"
            f"{program.to_source()}"
        )

    @given(rng=st.randoms(use_true_random=False))
    def test_backend_agreement_full_feature_mix(self, rng):
        """With the full generator mix (existentials, aggregates,
        negation, EGDs) the harness's backend=both lane — columnar/dict
        cross-check gated before the oracle — finds no disagreement."""
        from repro.testing.conformance import run_one
        from repro.testing.generator import (
            GeneratorConfig, generate_program,
        )

        program = generate_program(rng, GeneratorConfig())
        outcome = run_one(program, engine_variant="both", backend="both")
        assert not outcome.is_disagreement, (
            f"{outcome.status}: {outcome.detail}\n{program.to_source()}"
        )


# ---------------------------------------------------------------------------
# Batched error masking: suppress per-row, or fall back — both
# directions, matching the legacy evaluator exactly.


class TestBatchedErrorMasking:
    # Mutual recursion delivers e(2, 0) as a *delta* fact, so the
    # delta plan's pushed-down division raises mid-batch.  The legacy
    # evaluator joins all positives first and f(2) is absent — legacy
    # provably never evaluates 2/0 — so the batched executor must mask
    # that single row and keep the rest of the batch.  (The row path
    # falls back to legacy enumeration here instead; see
    # test_telemetry_events.TestPlanFallbackEvents for that lane.)
    MASK_PROGRAM = (
        'f(1). e(1, 1). seed(2).\n@label("div").\n'
        'out(Q) :- e(X, Y), Q = X / Y, f(X).\n'
        'e(X, 0) :- out(Q), seed(X).\n@output("out").\n'
    )

    # Here the raising row *does* complete the join (f(1) matches), so
    # legacy raises too: the batched path must fall back and reproduce
    # the legacy error, never silently masking it away.
    RAISE_PROGRAM = (
        'f(1). e(1, 0).\n@label("div").\n'
        'out(Q) :- e(X, Y), Q = X / Y, f(X).\n@output("out").\n'
    )

    def test_masked_row_matches_legacy_exactly(self):
        results = {}
        for name, kwargs in (
            ("columnar", dict(use_columnar=True, columnar_threshold=1)),
            ("dict", dict(use_columnar=False)),
            ("legacy", dict(use_plans=False, use_columnar=False)),
        ):
            result = Program.parse(self.MASK_PROGRAM).run(
                preflight=False, **kwargs
            )
            results[name] = frozenset(result.facts())
        assert results["columnar"] == results["dict"] == results["legacy"]
        out = Program.parse(self.MASK_PROGRAM).run(
            preflight=False, use_columnar=True, columnar_threshold=1
        )
        assert sorted(out.tuples("out")) == [(1.0,)]

    def test_raising_row_falls_back_and_reproduces_legacy_error(self):
        for kwargs in (
            dict(use_columnar=True, columnar_threshold=1),
            dict(use_columnar=False),
            dict(use_plans=False),
        ):
            with pytest.raises(EvaluationError):
                Program.parse(self.RAISE_PROGRAM).run(
                    preflight=False, **kwargs
                )

    def test_mask_emits_schema_versioned_event_not_fallback(self):
        from repro.telemetry.events import EVENT_SCHEMA_VERSION

        telemetry.enable(events=True)
        # Pinned serial: batched (vectorized) execution is what emits
        # the mask event, and the parallel chase enumerates row-wise.
        Program.parse(self.MASK_PROGRAM).run(
            preflight=False, use_columnar=True, columnar_threshold=1,
            parallelism=1,
        )
        log = telemetry.events()
        masks = log.tail("batch_mask")
        assert masks, "masked run emitted no batch_mask event"
        event = masks[0]
        assert event["v"] == EVENT_SCHEMA_VERSION
        payload = event["payload"]
        assert payload["rule"] == "div"
        assert payload["op"] == "assign"
        assert payload["error"] == "EvaluationError"
        assert payload["rows"] == 1
        assert {"step", "stratum", "round"} <= set(payload)
        # The row was masked, not abandoned: no plan fallback happened.
        assert not log.tail("plan_fallback")

    def test_mask_counter_attributed_to_rule(self):
        telemetry.enable()
        Program.parse(self.MASK_PROGRAM).run(
            preflight=False, use_columnar=True, columnar_threshold=1,
            parallelism=1,
        )
        counters = telemetry.registry().counters("chase.batch_masked_rows")
        assert sum(counters.values()) == 1
        assert any("div" in key for key in counters)

    def test_fallback_emits_event_under_batching(self):
        telemetry.enable(events=True)
        with pytest.raises(EvaluationError):
            Program.parse(self.RAISE_PROGRAM).run(
                preflight=False, use_columnar=True, columnar_threshold=1
            )
        log = telemetry.events()
        fallbacks = log.tail("plan_fallback")
        assert fallbacks, "fallback run emitted no plan_fallback event"
        assert fallbacks[0]["payload"]["rule"] == "div"


# ---------------------------------------------------------------------------
# Memory accounting and EXPLAIN ANALYZE integration.


class TestColumnarMemoryReporting:
    PROGRAM = (
        "out(X, Y) :- e(X, Y), f(Y).\n@output(\"out\").\n"
    )

    def _facts(self):
        facts = [Atom.of("e", i, i % 10) for i in range(40)]
        facts += [Atom.of("f", i) for i in range(10)]
        return facts

    def test_memory_stats_report_real_column_bytes(self):
        program = Program.parse(self.PROGRAM)
        result = program.run(
            self._facts(), preflight=False, provenance=False,
            use_columnar=True, columnar_threshold=20,
        )
        # One hit, one miss — memory_stats reports lifetime counters
        # whatever join order the planner picked.
        result.store.probe("e", (1,), (Constant(3),))
        result.store.probe("e", (1,), (Constant("never-stored"),))
        report = result.store.memory_stats()
        e_info = report["predicates"]["e"]
        assert e_info["backend"] == "columnar"
        assert e_info["column_bytes"] > 0
        assert e_info["estimated_bytes"] >= e_info["column_bytes"]
        assert e_info["probes"] >= 2
        assert e_info["probe_hits"] >= 1
        assert e_info["probe_hits"] < e_info["probes"]
        # f stayed below the threshold: dict shape, no columnar keys.
        f_info = report["predicates"]["f"]
        assert f_info["backend"] == "dict"
        assert "column_bytes" not in f_info
        # The total sums every columnar relation (out promoted too).
        assert report["column_bytes"] == sum(
            info.get("column_bytes", 0)
            for info in report["predicates"].values()
        )
        assert report["column_bytes"] >= e_info["column_bytes"]

    def test_render_memory_stable_for_dict_annotated_for_columnar(self):
        program = Program.parse(self.PROGRAM)
        result = program.run(
            self._facts(), preflight=False, provenance=False,
            use_columnar=True, columnar_threshold=20,
        )
        rendered = render_memory({"store": result.store.memory_stats()})
        e_line = next(
            line for line in rendered.splitlines()
            if line.strip().startswith("e:")
        )
        assert "in columns" in e_line
        assert "probes" in e_line
        f_line = next(
            line for line in rendered.splitlines()
            if line.strip().startswith("f:")
        )
        # Dict-backed predicates keep the historical line shape.
        assert f_line.endswith("frontier 0")
        assert "columns" not in f_line

    def test_explain_analyze_counts_batched_rows(self):
        program = Program.parse(self.PROGRAM)
        result = program.run(
            self._facts(), preflight=False, provenance=False,
            analyze=True, use_columnar=True, columnar_threshold=20,
        )
        explain = result.explain_report
        assert explain is not None and explain["analyze"]
        actuals = [
            step["actual"]
            for entry in explain["rules"]
            for plan in entry["plans"]
            for step in plan["steps"]
            if "actual" in step
        ]
        assert actuals, "ANALYZE annotated no plan steps"
        # Batched execution reports invocations as rows-in, so a
        # whole-frontier probe shows one execution driving many rows.
        assert any(stats["rows_out"] > 0 for stats in actuals)

    def test_store_counters_cover_columnar_lifecycle(self):
        telemetry.enable()
        program = Program.parse(self.PROGRAM)
        program.run(
            self._facts(), preflight=False, provenance=False,
            use_columnar=True, columnar_threshold=20,
        )
        counters = telemetry.registry().counters("store.columnar")
        assert sum(
            v for k, v in counters.items() if "promotions" in k
        ) >= 1
        assert sum(
            v for k, v in counters.items() if "rows_encoded" in k
        ) > 0
        assert sum(v for k, v in counters.items() if "probes" in k) > 0
