"""Parser robustness: arbitrary input must either parse or raise
ParseError/SafetyError — never crash with an internal exception."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParseError, SafetyError
from repro.vadalog.parser.parser import parse_program


class TestFuzz:
    @given(st.text(max_size=120))
    def test_arbitrary_text_never_crashes(self, source):
        try:
            parse_program(source)
        except (ParseError, SafetyError):
            pass  # expected on malformed input

    @given(
        st.text(
            alphabet="abcXYZ(),.:-<>=%123 \n_#[]{}\"'+*/@",
            max_size=160,
        )
    )
    def test_token_soup_never_crashes(self, source):
        try:
            parse_program(source)
        except (ParseError, SafetyError):
            pass

    @given(st.lists(
        st.sampled_from([
            "p(X) :- q(X).",
            "q(a).",
            "r(X, Y) :- q(X), q(Y), X != Y.",
            '@label("x").',
            "s(X, S) :- q(X), S = mcount(<X>).",
            "C1 = C2 :- c(A, C1), c(A, C2).",
        ]),
        min_size=1,
        max_size=6,
    ))
    def test_shuffled_valid_statements_parse(self, statements):
        parsed = parse_program("\n".join(statements))
        assert (
            len(parsed.rules)
            + len(parsed.facts)
            + len(parsed.egds)
            + len(parsed.annotations)
            >= 0
        )


class TestSpecificMalformedInputs:
    @pytest.mark.parametrize(
        "source",
        [
            "p(X :- q(X).",          # unbalanced paren
            "p(X) :- q(X)",          # missing terminator
            "p(X) q(X).",            # missing arrow/comma
            ":- q(X).",              # empty head
            "p(X) :- .",             # empty body item
            "@label(.",              # broken annotation
            "p(X) :- q(X), S = .",   # dangling assignment
            "p(X) :- q(X), msum(X, <>).",  # empty contributors
            'p("unterminated).',
            "p(1.2.3).",
        ],
    )
    def test_raises_parse_error(self, source):
        with pytest.raises((ParseError, SafetyError)):
            parse_program(source)
