"""Engine-path tests for the anonymization modules (Algorithms 7-8)
and the full declarative pipeline on survey data."""

import pytest

from repro.data import city_fragment
from repro.model import DomainHierarchy
from repro.vadalog import Program
from repro.vadalog.atoms import Atom
from repro.vadalog.terms import LabelledNull
from repro.vadalog_programs import (
    ANONYMIZATION_CYCLE,
    GLOBAL_RECODING,
    K_ANONYMITY,
    LOCAL_SUPPRESSION,
    TUPLE_BUILD,
    cycle_registry,
)


def vset_of(result, state, db, row):
    return state._current[(db.name, row)]


class TestLocalSuppressionProgram:
    def test_suppress_external_injects_null(self, cities_db):
        registry, state = cycle_registry(k=2)
        facts = cities_db.to_facts() + [
            Atom.of("anonymize", cities_db.name, 0),
        ]
        program = Program.parse(TUPLE_BUILD + LOCAL_SUPPRESSION)
        result = program.run(facts, externals=registry)
        suppressed = result.tuples("suppressed")
        assert suppressed, "Rule 7 should fire for the marked tuple"
        # The cycle state's current version of tuple 0 carries a null.
        current = state._current[(cities_db.name, 0)]
        nulls = [v for _, v in current if isinstance(v, LabelledNull)]
        assert nulls

    def test_only_marked_tuples_touched(self, cities_db):
        registry, state = cycle_registry(k=2)
        facts = cities_db.to_facts() + [
            Atom.of("anonymize", cities_db.name, 3),
        ]
        program = Program.parse(TUPLE_BUILD + LOCAL_SUPPRESSION)
        result = program.run(facts, externals=registry)
        touched = {i for _, i, _ in result.tuples("suppressed")}
        assert touched == {3}


class TestGlobalRecodingProgram:
    def hierarchy_facts(self):
        return DomainHierarchy.italian_geography().to_facts()

    def test_recode_climbs_hierarchy(self, cities_db):
        registry, state = cycle_registry(k=2)
        facts = (
            cities_db.to_facts()
            + self.hierarchy_facts()
            + [Atom.of("anonymize", cities_db.name, 5)]
        )
        program = Program.parse(TUPLE_BUILD + GLOBAL_RECODING)
        result = program.run(facts, externals=registry)
        recoded = result.tuples("recoded")
        assert (cities_db.name, 5, "Area", "North") in recoded
        current = dict(state._current[(cities_db.name, 5)])
        assert current["Area"] == "North"

    def test_no_recode_without_hierarchy_knowledge(self, cities_db):
        registry, _ = cycle_registry(k=2)
        facts = cities_db.to_facts() + [
            Atom.of("anonymize", cities_db.name, 5)
        ]
        program = Program.parse(TUPLE_BUILD + GLOBAL_RECODING)
        result = program.run(facts, externals=registry)
        assert result.tuples("recoded") == []


class TestDeclarativePipeline:
    def test_cycle_plus_risk_modules_compose(self, cities_db):
        """TUPLE_BUILD + K_ANONYMITY + ANONYMIZATION_CYCLE as one
        composed program: the Vadalog risk module computes riskOutput
        while the cycle's #risk external drives anonymization — both
        must agree on which tuples were dangerous initially."""
        registry, state = cycle_registry(k=2, semantics="maybe-match")
        facts = cities_db.to_facts() + [
            Atom.of("anonSet", cities_db.name,
                    frozenset(cities_db.quasi_identifiers)),
            Atom.of("param", "k", 2),
            Atom.of("param", "T", 0.5),
        ]
        program = Program.parse(
            TUPLE_BUILD + K_ANONYMITY + ANONYMIZATION_CYCLE
        )
        result = program.run(facts, externals=registry)
        anonymized = {i for _, i in result.tuples("anonymized")}
        # Minimality: only initially-risky tuples are ever touched, and
        # the #anonymize external skips tuples already fixed by earlier
        # suppressions in the same pass (rows 5 and 6 maybe-match once
        # either is suppressed), so one of them may stay untouched.
        assert anonymized <= {0, 5, 6}
        assert 0 in anonymized
        assert anonymized & {5, 6}
        accepted = {i for _, i, _ in result.tuples("tupleA")}
        assert accepted == set(range(len(cities_db)))

    def test_engine_cycle_on_inflation_growth_fragment(self, ig_db):
        """The full declarative path on the paper's Figure 1 data:
        every tuple of the fragment is a 5-QI sample unique, so all 20
        must be anonymized before tupleA accepts them.  The anonSet
        fact restricts grouping/suppression to the quasi-identifiers —
        the sampling weight carried in VSet must play no role."""
        registry, state = cycle_registry(k=2, semantics="maybe-match")
        facts = ig_db.to_facts() + [
            Atom.of("param", "T", 0.5),
            Atom.of("anonSet", ig_db.name,
                    frozenset(ig_db.quasi_identifiers)),
        ]
        program = Program.parse(TUPLE_BUILD + ANONYMIZATION_CYCLE)
        result = program.run(facts, externals=registry)
        accepted = {i for _, i, _ in result.tuples("tupleA")}
        assert accepted == set(range(len(ig_db)))
        assert result.nulls_introduced > 0
        # No Weight cell was ever suppressed.
        for (_, _), vset in state._current.items():
            values = dict(vset)
            from repro.vadalog.terms import LabelledNull

            assert not isinstance(values["Weight"], LabelledNull)

    def test_provenance_explains_anonymization(self, cities_db):
        registry, _ = cycle_registry(k=2, semantics="maybe-match")
        facts = cities_db.to_facts() + [Atom.of("param", "T", 0.5)]
        program = Program.parse(TUPLE_BUILD + ANONYMIZATION_CYCLE)
        result = program.run(facts, externals=registry)
        target = next(
            fact for fact in result.facts("anonymized")
        )
        tree = result.explain(target)
        rendered = tree.render()
        assert "cycle-anonymize" in rendered
        assert "tuple(" in rendered
