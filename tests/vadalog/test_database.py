"""FactStore tests: indexing, deltas, retraction."""

import pytest

from repro.vadalog.atoms import Atom
from repro.vadalog.database import FactStore
from repro.vadalog.terms import Constant


def fact(predicate, *values):
    return Atom.of(predicate, *values)


class TestBasicStorage:
    def test_add_and_contains(self):
        store = FactStore()
        assert store.add(fact("p", 1))
        assert store.contains(fact("p", 1))
        assert not store.contains(fact("p", 2))

    def test_duplicate_add_returns_false(self):
        store = FactStore([fact("p", 1)])
        assert not store.add(fact("p", 1))
        assert len(store) == 1

    def test_non_ground_rejected(self):
        from repro.vadalog.terms import Variable

        store = FactStore()
        with pytest.raises(ValueError):
            store.add(Atom("p", (Variable("X"),)))

    def test_count_by_predicate(self):
        store = FactStore([fact("p", 1), fact("p", 2), fact("q", 1)])
        assert store.count("p") == 2
        assert store.count("q") == 1
        assert store.count() == 3

    def test_iteration(self):
        store = FactStore([fact("p", 1), fact("q", 2)])
        assert {f.predicate for f in store} == {"p", "q"}

    def test_copy_is_independent(self):
        store = FactStore([fact("p", 1)])
        clone = store.copy()
        clone.add(fact("p", 2))
        assert len(store) == 1
        assert len(clone) == 2


class TestLookup:
    def test_lookup_by_bound_position(self):
        store = FactStore(
            [fact("e", "a", 1), fact("e", "a", 2), fact("e", "b", 3)]
        )
        hits = list(store.lookup("e", {0: Constant("a")}))
        assert len(hits) == 2

    def test_lookup_multiple_positions(self):
        store = FactStore(
            [fact("e", "a", 1), fact("e", "a", 2), fact("e", "b", 1)]
        )
        hits = list(store.lookup("e", {0: Constant("a"), 1: Constant(1)}))
        assert len(hits) == 1

    def test_lookup_unknown_predicate(self):
        store = FactStore()
        assert list(store.lookup("nope", {})) == []

    def test_lookup_unmatched_value(self):
        store = FactStore([fact("e", "a")])
        assert list(store.lookup("e", {0: Constant("z")})) == []

    def test_index_updated_after_later_adds(self):
        store = FactStore([fact("e", "a", 1)])
        # Force index creation, then add more facts.
        list(store.lookup("e", {0: Constant("a")}))
        store.add(fact("e", "a", 2))
        assert len(list(store.lookup("e", {0: Constant("a")}))) == 2


class TestDeltas:
    def test_new_facts_become_next_delta(self):
        store = FactStore([fact("p", 1)])
        store.reset_delta_to_all()
        assert store.delta("p") == {fact("p", 1)}
        store.add(fact("p", 2))
        # Not yet in the frontier...
        assert fact("p", 2) not in store.delta("p")
        store.advance_delta()
        # ...now it is, alone.
        assert store.delta("p") == {fact("p", 2)}

    def test_has_delta_false_at_fixpoint(self):
        store = FactStore([fact("p", 1)])
        store.reset_delta_to_all()
        store.advance_delta()
        assert not store.has_delta()

    def test_delta_only_lookup(self):
        store = FactStore([fact("e", "a", 1)])
        store.reset_delta_to_all()
        store.advance_delta()
        store.add(fact("e", "a", 2))
        store.advance_delta()
        hits = list(store.lookup("e", {0: Constant("a")}, delta_only=True))
        assert hits == [fact("e", "a", 2)]


class TestRetraction:
    def test_retract_removes_everywhere(self):
        store = FactStore([fact("p", 1)])
        list(store.lookup("p", {0: Constant(1)}))  # build index
        assert store.retract(fact("p", 1))
        assert not store.contains(fact("p", 1))
        assert list(store.lookup("p", {0: Constant(1)})) == []

    def test_retract_missing_returns_false(self):
        store = FactStore()
        assert not store.retract(fact("p", 1))
