"""FactStore tests: indexing, deltas, retraction."""

import pytest

from repro.vadalog.atoms import Atom
from repro.vadalog.database import FactStore
from repro.vadalog.terms import Constant


def fact(predicate, *values):
    return Atom.of(predicate, *values)


class TestBasicStorage:
    def test_add_and_contains(self):
        store = FactStore()
        assert store.add(fact("p", 1))
        assert store.contains(fact("p", 1))
        assert not store.contains(fact("p", 2))

    def test_duplicate_add_returns_false(self):
        store = FactStore([fact("p", 1)])
        assert not store.add(fact("p", 1))
        assert len(store) == 1

    def test_non_ground_rejected(self):
        from repro.vadalog.terms import Variable

        store = FactStore()
        with pytest.raises(ValueError):
            store.add(Atom("p", (Variable("X"),)))

    def test_count_by_predicate(self):
        store = FactStore([fact("p", 1), fact("p", 2), fact("q", 1)])
        assert store.count("p") == 2
        assert store.count("q") == 1
        assert store.count() == 3

    def test_iteration(self):
        store = FactStore([fact("p", 1), fact("q", 2)])
        assert {f.predicate for f in store} == {"p", "q"}

    def test_copy_is_independent(self):
        store = FactStore([fact("p", 1)])
        clone = store.copy()
        clone.add(fact("p", 2))
        assert len(store) == 1
        assert len(clone) == 2


class TestLookup:
    def test_lookup_by_bound_position(self):
        store = FactStore(
            [fact("e", "a", 1), fact("e", "a", 2), fact("e", "b", 3)]
        )
        hits = list(store.lookup("e", {0: Constant("a")}))
        assert len(hits) == 2

    def test_lookup_multiple_positions(self):
        store = FactStore(
            [fact("e", "a", 1), fact("e", "a", 2), fact("e", "b", 1)]
        )
        hits = list(store.lookup("e", {0: Constant("a"), 1: Constant(1)}))
        assert len(hits) == 1

    def test_lookup_unknown_predicate(self):
        store = FactStore()
        assert list(store.lookup("nope", {})) == []

    def test_lookup_unmatched_value(self):
        store = FactStore([fact("e", "a")])
        assert list(store.lookup("e", {0: Constant("z")})) == []

    def test_index_updated_after_later_adds(self):
        store = FactStore([fact("e", "a", 1)])
        # Force index creation, then add more facts.
        list(store.lookup("e", {0: Constant("a")}))
        store.add(fact("e", "a", 2))
        assert len(list(store.lookup("e", {0: Constant("a")}))) == 2


class TestDeltas:
    def test_new_facts_become_next_delta(self):
        store = FactStore([fact("p", 1)])
        store.reset_delta_to_all()
        assert store.delta("p") == {fact("p", 1)}
        store.add(fact("p", 2))
        # Not yet in the frontier...
        assert fact("p", 2) not in store.delta("p")
        store.advance_delta()
        # ...now it is, alone.
        assert store.delta("p") == {fact("p", 2)}

    def test_has_delta_false_at_fixpoint(self):
        store = FactStore([fact("p", 1)])
        store.reset_delta_to_all()
        store.advance_delta()
        assert not store.has_delta()

    def test_delta_only_lookup(self):
        store = FactStore([fact("e", "a", 1)])
        store.reset_delta_to_all()
        store.advance_delta()
        store.add(fact("e", "a", 2))
        store.advance_delta()
        hits = list(store.lookup("e", {0: Constant("a")}, delta_only=True))
        assert hits == [fact("e", "a", 2)]


class TestRetraction:
    def test_retract_removes_everywhere(self):
        store = FactStore([fact("p", 1)])
        list(store.lookup("p", {0: Constant(1)}))  # build index
        assert store.retract(fact("p", 1))
        assert not store.contains(fact("p", 1))
        assert list(store.lookup("p", {0: Constant(1)})) == []

    def test_retract_missing_returns_false(self):
        store = FactStore()
        assert not store.retract(fact("p", 1))


class TestCompositeIndices:
    """Multi-position tuple-key probes (the compiled-plan primitive)."""

    def _triples(self):
        return FactStore([
            fact("t", "a", 1, "x"),
            fact("t", "a", 1, "y"),
            fact("t", "a", 2, "x"),
            fact("t", "b", 1, "x"),
            fact("t", "b", 2, "y"),
        ])

    def _linear(self, store, predicate, positions, key):
        return {
            f for f in store.facts(predicate)
            if tuple(f.terms[p] for p in positions) == tuple(key)
        }

    def test_probe_matches_linear_scan(self):
        store = self._triples()
        for positions in [(0,), (1,), (0, 1), (0, 2), (1, 2)]:
            for reference in store.facts("t"):
                key = tuple(reference.terms[p] for p in positions)
                assert set(store.probe("t", positions, key)) == \
                    self._linear(store, "t", positions, key)

    def test_full_arity_probe_is_membership(self):
        store = self._triples()
        key = (Constant("a"), Constant(1), Constant("x"))
        assert set(store.probe("t", (0, 1, 2), key)) == {
            fact("t", "a", 1, "x")
        }
        missing = (Constant("a"), Constant(9), Constant("x"))
        assert store.probe("t", (0, 1, 2), missing) == ()

    def test_probe_empty_positions_returns_all(self):
        store = self._triples()
        assert set(store.probe("t", (), ())) == set(store.facts("t"))

    def test_probe_unknown_predicate(self):
        assert FactStore().probe("t", (0,), (Constant("a"),)) == ()

    def test_lookup_multi_position_agrees_with_probe(self):
        store = self._triples()
        bound = {0: Constant("a"), 1: Constant(1)}
        assert set(store.lookup("t", bound)) == \
            self._linear(store, "t", (0, 1), (Constant("a"), Constant(1)))

    def test_composite_maintained_across_add(self):
        store = self._triples()
        key = (Constant("a"), Constant(1))
        assert len(store.probe("t", (0, 1), key)) == 2  # builds the index
        store.add(fact("t", "a", 1, "z"))
        assert len(store.probe("t", (0, 1), key)) == 3

    def test_composite_maintained_across_retract(self):
        store = self._triples()
        key = (Constant("a"), Constant(1))
        assert len(store.probe("t", (0, 1), key)) == 2
        store.retract(fact("t", "a", 1, "x"))
        assert set(store.probe("t", (0, 1), key)) == {fact("t", "a", 1, "y")}

    def test_delta_view_tracks_frontier(self):
        store = self._triples()
        store.reset_delta_to_all()
        key = (Constant("a"), Constant(1))
        assert len(store.probe("t", (0, 1), key, delta_only=True)) == 2
        store.add(fact("t", "a", 1, "z"))
        # Pending facts are not frontier facts until advance_delta.
        assert len(store.probe("t", (0, 1), key, delta_only=True)) == 2
        store.advance_delta()
        assert set(store.probe("t", (0, 1), key, delta_only=True)) == {
            fact("t", "a", 1, "z")
        }

    def test_delta_view_invalidated_by_mid_round_retract(self):
        store = self._triples()
        store.reset_delta_to_all()
        key = (Constant("a"), Constant(1))
        assert len(store.probe("t", (0, 1), key, delta_only=True)) == 2
        # Functional-aggregate style retraction of a frontier fact.
        store.retract(fact("t", "a", 1, "x"))
        assert set(store.probe("t", (0, 1), key, delta_only=True)) == {
            fact("t", "a", 1, "y")
        }

    def test_delta_only_empty_frontier(self):
        store = self._triples()  # never reset: frontier is empty
        store.advance_delta()
        store.advance_delta()
        assert store.probe(
            "t", (0, 1), (Constant("a"), Constant(1)), delta_only=True
        ) == ()

    def test_index_build_and_probe_telemetry(self):
        import repro.telemetry as telemetry

        telemetry.disable()
        telemetry.reset()
        telemetry.enable()
        try:
            store = self._triples()
            store.reset_delta_to_all()
            key = (Constant("a"), Constant(1))
            store.probe("t", (0, 1), key)
            store.probe("t", (0, 1), key)
            store.probe("t", (0, 1), key, delta_only=True)
            counters = telemetry.registry().counters("store.")
            assert counters.get("store.composite_index_builds") == 1
            assert counters.get("store.delta_index_builds") == 1
            assert counters.get("store.composite_probes") == 3
            assert counters.get("store.composite_probe_hits") == 3
        finally:
            telemetry.disable()
            telemetry.reset()


class TestCopyPreservesFrontier:
    """Regression: copy() used to silently drop delta/pending state,
    so a mid-chase clone would never fire another semi-naive round."""

    def test_copy_preserves_delta_and_pending(self):
        store = FactStore([fact("p", 1)])
        store.reset_delta_to_all()   # p(1) is frontier
        store.add(fact("p", 2))      # p(2) is pending
        clone = store.copy()
        assert clone.delta("p") == {fact("p", 1)}
        assert clone.has_pending()
        clone.advance_delta()
        assert clone.delta("p") == {fact("p", 2)}
        # The original is untouched by the clone's bookkeeping.
        assert store.delta("p") == {fact("p", 1)}

    def test_copy_of_fresh_store_is_fresh(self):
        store = FactStore([fact("p", 1)])
        clone = store.copy()
        assert not clone.has_delta()
        assert clone.has_pending() == store.has_pending()
