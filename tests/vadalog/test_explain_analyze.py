"""EXPLAIN / EXPLAIN ANALYZE through the engine and the CLI, plus the
chase-side observability hooks this PR wires in: memory gauges,
heartbeat/stall publication, and the degenerate-run plan-report fixes."""

import json

import pytest

from repro import telemetry
from repro.cli import main as cli_main
from repro.telemetry.inspect import render_explain
from repro.vadalog import Program
from repro.vadalog.atoms import Atom
from repro.vadalog.chase import ChaseEngine

TRANSITIVE = """
e(1, 2). e(2, 3). e(3, 4).
@label("base").
path(X, Y) :- e(X, Y).
@label("step").
path(X, Z) :- path(X, Y), e(Y, Z).
@output("path").
"""


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


class TestStaticExplain:
    def test_document_shape(self):
        program = Program.parse(TRANSITIVE)
        engine = ChaseEngine(program.rules)
        doc = engine.explain()
        assert doc["version"] == 1
        assert doc["analyze"] is False
        assert [r["rule"] for r in doc["rules"]] == ["base", "step"]
        base = doc["rules"][0]
        assert base["stratum"] == 0
        assert not base["unplannable"]
        names = [p["name"] for p in base["plans"]]
        assert names == ["first-round", "delta[0:e]"]
        first_step = base["plans"][0]["steps"][0]
        assert first_step["op"] == "scan"
        assert first_step["predicate"] == "e"
        assert first_step["delta_only"] is False
        assert "actual" not in first_step

    def test_probe_layout_surfaces_key_positions(self):
        program = Program.parse(TRANSITIVE)
        doc = ChaseEngine(program.rules).explain()
        step_rule = doc["rules"][1]
        probe = step_rule["plans"][0]["steps"][1]
        assert probe["op"] == "scan"
        assert probe["key_positions"] == [0]
        assert "probe" in probe["detail"]

    def test_unplannable_rule_carries_reason(self):
        source = (
            "out(Q) :- #gen(X), Q = X + 1.\n@output(\"out\").\n"
        )
        program = Program.parse(source)
        doc = ChaseEngine(program.rules).explain()
        (entry,) = doc["rules"]
        assert entry["unplannable"]
        assert "reads" in entry["reason"]
        assert entry["plans"] == []
        assert "UNPLANNABLE" in render_explain(doc)

    def test_empty_program(self):
        doc = ChaseEngine([]).explain()
        assert doc["rules"] == []
        assert "0 rule(s)" in render_explain(doc)

    def test_document_is_json_serializable(self):
        program = Program.parse(TRANSITIVE)
        doc = ChaseEngine(program.rules).explain()
        assert json.loads(json.dumps(doc)) == doc


class TestAnalyze:
    def test_actuals_recorded_per_step(self):
        result = Program.parse(TRANSITIVE).run(
            preflight=False, analyze=True
        )
        doc = result.explain_report
        assert doc["analyze"] is True
        base = next(r for r in doc["rules"] if r["rule"] == "base")
        first = base["plans"][0]
        assert first["executions"] == 1
        assert first["matches"] == 3  # e has 3 facts
        actual = first["steps"][0]["actual"]
        assert actual["rows_out"] == 3
        assert actual["probe_calls"] == 1
        assert actual["probe_hits"] == 1
        assert actual["rows_scanned"] == 3
        assert actual["wall_ns"] > 0

    def test_stats_explain_section(self):
        result = Program.parse(TRANSITIVE).run(
            preflight=False, analyze=True
        )
        assert result.stats["explain"] is result.explain_report
        assert json.loads(json.dumps(result.stats["explain"]))

    def test_analyze_does_not_change_results(self):
        plain = Program.parse(TRANSITIVE).run(preflight=False)
        analyzed = Program.parse(TRANSITIVE).run(
            preflight=False, analyze=True
        )
        assert frozenset(plain.facts()) == frozenset(analyzed.facts())
        assert plain.rounds == analyzed.rounds

    def test_analyze_forces_plans(self):
        engine = ChaseEngine([], use_plans=False, analyze=True)
        assert engine.use_plans

    def test_analyze_with_telemetry_enabled(self):
        # The two-phase (metrics) path must collect actuals too.
        telemetry.enable()
        result = Program.parse(TRANSITIVE).run(
            preflight=False, analyze=True
        )
        doc = result.explain_report
        step_rule = next(
            r for r in doc["rules"] if r["rule"] == "step"
        )
        executed = [p for p in step_rule["plans"]
                    if p.get("executions")]
        assert executed, "no step-rule plan recorded executions"

    def test_no_analyze_no_report(self):
        result = Program.parse(TRANSITIVE).run(preflight=False)
        assert result.explain_report is None
        assert "explain" not in result.stats

    def test_analyze_survives_plan_fallback(self):
        # The fallback rule re-enumerates via legacy; ANALYZE must not
        # break the run or the document.  (Mutual recursion puts the
        # bad e-fact into a delta round where the pushed-down division
        # raises — see TestPlanFallbackEvents in test_telemetry_events.)
        source = (
            'f(1). e(1, 1). seed(2).\n'
            'out(Q) :- e(X, Y), Q = X / Y, f(X).\n'
            'e(X, 0) :- out(Q), seed(X).\n@output("out").\n'
        )
        result = Program.parse(source).run(
            preflight=False, analyze=True
        )
        assert sorted(result.tuples("out")) == [(1.0,)]
        assert result.explain_report["rules"]


class TestDegeneratePlanReports:
    """Satellite: --rule-profile / stats["plans"] on degenerate runs."""

    def test_plans_available_without_telemetry(self):
        # Before this PR stats["plans"] existed only on telemetry runs.
        result = Program.parse(TRANSITIVE).run(preflight=False)
        assert not telemetry.state.enabled
        assert "base" in result.stats["plans"]
        assert "first-round" in result.stats["plans"]["base"]

    def test_empty_program_yields_empty_report(self):
        result = ChaseEngine([]).run([Atom.of("e", 1)])
        assert result.plan_report == {}
        assert result.stats["plans"] == {}

    def test_legacy_run_has_no_report(self):
        result = Program.parse(TRANSITIVE).run(
            preflight=False, use_plans=False
        )
        assert result.plan_report is None
        assert "plans" not in result.stats

    def test_zero_firing_run_keeps_report(self):
        # No facts: nothing fires, the plan report must still render.
        program = Program.parse(
            'out(X) :- e(X).\n@output("out").\n'
        )
        result = program.run(preflight=False)
        assert result.rounds >= 1
        assert "rule_0" in result.stats["plans"]

    def test_rule_profile_renders_on_empty_registry(self):
        # Divide-by-zero guard: no per-rule cost recorded at all.
        profile = telemetry.RuleProfile.from_registry(
            telemetry.MetricsRegistry()
        )
        text = profile.render()
        assert "no per-rule cost recorded" in text

    def test_cli_rule_profile_on_empty_program(self, tmp_path, capsys):
        path = tmp_path / "empty.vada"
        path.write_text("e(1).\n")
        exit_code = cli_main(
            ["--rule-profile", "engine", str(path), "--no-preflight"]
        )
        assert exit_code == 0
        err = capsys.readouterr().err
        assert "compiled join plans" in err
        assert "nothing was planned" in err

    def test_cli_rule_profile_legacy_run(self, tmp_path, capsys):
        path = tmp_path / "p.vada"
        path.write_text(TRANSITIVE)
        exit_code = cli_main([
            "--rule-profile", "engine", str(path),
            "--legacy-enumeration", "--no-preflight",
        ])
        assert exit_code == 0
        assert "legacy enumerator" in capsys.readouterr().err


class TestMemoryAccounting:
    def test_store_memory_stats_shape(self):
        result = Program.parse(TRANSITIVE).run(preflight=False)
        report = result.store.memory_stats()
        assert set(report) == {
            "predicates", "facts", "estimated_bytes", "index_entries",
            "column_bytes",
        }
        assert report["facts"] == len(result.store)
        assert report["estimated_bytes"] > 0
        path_info = report["predicates"]["path"]
        assert path_info["facts"] == result.store.count("path")
        assert path_info["estimated_bytes"] > 0

    def test_empty_store_memory_stats(self):
        from repro.vadalog.database import FactStore

        report = FactStore().memory_stats()
        assert report == {
            "predicates": {}, "facts": 0,
            "estimated_bytes": 0, "index_entries": 0,
            "column_bytes": 0,
        }

    def test_frontier_size_tracks_delta(self):
        from repro.vadalog.database import FactStore

        store = FactStore([Atom.of("e", 1), Atom.of("e", 2)])
        store.advance_delta()
        assert store.frontier_size() == 2
        store.advance_delta()
        assert store.frontier_size() == 0

    def test_memory_gauges_in_telemetry_snapshot(self):
        telemetry.enable()
        result = Program.parse(TRANSITIVE).run(preflight=False)
        gauges = result.stats["telemetry"]["gauges"]
        assert gauges['store.predicate_facts{predicate=path}'] == \
            result.store.count("path")
        assert gauges["store.estimated_bytes"] > 0
        assert gauges["provenance.entries"] == len(result.provenance)
        assert gauges["provenance.estimated_bytes"] > 0


class TestLiveProgress:
    def test_heartbeat_gauges_on_global_registry(self):
        telemetry.enable()
        Program.parse(TRANSITIVE).run(preflight=False)
        gauges = telemetry.snapshot()["gauges"]
        assert gauges["chase.heartbeat.round"] >= 1
        assert gauges["chase.heartbeat.frontier"] == 0  # fixpoint
        assert gauges["chase.heartbeat.facts"] > 0
        assert "chase.heartbeat.fire_rate" in gauges

    def test_heartbeat_events_emitted(self):
        telemetry.enable(events=True)
        Program.parse(TRANSITIVE).run(preflight=False)
        beats = telemetry.events().tail("heartbeat")
        assert beats, "no heartbeat events"
        payload = beats[0]["payload"]
        assert {"stratum", "round", "new_facts", "frontier",
                "fire_rate", "total_facts", "stalled"} <= set(payload)

    def test_heartbeat_interval_rate_limits_events(self):
        telemetry.enable(events=True)
        program = Program.parse(TRANSITIVE)
        program.run(preflight=False)
        every_round = len(telemetry.events().tail("heartbeat"))
        assert every_round >= 2
        telemetry.reset()
        telemetry.enable(events=True)
        program.run(preflight=False, analyze=False)
        # A huge interval lets only the first event through.
        from repro.vadalog.database import FactStore

        engine = ChaseEngine(
            program.rules, heartbeat_interval=3600.0
        )
        engine.run(FactStore(program.facts))
        limited = [
            e for e in telemetry.events().tail("heartbeat")
        ]
        # The direct-engine run contributed exactly one event.
        assert len(limited) == every_round + 1

    def test_stall_event_and_gauge(self):
        telemetry.enable(events=True)
        # Threshold 0: every non-firing rule application reports a
        # stall episode immediately; the next firing recovers.
        Program.parse(TRANSITIVE).run(
            preflight=False, max_rounds=100
        )
        engine = ChaseEngine(
            Program.parse(TRANSITIVE).rules, stall_threshold=0.0
        )
        from repro.vadalog.database import FactStore

        engine.run(FactStore(Program.parse(TRANSITIVE).facts))
        stalls = telemetry.events().tail("stall")
        assert stalls, "zero threshold produced no stall events"
        payload = stalls[0]["payload"]
        assert payload["threshold"] == 0.0
        assert {"rule", "stratum", "round"} <= set(payload)
        gauges = telemetry.snapshot()["gauges"]
        assert "chase.stalled" in gauges

    def test_no_heartbeat_when_disabled(self):
        Program.parse(TRANSITIVE).run(preflight=False)
        assert "chase.heartbeat.round" not in telemetry.snapshot().get(
            "gauges", {}
        )

    def test_heartbeat_visible_through_metrics_http(self):
        import urllib.request

        telemetry.enable()
        Program.parse(TRANSITIVE).run(preflight=False)
        with telemetry.MetricsHTTPServer(port=0) as server:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/metrics", timeout=5
            ) as response:
                body = response.read().decode("utf-8")
        assert "repro_chase_heartbeat_round" in body
        assert "repro_chase_heartbeat_frontier" in body


class TestExplainCli:
    def write_program(self, tmp_path):
        path = tmp_path / "prog.vada"
        path.write_text(TRANSITIVE)
        return path

    def test_static_explain(self, tmp_path, capsys):
        path = self.write_program(tmp_path)
        assert cli_main(["explain", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("EXPLAIN: 2 rule(s)")
        assert "rule base" in out
        assert "delta-scan" in out
        assert "execution" not in out

    def test_analyze_explain_prints_actuals(self, tmp_path, capsys):
        path = self.write_program(tmp_path)
        assert cli_main(["explain", str(path), "--analyze"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("EXPLAIN ANALYZE")
        assert "execution(s)" in out
        assert "rows in=" in out
        assert "memory:" in out
        assert "provenance:" in out

    def test_json_export(self, tmp_path, capsys):
        path = self.write_program(tmp_path)
        json_path = tmp_path / "explain.json"
        assert cli_main([
            "explain", str(path), "--analyze", "--json", str(json_path)
        ]) == 0
        doc = json.loads(json_path.read_text())
        assert doc["analyze"] is True
        assert doc["memory"]["store"]["facts"] > 0
        assert doc["memory"]["provenance"]["derivations"] > 0
        assert [r["rule"] for r in doc["rules"]] == ["base", "step"]
        err = capsys.readouterr().err
        assert f"explain document written to {json_path}" in err

    def test_preflight_gate_applies(self, tmp_path, capsys):
        from repro.errors import StaticAnalysisError

        path = tmp_path / "bad.vada"
        # Unstratifiable negation: VDL010, error severity.
        path.write_text(
            "p(X) :- b(X), not q(X).\n"
            "q(X) :- b(X), not p(X).\n"
            "b(1).\n"
        )
        with pytest.raises(StaticAnalysisError):
            cli_main(["explain", str(path)])
        # --no-preflight skips the gate and explains anyway.
        assert cli_main(["explain", str(path), "--no-preflight"]) == 0
        assert "EXPLAIN: 2 rule(s)" in capsys.readouterr().out
