"""Round-trip tests: parse -> render -> parse must preserve program
behaviour (and structure up to string-vs-symbol constants)."""

import pytest

from repro.errors import VadalogError
from repro.vadalog import Program
from repro.vadalog.atoms import Atom
from repro.vadalog.render import render_atom, render_rule, render_term
from repro.vadalog.terms import Constant, LabelledNull, Variable
from repro.vadalog_programs import PROGRAMS, cycle_registry


SOURCES = {
    "closure": """
        edge(a, b). edge(b, c).
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).
    """,
    "negation-condition": """
        n(1). n(2). m(2).
        only(X) :- n(X), not m(X), X > 0.
    """,
    "aggregates": """
        sale(north, a, 10). sale(north, b, 20).
        total(R, S) :- sale(R, I, V), S = msum(V, <I>).
        big(R) :- total(R, S), S > 25.
    """,
    "existentials": """
        person(alice).
        hasId(X, Z) :- person(X).
    """,
    "case-and-sets": """
        f(a, 1). f(b, 3).
        r(I, R) :- f(I, F), R = case F < 2 then 1 else 0.
        allowed([x, y]).
    """,
    "egd": """
        cat(m, a, qi).
        C1 = C2 :- cat(M, A, C1), cat(M, A, C2).
    """,
}


def derived_facts(program, externals=None):
    result = program.run(externals=externals)
    inputs = {fact.predicate for fact in program.facts}
    return {
        (fact.predicate, tuple(str(t) for t in fact.terms))
        for fact in result.facts()
    }


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_roundtrip_preserves_semantics(self, name):
        original = Program.parse(SOURCES[name])
        rendered = original.to_source()
        reparsed = Program.parse(rendered)
        assert derived_facts(original) == derived_facts(reparsed)

    @pytest.mark.parametrize(
        "name",
        [
            "tuple-build",
            "reidentification",
            "k-anonymity",
            "individual-risk",
            "ownership-control",
            "cluster-risk",
            "categorization",
        ],
    )
    def test_shipped_modules_roundtrip_parse(self, name):
        original = Program.parse(PROGRAMS[name])
        rendered = original.to_source()
        reparsed = Program.parse(rendered)
        assert len(reparsed.rules) == len(original.rules)
        assert len(reparsed.egds) == len(original.egds)
        labels = [rule.label for rule in reparsed.rules]
        assert labels == [rule.label for rule in original.rules]

    def test_roundtrip_rule_structure(self):
        program = Program.parse(
            "p(X, S) :- q(X, W, I), S = msum(W, <I>), S > 3."
        )
        reparsed = Program.parse(program.to_source())
        rule = reparsed.rules[0]
        assert len(rule.aggregates) == 1
        assert len(rule.conditions) == 1


class TestRenderPrimitives:
    def test_render_term_variants(self):
        assert render_term(Variable("X")) == "X"
        assert render_term(Constant(3)) == "3"
        assert render_term(Constant("a b")) == '"a b"'
        assert render_term(Constant(True)) == "true"
        assert render_term(Constant(frozenset({"a"}))) == '["a"]'

    def test_render_string_escaping(self):
        rendered = render_term(Constant('say "hi"'))
        reparsed = Program.parse(f"p({rendered}).")
        assert reparsed.facts[0].terms[0].value == 'say "hi"'

    def test_nulls_not_renderable(self):
        with pytest.raises(VadalogError):
            render_term(LabelledNull(1))

    def test_render_atom(self):
        atom = Atom.of("edge", "a", 1)
        assert render_atom(atom) == 'edge("a", 1)'
