"""Unit tests for the expression AST and its evaluator."""

import pytest

from repro.errors import EvaluationError
from repro.vadalog.expressions import (
    BinOp,
    Case,
    FuncCall,
    Lit,
    TupleExpr,
    UnaryOp,
    VarRef,
    evaluate_to_term,
    register_scalar_function,
)
from repro.vadalog.terms import Constant, LabelledNull, Variable


def bind(**values):
    return {Variable(name): Constant(value) for name, value in values.items()}


class TestBasicEvaluation:
    def test_literal(self):
        assert Lit(42).evaluate({}) == 42

    def test_var_ref(self):
        assert VarRef(Variable("X")).evaluate(bind(X=7)) == 7

    def test_unbound_var_raises(self):
        with pytest.raises(EvaluationError):
            VarRef(Variable("X")).evaluate({})

    def test_arithmetic(self):
        expr = BinOp("+", Lit(1), BinOp("*", Lit(2), Lit(3)))
        assert expr.evaluate({}) == 7

    def test_division_by_zero_raises(self):
        with pytest.raises(EvaluationError):
            BinOp("/", Lit(1), Lit(0)).evaluate({})

    def test_comparison_chain(self):
        assert BinOp("<", Lit(1), Lit(2)).evaluate({}) is True
        assert BinOp(">=", Lit(1), Lit(2)).evaluate({}) is False

    def test_in_operator(self):
        expr = BinOp("in", Lit("a"), Lit(frozenset({"a", "b"})))
        assert expr.evaluate({}) is True

    def test_unary_minus_and_not(self):
        assert UnaryOp("-", Lit(4)).evaluate({}) == -4
        assert UnaryOp("not", Lit(False)).evaluate({}) is True

    def test_unknown_operator_rejected(self):
        with pytest.raises(EvaluationError):
            BinOp("**", Lit(2), Lit(3))


class TestNullHandling:
    def test_null_equality_only_with_same_label(self):
        bindings = {
            Variable("X"): LabelledNull(1),
            Variable("Y"): LabelledNull(1),
            Variable("Z"): LabelledNull(2),
        }
        same = BinOp("==", VarRef(Variable("X")), VarRef(Variable("Y")))
        different = BinOp("==", VarRef(Variable("X")), VarRef(Variable("Z")))
        assert same.evaluate(bindings) is True
        assert different.evaluate(bindings) is False

    def test_ordering_against_null_raises(self):
        bindings = {Variable("X"): LabelledNull(1)}
        expr = BinOp("<", VarRef(Variable("X")), Lit(3))
        with pytest.raises(EvaluationError):
            expr.evaluate(bindings)

    def test_is_null_builtin(self):
        bindings = {Variable("X"): LabelledNull(1)}
        assert FuncCall("is_null", [VarRef(Variable("X"))]).evaluate(
            bindings
        )
        assert not FuncCall("is_null", [Lit(3)]).evaluate({})


class TestCase:
    def test_then_branch(self):
        expr = Case(BinOp("<", Lit(1), Lit(2)), Lit("yes"), Lit("no"))
        assert expr.evaluate({}) == "yes"

    def test_else_branch(self):
        expr = Case(BinOp(">", Lit(1), Lit(2)), Lit(1), Lit(0))
        assert expr.evaluate({}) == 0


class TestCollections:
    def test_tuple_expression(self):
        expr = TupleExpr([Lit("Area"), VarRef(Variable("V"))])
        assert expr.evaluate(bind(V="North")) == ("Area", "North")

    def test_get_by_name(self):
        collection = frozenset({("Area", "North"), ("Sector", "Tex")})
        expr = FuncCall("get", [Lit(collection), Lit("Area")])
        assert expr.evaluate({}) == "North"

    def test_get_missing_raises(self):
        expr = FuncCall("get", [Lit(frozenset()), Lit("Area")])
        with pytest.raises(EvaluationError):
            expr.evaluate({})

    def test_project(self):
        collection = frozenset(
            {("Area", "North"), ("Sector", "Tex"), ("W", 5)}
        )
        expr = FuncCall(
            "project", [Lit(collection), Lit(frozenset({"Area", "Sector"}))]
        )
        assert expr.evaluate({}) == frozenset(
            {("Area", "North"), ("Sector", "Tex")}
        )

    def test_size_and_subset(self):
        assert FuncCall("size", [Lit(frozenset({1, 2}))]).evaluate({}) == 2
        assert FuncCall(
            "subset", [Lit(frozenset({1})), Lit(frozenset({1, 2}))]
        ).evaluate({})

    def test_variables_enumeration(self):
        expr = BinOp(
            "+", VarRef(Variable("X")), FuncCall("abs", [VarRef(Variable("Y"))])
        )
        names = {v.name for v in expr.variables()}
        assert names == {"X", "Y"}


class TestRegistry:
    def test_register_custom_function(self):
        register_scalar_function("triple", lambda x: 3 * x)
        assert FuncCall("triple", [Lit(4)]).evaluate({}) == 12

    def test_unknown_function_raises(self):
        with pytest.raises(EvaluationError):
            FuncCall("no_such_fn", [Lit(1)]).evaluate({})

    def test_evaluate_to_term_wraps(self):
        term = evaluate_to_term(Lit(5), {})
        assert term == Constant(5)
