"""Parallel sharded chase: the determinism-testing harness.

The contract under test (``src/repro/vadalog/parallel.py``): running
the chase with ``parallelism=k`` is *bit-identical* to serial for every
``k`` — same fact strings (labelled nulls included), same EGD
violations, same round counts, and the same provenance log in the same
insertion order.  The tests drive that contract four ways:

* canonical programs at worker counts 1/2/4 plus the full shipped
  Vadalog modules (risk measures, ownership closure);
* a Hypothesis property over randomly generated warded programs,
  failures written as replayable conformance seed artifacts;
* adversarial interleavings via the seedable :class:`FakeScheduler`
  (shuffled shard execution, random stratum completion order);
* failure-path parity: ``PlanFallback`` raised inside shard workers
  and stall detection with per-worker heartbeats.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import telemetry
from repro.vadalog import Program
from repro.vadalog.atoms import Atom
from repro.vadalog.chase import ChaseEngine, parallelism_default
from repro.vadalog.database import FactStore
from repro.vadalog.negation import stratify
from repro.vadalog.parallel import (
    FakeScheduler,
    ThreadScheduler,
    build_schedule,
    canonical_null_form,
)


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


# ---------------------------------------------------------------------------
# Signature helper: everything the determinism contract promises.


def run_signature(
    source,
    parallelism,
    facts=(),
    externals=None,
    scheduler_factory=None,
    **kwargs,
):
    """Run a program and reduce the result to the comparable tuple the
    bit-identical contract covers: fact strings, rounds, EGD
    violations, and the provenance log in insertion order."""
    program = Program.parse(source)
    engine = ChaseEngine(
        program.rules,
        egds=program.egds,
        externals=externals,
        provenance=True,
        parallelism=parallelism,
        **kwargs,
    )
    if scheduler_factory is not None:
        engine._scheduler_factory = scheduler_factory
    store = FactStore(program.facts)
    store.add_all(facts)
    result = engine.run(store)
    return (
        frozenset(str(fact) for fact in result.facts()),
        result.rounds,
        tuple(
            (str(d.fact), d.rule_label, tuple(str(p) for p in d.premises))
            for d in result.provenance.derivations()
        ),
        tuple(
            tuple(sorted((repr(v.left), repr(v.right))))
            for v in result.egd_violations
        ),
        result.null_factory.issued,
    )


TRANSITIVE = """
e(1, 2). e(2, 3). e(3, 4). e(4, 5). e(5, 6). e(6, 1).
@label("base"). path(X, Y) :- e(X, Y).
@label("step"). path(X, Z) :- path(X, Y), e(Y, Z).
@output("path").
"""

NEGATION = """
e(1, 2). e(2, 3). e(3, 4). n(4).
r(X, Y) :- e(X, Y).
r(X, Z) :- r(X, Y), e(Y, Z).
only(X) :- r(X, Y), not n(Y).
blocked(Y) :- n(Y), r(X, Y).
@output("only"). @output("blocked").
"""

EXISTENTIAL = """
emp(1). emp(2). emp(3).
@label("boss"). mgr(X, Z) :- emp(X).
@label("chain"). above(X, Z) :- mgr(X, Z).
@output("above").
"""

AGGREGATE = """
sale(1, 10). sale(1, 20). sale(2, 5). sale(2, 5). sale(3, 1).
total(D, S) :- sale(D, V), S = msum(V, <D>).
count(D, C) :- sale(D, V), C = mcount(<D>).
@output("total"). @output("count").
"""

EGD_PROGRAM = """
owner(1, "a"). owner(1, "b"). owner(2, "c").
holds(X, N) :- owner(X, N).
N1 = N2 :- holds(X, N1), holds(X, N2).
@output("holds").
"""

DIAMOND = """
base(1). base(2). base(3). base(4).
left(X) :- base(X).
right(X) :- base(X).
join(X) :- left(X), right(X).
deep(X) :- join(X), not missing(X).
missing(0) :- base(0).
@output("deep").
"""

CANONICAL = {
    "transitive": TRANSITIVE,
    "negation": NEGATION,
    "existential": EXISTENTIAL,
    "aggregate": AGGREGATE,
    "egd": EGD_PROGRAM,
    "diamond": DIAMOND,
}


# ---------------------------------------------------------------------------
# Worker counts 1/2/4 must agree bit-for-bit.


class TestWorkerCountsBitIdentical:
    @pytest.mark.parametrize("name", sorted(CANONICAL))
    def test_canonical_programs(self, name):
        source = CANONICAL[name]
        reference = run_signature(source, 1)
        for workers in (2, 4):
            assert run_signature(source, workers) == reference, (
                f"{name} diverged at parallelism={workers}"
            )

    def test_large_frontier_actually_shards(self):
        """A frontier big enough to hash-partition (not just hit the
        small-delta serial path) still merges back bit-identically."""
        edges = "".join(
            f"e({i}, {(i + 1) % 60}). " for i in range(60)
        )
        source = edges + (
            "path(X, Y) :- e(X, Y). "
            "path(X, Z) :- path(X, Y), e(Y, Z). "
            '@output("path").'
        )
        telemetry.enable()
        parallel = run_signature(source, 4)
        counters = telemetry.snapshot()["counters"]
        assert counters.get("chase.parallel.sharded_plans", 0) > 0, (
            "frontier never reached the sharded path; the test "
            "is not exercising the merge barrier"
        )
        telemetry.disable()
        telemetry.reset()
        assert parallel == run_signature(source, 1)

    def test_program_run_facade_and_env_default(self, monkeypatch):
        monkeypatch.setenv("CHASE_PARALLELISM", "3")
        assert parallelism_default() == 3
        program = Program.parse(TRANSITIVE)
        serial = program.run(preflight=False, parallelism=1)
        via_env = program.run(preflight=False)  # picks up the env var
        assert frozenset(map(str, via_env.facts())) == \
            frozenset(map(str, serial.facts()))
        assert via_env.rounds == serial.rounds

    def test_externals_inject_identically(self):
        from repro.vadalog.externals import ExternalRegistry

        def tag(context, value):
            context.assert_fact("tagged", value)
            yield (value,)

        registry = ExternalRegistry()
        registry.register("tag", tag)
        source = (
            "n(1). n(2). n(3). "
            "out(X) :- n(X), #tag(X). "
            '@output("out").'
        )
        reference = run_signature(source, 1, externals=registry)
        for workers in (2, 4):
            assert run_signature(
                source, workers, externals=registry
            ) == reference


# ---------------------------------------------------------------------------
# Stratum schedule construction.


class TestBuildSchedule:
    def _nodes(self, source, **kwargs):
        program = Program.parse(source)
        return build_schedule(stratify(program.rules), **kwargs)

    def test_reader_depends_on_writer(self):
        nodes = self._nodes(
            "b(X) :- e(X). c(X) :- b(X), not d(X). d(0) :- e(0)."
        )
        writer = {
            node.index: node.writes for node in nodes
        }
        for node in nodes:
            if "c" in node.writes:
                for dep, writes in writer.items():
                    if writes & {"b", "d"}:
                        assert dep in node.deps

    def test_independent_strata_share_no_edge(self):
        nodes = self._nodes(
            "l(X) :- e(X), not skipl(X). r(X) :- f(X), not skipr(X). "
            "skipl(0) :- e(0). skipr(0) :- f(0)."
        )
        left = next(n for n in nodes if "l" in n.writes)
        right = next(n for n in nodes if "r" in n.writes)
        assert left.index not in right.deps
        assert right.index not in left.deps

    def test_egds_serialize_the_whole_dag(self):
        nodes = self._nodes(
            "l(X) :- e(X). r(X) :- f(X).", has_egds=True
        )
        assert all(node.exclusive for node in nodes)
        for node in nodes:
            assert node.deps == set(range(node.index))

    def test_listener_serializes_like_egds(self):
        nodes = self._nodes(
            "l(X) :- e(X). r(X) :- f(X).", has_listener=True
        )
        assert all(node.exclusive for node in nodes)

    def test_external_stratum_is_exclusive(self):
        nodes = self._nodes("out(X) :- n(X), #probe(X).")
        assert any(node.exclusive for node in nodes)

    def test_null_issuers_are_chained(self):
        nodes = self._nodes(
            "a(X, Z1) :- e(X), not skipa(X). "
            "b(X, Z2) :- f(X), not skipb(X). "
            "skipa(0) :- e(0). skipb(0) :- f(0)."
        )
        issuers = [n.index for n in nodes if n.issues_nulls]
        assert len(issuers) >= 2
        for earlier, later in zip(issuers, issuers[1:]):
            assert earlier in nodes[later].deps

    def test_dag_is_topologically_consistent(self):
        nodes = self._nodes(NEGATION)
        for node in nodes:
            assert all(dep < node.index for dep in node.deps)


# ---------------------------------------------------------------------------
# Hypothesis: generated programs agree at every worker count.


class TestGeneratedProgramsBitIdentical:
    MAX_ROUNDS = 400
    MAX_FACTS = 4_000

    def _save_failure(self, program, detail):
        from repro.testing.conformance import (
            ConformanceOutcome, write_artifact,
        )
        from repro.testing.generator import GeneratorConfig

        path = write_artifact(
            "conformance-artifacts",
            seed=0,
            base_seed=0,
            config=GeneratorConfig(),
            outcome=ConformanceOutcome("parallel-diverged", detail),
            program=program,
            minimized=None,
            max_rounds=self.MAX_ROUNDS,
            max_facts=self.MAX_FACTS,
            termination="restricted",
            engine_variant="planned",
            parallelism="both",
        )
        return f"{detail}\nartifact: {path}"

    def _run(self, program, workers):
        try:
            result = program.run(
                provenance=True,
                max_rounds=self.MAX_ROUNDS,
                max_facts=self.MAX_FACTS,
                preflight=False,
                parallelism=workers,
            )
        except Exception as exc:  # noqa: BLE001 — crashes compared too
            if "exceeded" in str(exc):
                return ("budget",)
            return ("error", type(exc).__name__)
        return (
            "ok",
            frozenset(str(fact) for fact in result.facts()),
            result.rounds,
            tuple(
                (str(d.fact), d.rule_label)
                for d in result.provenance.derivations()
            ),
        )

    @given(rng=st.randoms(use_true_random=False))
    def test_worker_counts_agree_on_generated_programs(self, rng):
        from repro.testing.generator import (
            GeneratorConfig, generate_program,
        )

        program = generate_program(rng, GeneratorConfig())
        runs = {k: self._run(program, k) for k in (1, 2, 4)}
        if any(run[0] == "budget" for run in runs.values()):
            # The deterministic parallel budget guard may trip a hair
            # apart from serial at the edge; conformance classifies
            # that as a skip, and so does this property.
            return
        if not (runs[1] == runs[2] == runs[4]):
            raise AssertionError(self._save_failure(
                program,
                f"k=1 {runs[1][:2]} != k=2 {runs[2][:2]} "
                f"!= k=4 {runs[4][:2]}",
            ))


# ---------------------------------------------------------------------------
# Adversarial interleavings: the seedable fake scheduler.


class TestFakeSchedulerInterleavings:
    @pytest.mark.parametrize("seed", range(8))
    def test_shuffled_interleavings_stay_bit_identical(self, seed):
        reference = run_signature(NEGATION, 1)
        shuffled = run_signature(
            NEGATION, 4,
            scheduler_factory=lambda workers: FakeScheduler(seed),
        )
        assert shuffled == reference

    @pytest.mark.parametrize("seed", range(4))
    def test_shuffled_sharding_on_wide_frontier(self, seed):
        edges = "".join(
            f"e({i}, {(i + 1) % 40}). " for i in range(40)
        )
        source = edges + (
            "path(X, Y) :- e(X, Y). "
            "path(X, Z) :- path(X, Y), e(Y, Z). "
            '@output("path").'
        )
        reference = run_signature(source, 1)
        shuffled = run_signature(
            source, 4,
            scheduler_factory=lambda workers: FakeScheduler(seed),
        )
        assert shuffled == reference

    def test_separate_stratum_and_shard_schedulers(self):
        """The factory may return a (stratum, shard) scheduler pair —
        mixing a fake stratum order with real shard workers."""
        reference = run_signature(DIAMOND, 1)
        mixed = run_signature(
            DIAMOND, 2,
            scheduler_factory=lambda workers: (
                FakeScheduler(3), ThreadScheduler(workers)
            ),
        )
        assert mixed == reference

    def test_fake_scheduler_is_deterministic_per_seed(self):
        first = run_signature(
            NEGATION, 4,
            scheduler_factory=lambda workers: FakeScheduler(5),
        )
        second = run_signature(
            NEGATION, 4,
            scheduler_factory=lambda workers: FakeScheduler(5),
        )
        assert first == second


# ---------------------------------------------------------------------------
# Failure paths: PlanFallback in workers, stalls, heartbeats.


class TestFailurePropagation:
    # Round 2 derives ten e(X, 0) facts — a frontier wide enough to
    # shard at 4 workers — whose planned evaluation divides by zero
    # before the f(X) join would have filtered the rows; every worker
    # raises PlanFallback and the stratum coordinator must fall back
    # to the legacy enumerator exactly like serial does.
    FALLBACK = (
        "f(1). e(1, 1). "
        + " ".join(f"seed({i})." for i in range(2, 12))
        + ' @label("div"). out(Q) :- e(X, Y), Q = X / Y, f(X). '
        "e(X, 0) :- out(Q), seed(X). "
        '@output("out").'
    )

    def test_plan_fallback_in_workers_matches_serial(self):
        telemetry.enable(events=True)
        parallel = run_signature(self.FALLBACK, 4)
        fallbacks = telemetry.events().tail("plan_fallback")
        assert fallbacks, "sharded run never exercised the fallback"
        telemetry.disable()
        telemetry.reset()
        assert parallel == run_signature(self.FALLBACK, 1)

    def test_worker_error_propagates_like_serial(self):
        # With f(2) present the raising row completes the join, so
        # serial raises EvaluationError — parallel must too, not hang
        # or return a partial store.
        source = (
            "f(1). f(2). e(1, 1). "
            + " ".join(f"seed({i})." for i in range(2, 12))
            + "out(Q) :- e(X, Y), Q = X / Y, f(X). "
            "e(X, 0) :- out(Q), seed(X)."
        )
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            run_signature(source, 1)
        for workers in (2, 4):
            with pytest.raises(EvaluationError):
                run_signature(source, workers)

    def test_lowest_failing_stratum_wins(self):
        # Both branches fail (division by zero); serial raises the
        # lower stratum's error first, and the parallel scheduler's
        # failure policy must pick the same one regardless of which
        # worker crashes first.
        source = (
            "z(0). "
            "a(Q) :- z(X), Q = 1 / X. "
            "b(Q) :- a(X), Q = 1 / X."
        )
        from repro.errors import EvaluationError

        errors = {}
        for workers in (1, 4):
            with pytest.raises(EvaluationError) as info:
                run_signature(source, workers)
            errors[workers] = str(info.value)
        assert errors[1] == errors[4]


class TestStallsAndHeartbeats:
    def test_stall_injection_reports_per_worker_progress(self):
        telemetry.enable(events=True)
        # Zero threshold: every non-firing rule application counts as
        # a stall, so the transitive closure's fixpoint rounds emit
        # stall events from inside the stratum workers.
        run_signature(
            TRANSITIVE, 2,
            stall_threshold=0.0, heartbeat_interval=0.0,
        )
        stalls = telemetry.events().tail("stall")
        assert stalls, "no stall events under a zero threshold"
        for event in stalls:
            assert {"stratum", "round", "rule"} <= set(event["payload"])
        gauges = telemetry.snapshot()["gauges"]
        rounds_gauges = [
            key for key in gauges
            if key.startswith("chase.parallel.worker_rounds")
        ]
        assert rounds_gauges, "no per-worker round heartbeat gauges"
        assert any(
            key.startswith("chase.parallel.worker_frontier")
            for key in gauges
        )

    def test_stalled_run_still_bit_identical(self):
        telemetry.enable()
        stalled = run_signature(
            TRANSITIVE, 4,
            stall_threshold=0.0, heartbeat_interval=0.0,
        )
        telemetry.disable()
        telemetry.reset()
        assert stalled == run_signature(TRANSITIVE, 1)

    def test_parallel_telemetry_instruments_present(self):
        telemetry.enable()
        run_signature(TRANSITIVE, 4)
        snapshot = telemetry.snapshot()
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        assert counters.get("chase.parallel.runs") == 1
        assert gauges.get("chase.parallel.workers") == 4
        assert "chase.parallel.strata_inflight" in gauges


# ---------------------------------------------------------------------------
# Shipped modules: the paper's Vadalog programs under every worker count.


class TestShippedModulesParity:
    def _signatures(self, source, facts, externals=None):
        results = {}
        for workers in (1, 2, 4):
            program = Program.parse(source)
            result = program.run(
                list(facts),
                externals=externals,
                preflight=False,
                parallelism=workers,
            )
            results[workers] = (
                frozenset(str(fact) for fact in result.facts()),
                result.rounds,
            )
        return results

    def _base_facts(self, db, **params):
        facts = db.to_facts()
        facts.append(
            Atom.of("anonSet", db.name, frozenset(db.quasi_identifiers))
        )
        for name, value in params.items():
            facts.append(Atom.of("param", name, value))
        return facts

    def test_risk_modules(self):
        from repro.data import city_fragment
        from repro.vadalog_programs import (
            INDIVIDUAL_RISK,
            K_ANONYMITY,
            REIDENTIFICATION,
            TUPLE_BUILD,
        )

        db = city_fragment()
        for module, params in (
            (K_ANONYMITY, {"k": 2}),
            (REIDENTIFICATION, {}),
            (INDIVIDUAL_RISK, {}),
        ):
            signatures = self._signatures(
                TUPLE_BUILD + module, self._base_facts(db, **params)
            )
            assert signatures[1] == signatures[2] == signatures[4]

    def test_suda_with_externals(self):
        from repro.data import city_fragment
        from repro.vadalog_programs import SUDA, TUPLE_BUILD, cycle_registry

        db = city_fragment()
        registry, _ = cycle_registry()
        signatures = self._signatures(
            TUPLE_BUILD + SUDA,
            self._base_facts(db, suda_k=3),
            externals=registry,
        )
        assert signatures[1] == signatures[2] == signatures[4]

    def test_ownership_control(self):
        from repro.business import OwnershipGraph
        from repro.vadalog_programs import OWNERSHIP_CONTROL

        graph = OwnershipGraph(
            [
                ("a", "b", 0.6),
                ("b", "c", 0.6),
                ("a", "c", 0.2),
                ("c", "d", 0.51),
                ("d", "a", 0.1),
            ]
        )
        signatures = self._signatures(
            OWNERSHIP_CONTROL, graph.to_facts()
        )
        assert signatures[1] == signatures[2] == signatures[4]


# ---------------------------------------------------------------------------
# Harness helper: canonical null renumbering.


class TestCanonicalNullForm:
    def test_isomorphic_sets_canonicalize_equal(self):
        from repro.vadalog.terms import LabelledNull

        left = [
            Atom.of("p", LabelledNull(7), 1),
            Atom.of("p", LabelledNull(9), 2),
        ]
        right = [
            Atom.of("p", LabelledNull(2), 1),
            Atom.of("p", LabelledNull(1), 2),
        ]
        assert canonical_null_form(left) == canonical_null_form(right)

    def test_distinct_structures_stay_distinct(self):
        from repro.vadalog.terms import LabelledNull

        shared = [
            Atom.of("p", LabelledNull(1), 1),
            Atom.of("p", LabelledNull(1), 2),
        ]
        separate = [
            Atom.of("p", LabelledNull(1), 1),
            Atom.of("p", LabelledNull(2), 2),
        ]
        assert canonical_null_form(shared) != \
            canonical_null_form(separate)
