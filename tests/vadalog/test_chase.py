"""Chase engine tests: recursion, existentials, restricted chase,
negation, aggregation, externals, routing, provenance."""

import pytest

from repro.errors import (
    EvaluationError,
    StaticAnalysisError,
    StratificationError,
)
from repro.vadalog import (
    ExternalRegistry,
    Program,
    RoutingTable,
    boolean_external,
)
from repro.vadalog.atoms import Atom
from repro.vadalog.routing import sort_by_variable
from repro.vadalog.terms import LabelledNull


class TestRecursion:
    def test_transitive_closure(self):
        program = Program.parse(
            """
            edge(a, b). edge(b, c). edge(c, d).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        result = program.run()
        assert sorted(result.tuples("path")) == [
            ("a", "b"), ("a", "c"), ("a", "d"),
            ("b", "c"), ("b", "d"), ("c", "d"),
        ]

    def test_long_chain_reaches_fixpoint(self):
        facts = [Atom.of("edge", i, i + 1) for i in range(60)]
        program = Program.parse(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        result = program.run(facts)
        assert result.store.count("path") == 61 * 60 // 2

    def test_mutual_recursion(self):
        program = Program.parse(
            """
            n(0). succ(0, 1). succ(1, 2). succ(2, 3).
            even(0).
            odd(Y) :- even(X), succ(X, Y).
            even(Y) :- odd(X), succ(X, Y).
            """
        )
        result = program.run()
        assert sorted(v for (v,) in result.tuples("even")) == [0, 2]
        assert sorted(v for (v,) in result.tuples("odd")) == [1, 3]


class TestExistentials:
    def test_fresh_null_created(self):
        program = Program.parse(
            """
            person(alice).
            hasId(X, Z) :- person(X).
            """
        )
        result = program.run()
        rows = result.tuples("hasId")
        assert len(rows) == 1
        assert isinstance(rows[0][1], LabelledNull)
        assert result.nulls_introduced == 1

    def test_restricted_chase_blocks_redundant_firing(self):
        # A known id already exists: no null should be invented.
        program = Program.parse(
            """
            person(alice). hasId(alice, 42).
            hasId(X, Z) :- person(X).
            """
        )
        result = program.run()
        assert result.nulls_introduced == 0
        assert result.tuples("hasId") == [("alice", 42)]

    def test_recursive_existentials_terminate_isomorphic(self):
        # Classic employee/manager chain: the restricted chase would
        # invent a manager for every manager; Vadalog-style isomorphic
        # pattern blocking terminates after the pattern repeats once.
        program = Program.parse(
            """
            emp(e1).
            reportsTo(X, Z) :- emp(X).
            emp(Z) :- reportsTo(X, Z).
            """
        )
        result = program.run(termination="isomorphic")
        assert result.nulls_introduced == 2
        assert result.store.count("reportsTo") == 2

    def test_shared_existential_across_head_atoms(self):
        program = Program.parse(
            """
            item(a). item(b).
            item(X) -> exists(Z) box(Z, X), label(Z, X).
            """
        )
        result = program.run()
        boxes = dict((x, z) for z, x in result.tuples("box"))
        labels = dict((x, z) for z, x in result.tuples("label"))
        assert boxes == labels
        assert boxes["a"] != boxes["b"]

    def test_body_bound_null_is_not_remappable(self):
        # The image check must not identify distinct body-bound nulls.
        program = Program.parse(
            """
            seed(a). seed(b).
            node(X, Z) :- seed(X).
            pair(Z, X) :- node(X, Z).
            """
        )
        result = program.run()
        pairs = result.tuples("pair")
        assert len(pairs) == 2
        assert pairs[0][0] != pairs[1][0]


class TestNegation:
    def test_stratified_negation(self):
        program = Program.parse(
            """
            n(1). n(2). n(3). m(2).
            only(X) :- n(X), not m(X).
            """
        )
        result = program.run()
        assert sorted(v for (v,) in result.tuples("only")) == [1, 3]

    def test_negation_cycle_rejected(self):
        program = Program.parse(
            """
            p(X) :- n(X), not q(X).
            q(X) :- n(X), not p(X).
            """
        )
        # The static-analysis pre-flight rejects it first (VDL010)...
        with pytest.raises(StaticAnalysisError) as caught:
            program.run([Atom.of("n", 1)])
        assert "VDL010" in str(caught.value)
        # ...and with the escape hatch, stratification itself refuses.
        with pytest.raises(StratificationError):
            program.run([Atom.of("n", 1)], preflight=False)

    def test_negation_uses_saturated_lower_stratum(self):
        program = Program.parse(
            """
            edge(a, b). edge(b, c).
            reach(a).
            reach(Y) :- reach(X), edge(X, Y).
            unreached(X) :- node(X), not reach(X).
            node(a). node(b). node(c). node(d).
            """
        )
        result = program.run()
        assert sorted(v for (v,) in result.tuples("unreached")) == ["d"]


class TestAggregation:
    def test_msum_groups_and_sums(self):
        program = Program.parse(
            """
            sale(north, a, 10). sale(north, b, 20). sale(south, c, 5).
            total(R, S) :- sale(R, I, V), S = msum(V, <I>).
            """
        )
        result = program.run()
        assert sorted(result.tuples("total")) == [
            ("north", 30), ("south", 5),
        ]

    def test_contributor_dedup_keeps_max(self):
        # Same contributor appearing with several values: only the
        # monotone-best (max) contribution counts.
        program = Program.parse(
            """
            sale(north, a, 10). sale(north, a, 25). sale(north, b, 1).
            total(R, S) :- sale(R, I, V), S = msum(V, <I>).
            """
        )
        result = program.run()
        assert result.tuples("total") == [("north", 26)]

    def test_mcount_distinct_contributors(self):
        program = Program.parse(
            """
            obs(g1, a). obs(g1, a). obs(g1, b). obs(g2, c).
            freq(G, F) :- obs(G, I), F = mcount(<I>).
            """
        )
        result = program.run()
        assert sorted(result.tuples("freq")) == [("g1", 2), ("g2", 1)]

    def test_final_aggregate_value_replaces_intermediates(self):
        # Functional emission: exactly one fact per group at fixpoint.
        program = Program.parse(
            """
            obs(g, a). obs(g, b). obs(g, c). obs(g, d).
            freq(G, F) :- obs(G, I), F = mcount(<I>).
            """
        )
        result = program.run()
        assert result.tuples("freq") == [("g", 4)]

    def test_downstream_stratum_sees_final_value_only(self):
        program = Program.parse(
            """
            obs(g, a). obs(g, b).
            freq(G, F) :- obs(G, I), F = mcount(<I>).
            unique(G) :- freq(G, F), F == 1.
            """
        )
        result = program.run()
        assert result.tuples("unique") == []

    def test_recursion_through_aggregate_company_control(self):
        program = Program.parse(
            """
            own(a, b, 0.6). own(b, c, 0.4). own(a, c, 0.2).
            own(X, Y, W) -> rel(X, X).
            rel(X, Y) :- own(X, Y, W), W > 0.5.
            rel(X, Y) :- rel(X, Z), own(Z, Y, W), msum(W, <Z>) > 0.5.
            """
        )
        result = program.run()
        pairs = {(x, y) for x, y in result.tuples("rel") if x != y}
        assert pairs == {("a", "b"), ("a", "c")}

    def test_mprod_monotonic_product(self):
        program = Program.parse(
            """
            risk(t1, a, 0.5). risk(t1, b, 0.5). risk(t2, c, 0.1).
            surv(T, P) :- risk(T, I, R), P = mprod(1 - R, <I>).
            """
        )
        result = program.run()
        values = dict(result.tuples("surv"))
        assert values["t1"] == pytest.approx(0.25)
        assert values["t2"] == pytest.approx(0.9)

    def test_munion_collects_pairs(self):
        program = Program.parse(
            """
            val(m, 1, area, north). val(m, 1, sector, tex).
            t(M, I, VSet) :- val(M, I, A, V), VSet = munion((A, V), <A>).
            """
        )
        result = program.run()
        rows = result.tuples("t")
        assert rows[0][2] == frozenset(
            {("area", "north"), ("sector", "tex")}
        )


class TestExternals:
    def test_boolean_external_filters(self):
        registry = ExternalRegistry()
        registry.register("bigger", boolean_external(lambda a, b: a > b))
        program = Program.parse(
            """
            n(1). n(5).
            big(X) :- n(X), #bigger(X, 3).
            """
        )
        result = program.run(externals=registry)
        assert result.tuples("big") == [(5,)]

    def test_external_binds_open_positions(self):
        registry = ExternalRegistry()

        def double(context, x, y):
            yield (x, x * 2)

        registry.register("double", double)
        program = Program.parse(
            """
            n(2). n(3).
            d(X, Y) :- n(X), #double(X, Y).
            """
        )
        result = program.run(externals=registry)
        assert sorted(result.tuples("d")) == [(2, 4), (3, 6)]

    def test_unknown_external_raises(self):
        program = Program.parse("p(X) :- n(X), #mystery(X).")
        with pytest.raises(EvaluationError):
            program.run([Atom.of("n", 1)])

    def test_side_effecting_external_reenters_fixpoint(self):
        registry = ExternalRegistry()

        def spawn(context, x):
            if x < 3:
                context.assert_fact("n", x + 1)
            yield (x,)

        registry.register("spawn", spawn)
        program = Program.parse(
            """
            n(0).
            seen(X) :- n(X), #spawn(X).
            """
        )
        result = program.run(externals=registry)
        assert sorted(v for (v,) in result.tuples("seen")) == [0, 1, 2, 3]


class TestRoutingAndProvenance:
    def test_routing_orders_bindings(self):
        fired = []
        registry = ExternalRegistry()

        def record(context, x):
            fired.append(x)
            yield (x,)

        registry.register("record", record)
        routing = RoutingTable()
        routing.set_strategy("r", sort_by_variable("X", descending=True))
        program = Program.parse(
            """
            n(1). n(2). n(3).
            @label("r").
            out(X) :- n(X), #record(X).
            """
        )
        program.run(externals=registry, routing=routing)
        assert fired == [3, 2, 1]

    def test_provenance_tree(self):
        program = Program.parse(
            """
            edge(a, b). edge(b, c).
            @label("base"). path(X, Y) :- edge(X, Y).
            @label("step"). path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        result = program.run()
        target = Atom.of("path", "a", "c")
        tree = result.explain(target)
        rendered = tree.render()
        assert "[by step]" in rendered
        assert "[input]" in rendered
        assert "edge" in rendered

    def test_extensional_fact_has_no_derivation(self):
        program = Program.parse("edge(a, b). path(X, Y) :- edge(X, Y).")
        result = program.run()
        node = result.explain(Atom.of("edge", "a", "b"))
        assert node.is_extensional


class TestGuards:
    def test_max_facts_guard(self):
        program = Program.parse(
            """
            n(0).
            n(Y) :- n(X), Y = X + 1.
            """
        )
        with pytest.raises(EvaluationError):
            program.run(max_facts=500)
