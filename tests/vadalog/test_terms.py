"""Unit tests for the term model."""

import pytest

from repro.vadalog.terms import (
    Constant,
    LabelledNull,
    NullFactory,
    Variable,
    unwrap,
    unwrap_tuple,
    wrap,
    wrap_tuple,
)


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(3) == Constant(3)
        assert Constant("a") != Constant("b")

    def test_hashable_and_usable_in_sets(self):
        assert len({Constant(1), Constant(1), Constant(2)}) == 2

    def test_not_equal_to_raw_value(self):
        assert Constant(3) != 3

    def test_immutability(self):
        constant = Constant(1)
        with pytest.raises(AttributeError):
            constant.value = 2

    def test_str_quotes_strings(self):
        assert str(Constant("x")) == '"x"'
        assert str(Constant(7)) == "7"

    def test_is_ground_and_kind_flags(self):
        constant = Constant(0)
        assert constant.is_ground
        assert constant.is_constant
        assert not constant.is_variable
        assert not constant.is_null


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_anonymous_detection(self):
        assert Variable("_").is_anonymous
        assert Variable("_tmp").is_anonymous
        assert not Variable("X").is_anonymous

    def test_not_ground(self):
        assert not Variable("X").is_ground

    def test_immutability(self):
        variable = Variable("X")
        with pytest.raises(AttributeError):
            variable.name = "Y"


class TestLabelledNull:
    def test_equality_by_label(self):
        assert LabelledNull(1) == LabelledNull(1)
        assert LabelledNull(1) != LabelledNull(2)

    def test_null_is_ground(self):
        assert LabelledNull(1).is_ground
        assert LabelledNull(1).is_null

    def test_str_rendering(self):
        assert str(LabelledNull(3)) == "⊥3"

    def test_distinct_from_constant(self):
        assert LabelledNull(1) != Constant(1)


class TestNullFactory:
    def test_fresh_nulls_are_distinct_and_counted(self):
        factory = NullFactory()
        first = factory.fresh()
        second = factory.fresh()
        assert first != second
        assert factory.issued == 2

    def test_labels_start_at_one(self):
        factory = NullFactory()
        assert factory.fresh().label == 1


class TestWrapUnwrap:
    def test_wrap_plain_values(self):
        assert wrap(3) == Constant(3)
        assert wrap("x") == Constant("x")

    def test_wrap_passes_terms_through(self):
        null = LabelledNull(1)
        assert wrap(null) is null
        variable = Variable("X")
        assert wrap(variable) is variable

    def test_none_is_a_constant_not_a_null(self):
        wrapped = wrap(None)
        assert isinstance(wrapped, Constant)
        assert wrapped.value is None

    def test_unwrap_constant_and_null(self):
        assert unwrap(Constant(5)) == 5
        null = LabelledNull(2)
        assert unwrap(null) is null

    def test_unwrap_variable_raises(self):
        with pytest.raises(ValueError):
            unwrap(Variable("X"))

    def test_tuple_roundtrip(self):
        values = (1, "a", frozenset({2}))
        assert unwrap_tuple(wrap_tuple(values)) == values
