"""The confidentiality information-flow analysis: flow graph, taint
propagation, VDL070-074 golden diagnostics, SARIF output, the preflight
gate and the static/dynamic disclosure cross-check.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack.disclosure import (
    Disclosure,
    find_disclosures,
    identifier_positions,
    sentinel_values,
)
from repro.errors import StaticAnalysisError
from repro.framework import VadaSA
from repro.model.schema import AttributeCategory, MicrodataSchema
from repro.testing.conformance import run_one
from repro.testing.generator import GeneratorConfig, generate_program
from repro.vadalog import Program
from repro.vadalog.analysis import (
    AnalysisReport,
    Diagnostic,
    Span,
    analyze,
    annotations_from_schema,
    build_flow_graph,
    parse_category_annotations,
    to_sarif,
)
from repro.vadalog.analysis.manager import AnalysisContext


LEAKY = """
@category("person", 0, "identifier").
@output("view").
person("p1", "oncology").
@label("copy").
view(P, W) :- person(P, W).
"""


def codes(report):
    return [d.code for d in report.diagnostics]


class TestFlowGraph:
    def test_positions_and_edges_from_variable_sharing(self):
        program = Program.parse(
            "q(X, Y) :- e(X), f(Y).\n"
            "e(1). f(2).\n"
        )
        graph = build_flow_graph(program)
        assert ("e", 0) in graph.positions
        assert ("q", 1) in graph.positions
        targets = {edge.target for edge in graph.outgoing(("e", 0))}
        assert targets == {("q", 0)}

    def test_reachable_from_stops_at_declassified_edges(self):
        program = Program.parse(
            "p(Y) :- e(X), #anonymize(X, Y).\n"
            '@output("p").\ne("x").\n'
        )
        graph = build_flow_graph(program)
        assert ("p", 0) not in graph.reachable_from([("e", 0)])
        assert ("p", 0) in graph.reachable_from(
            [("e", 0)], include_declassified=True
        )

    def test_context_caches_flow_graph(self):
        context = AnalysisContext(Program.parse(LEAKY))
        assert context.flow is context.flow

    def test_risk_check_detected_in_head_and_body(self):
        derives = Program.parse("riskOutput(I, 1) :- t(I).\nt(1).")
        consumes = Program.parse("ok(I) :- riskOutput(I, R), R < 1.")
        external = Program.parse("ok(I) :- t(I), #risk(I, R).\nt(1).")
        plain = Program.parse("ok(I) :- t(I).\nt(1).")
        assert build_flow_graph(derives).has_risk_check
        assert build_flow_graph(consumes).has_risk_check
        assert build_flow_graph(external).has_risk_check
        assert not build_flow_graph(plain).has_risk_check


class TestCategoryParsing:
    def test_first_seed_wins(self):
        program = Program.parse(
            '@category("t", 0, "public").\n'
            '@category("t", 0, "identifier").\n'
            "t(1).\n"
        )
        seeds, malformed = parse_category_annotations(program.annotations)
        assert malformed == []
        assert len(seeds) == 1
        assert seeds[0].level == "public"

    def test_level_aliases(self):
        program = Program.parse(
            '@category("t", 0, "Quasi-identifier").\n'
            '@category("t", 1, "Sampling Weight").\n'
            "t(1, 2).\n"
        )
        seeds, _ = parse_category_annotations(program.annotations)
        assert [s.level for s in seeds] == ["qi", "public"]

    def test_malformed_annotations_are_reported(self):
        program = Program.parse(
            '@category("t").\n'
            '@category("t", "zero", "qi").\n'
            '@category("t", 0, "super-secret").\n'
            "t(1).\n"
        )
        seeds, malformed = parse_category_annotations(program.annotations)
        assert seeds == []
        assert len(malformed) == 3

    def test_spans_are_threaded_from_source(self):
        program = Program.parse(LEAKY)
        seeds, _ = parse_category_annotations(program.annotations)
        assert seeds[0].line == 2
        assert seeds[0].column == 1


class TestVDL070:
    def test_identifier_to_output_is_an_error_with_path(self):
        report = analyze(Program.parse(LEAKY))
        assert "VDL070" in codes(report)
        (diag,) = [d for d in report.diagnostics if d.code == "VDL070"]
        assert diag.severity == "error"
        assert "person[0] --copy--> view[0]" in diag.message
        assert diag.rule_label == "copy"

    def test_multi_hop_path_is_rendered_in_order(self):
        report = analyze(Program.parse(
            '@category("e", 0, "identifier").\n'
            '@output("out").\n'
            "e(1).\n"
            '@label("hop1").\nmid(X) :- e(X).\n'
            '@label("hop2").\nout(X) :- mid(X).\n'
        ))
        (diag,) = report.errors
        assert (
            "e[0] --hop1--> mid[0] --hop2--> out[0]" in diag.message
        )

    def test_declassification_through_anonymize_is_clean(self):
        report = analyze(Program.parse(
            '@category("person", 0, "identifier").\n'
            '@output("view").\n'
            'person("p1", "x").\n'
            "view(P2, W) :- person(P, W), #anonymize(P, P2).\n"
        ))
        assert "VDL070" not in codes(report)

    def test_aggregates_drop_contributor_identity(self):
        report = analyze(Program.parse(
            '@category("pay", 0, "identifier").\n'
            '@output("total").\n'
            'pay("p1", 10).\n'
            "total(S) :- pay(I, W), S = msum(W, <I>).\n"
        ))
        assert "VDL070" not in codes(report)

    def test_aggregate_argument_carries_taint(self):
        report = analyze(Program.parse(
            '@category("pay", 0, "identifier").\n'
            '@output("worst").\n'
            'pay("p1", 10).\n'
            "worst(S) :- pay(I, _W), S = mmax(I, <I>).\n"
        ))
        assert "VDL070" in codes(report)

    def test_equality_condition_carries_taint(self):
        # p(Y) :- e(X), f(Y), X == Y publishes X's values through Y.
        report = analyze(Program.parse(
            '@category("e", 0, "identifier").\n'
            '@output("p").\n'
            'e("id1"). f("id1").\n'
            "p(Y) :- e(X), f(Y), X == Y.\n"
        ))
        assert "VDL070" in codes(report)

    def test_egd_unification_reaches_existential_occurrences(self):
        # The EGD unifies the invented null with the identifier, and
        # the null also occurs in the published head.
        report = analyze(Program.parse(
            '@category("e", 0, "identifier").\n'
            '@output("pub").\n'
            'e("id1"). e("id2").\n'
            '@label("copy").\ng(X) :- e(X).\n'
            '@label("mint").\nexists(N) e(_X) -> g(N), pub(N).\n'
            '@label("fd").\nX1 = X2 :- g(X1), g(X2).\n'
        ))
        assert "VDL070" in codes(report)

    def test_suppression_via_lint_ignore(self):
        source = LEAKY + (
            '@lint_ignore("VDL070", "custodian-side view").\n'
        )
        report = analyze(Program.parse(source))
        assert "VDL070" not in codes(report)
        assert "VDL070" in {d.code for d in report.suppressed}
        assert report.ignores["VDL070"] == "custodian-side view"


class TestVDL071To074:
    def test_qi_to_output_without_risk_check_warns(self):
        report = analyze(Program.parse(
            '@category("t", 0, "qi").\n'
            '@output("view").\n'
            "t(1).\nview(X) :- t(X).\n"
        ))
        (diag,) = [d for d in report.diagnostics if d.code == "VDL071"]
        assert diag.severity == "warning"
        assert "t[0]" in diag.message

    def test_qi_is_silent_inside_a_risk_checked_cycle(self):
        report = analyze(Program.parse(
            '@category("t", 0, "qi").\n'
            '@output("view").\n'
            "t(1).\nview(X) :- t(X), #risk(X, R), R < 1.\n"
        ))
        assert "VDL071" not in codes(report)

    def test_sensitive_join_key_warns(self):
        report = analyze(Program.parse(
            '@category("diag", 1, "sensitive").\n'
            '@output("linked").\n'
            "diag(1, 2). aux(2, 3).\n"
            '@label("join").\n'
            "linked(I, Y) :- diag(I, S), aux(S, Y).\n"
        ))
        (diag,) = [d for d in report.diagnostics if d.code == "VDL072"]
        assert diag.severity == "warning"
        assert "join key" in diag.message
        assert diag.rule_label == "join"

    def test_dead_declassifier_is_info(self):
        report = analyze(Program.parse(
            '@category("t", 0, "qi").\n'
            '@output("view").\n'
            "t(1). u(2).\n"
            "view(X) :- t(X), #risk(X, R), R < 1.\n"
            "other(Y2) :- u(Y), #anonymize(Y, Y2).\n"
        ))
        (diag,) = [d for d in report.diagnostics if d.code == "VDL073"]
        assert diag.severity == "info"
        assert "#anonymize" in diag.message

    def test_no_category_seeds_stays_silent(self):
        # Without taintable seeds the pass must not spam VDL073.
        report = analyze(Program.parse(
            '@output("p").\n'
            "e(1).\np(Y) :- e(X), #anonymize(X, Y).\n"
        ))
        assert "VDL073" not in codes(report)

    def test_malformed_category_warns_vdl074(self):
        report = analyze(Program.parse(
            '@category("t", 0, "super-secret").\n'
            "t(1).\n"
        ))
        (diag,) = [d for d in report.diagnostics if d.code == "VDL074"]
        assert "super-secret" in diag.message
        assert diag.span.line == 1

    def test_dangling_category_warns_vdl074(self):
        report = analyze(Program.parse(
            '@category("ghost", 0, "identifier").\n'
            "t(1).\n"
        ))
        (diag,) = [d for d in report.diagnostics if d.code == "VDL074"]
        assert "ghost[0]" in diag.message


class TestPreflightGate:
    def test_run_rejects_leaky_program(self):
        program = Program.parse(LEAKY)
        with pytest.raises(StaticAnalysisError, match="VDL070"):
            program.run()

    def test_preflight_false_escapes(self):
        program = Program.parse(LEAKY)
        result = program.run(preflight=False, provenance=False)
        assert result.facts()

    def test_lint_ignore_unlocks_the_gate(self):
        program = Program.parse(
            LEAKY + '@lint_ignore("VDL070", "by design").\n'
        )
        result = program.run(provenance=False)
        assert result.facts()


class TestOrderingAndDedupe:
    def test_reports_sort_by_line_column_code(self):
        report = AnalysisReport([
            Diagnostic("VDL031", "warning", "later", span=Span(9, 1)),
            Diagnostic("VDL050", "info", "earlier", span=Span(2, 5)),
            Diagnostic("VDL010", "error", "same line", span=Span(2, 1)),
        ])
        assert [d.code for d in report.diagnostics] == [
            "VDL010", "VDL050", "VDL031",
        ]

    def test_identical_findings_across_passes_dedupe(self):
        report = AnalysisReport([
            Diagnostic("VDL031", "warning", "same", span=Span(3, 1),
                       pass_name="predicates"),
            Diagnostic("VDL031", "warning", "same", span=Span(3, 1),
                       pass_name="deadcode"),
        ])
        assert len(report.diagnostics) == 1
        # First (sorted) occurrence keeps its pass attribution.
        assert report.diagnostics[0].pass_name == "predicates"

    def test_different_spans_are_kept(self):
        report = AnalysisReport([
            Diagnostic("VDL031", "warning", "same", span=Span(3, 1)),
            Diagnostic("VDL031", "warning", "same", span=Span(4, 1)),
        ])
        assert len(report.diagnostics) == 2


class TestSarif:
    def test_sarif_structure_and_ordering(self):
        report = analyze(
            Program.parse(LEAKY), source_name="leaky.vada"
        )
        log = to_sarif([report])
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "VDL070" in rule_ids
        results = run["results"]
        assert results, "expected at least the VDL070 result"
        locations = [
            (
                r["locations"][0]["physicalLocation"]["artifactLocation"]
                ["uri"],
                r["locations"][0]["physicalLocation"].get(
                    "region", {}
                ).get("startLine", 0),
                r["ruleId"],
            )
            for r in results
        ]
        assert locations == sorted(locations)
        assert all(
            location[0] == "leaky.vada" for location in locations
        )

    def test_suppressions_are_carried_in_source(self):
        report = analyze(Program.parse(
            LEAKY + '@lint_ignore("VDL070", "custodian map").\n'
        ))
        log = to_sarif([report])
        suppressed = [
            r for r in log["runs"][0]["results"]
            if r.get("suppressions")
        ]
        assert suppressed
        assert suppressed[0]["suppressions"][0] == {
            "kind": "inSource",
            "justification": "custodian map",
        }

    def test_cli_emits_valid_sarif(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "leaky.vada"
        path.write_text(LEAKY)
        exit_code = main(["lint", str(path), "--format", "sarif"])
        log = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert log["runs"][0]["results"][0]["ruleId"] == "VDL070"

    def test_cli_sarif_covers_parse_failures(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "broken.vada"
        path.write_text("broken(\n")
        exit_code = main(["lint", str(path), "--format", "sarif"])
        log = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert log["runs"][0]["results"][0]["ruleId"] == "VDL000"


class TestSchemaDefaults:
    def test_annotations_only_for_used_predicates(self):
        schema = MicrodataSchema(
            ("name", "age"),
            {
                "name": AttributeCategory.IDENTIFIER,
                "age": AttributeCategory.QUASI_IDENTIFIER,
            },
        )
        program = Program.parse("t(1).\n")
        assert annotations_from_schema(schema, program) == []

    def test_vadasa_analyze_program_with_schema(self):
        schema = MicrodataSchema(
            ("name", "age"),
            {
                "name": AttributeCategory.IDENTIFIER,
                "age": AttributeCategory.QUASI_IDENTIFIER,
            },
        )
        report = VadaSA().analyze_program(
            '@output("view").\n'
            "val(1, 2, 3, 4).\n"
            "view(V) :- val(_M, _I, _A, V).\n",
            schema=schema,
        )
        assert any(d.code == "VDL070" for d in report.errors)

    def test_explicit_annotations_shadow_schema_defaults(self):
        schema = MicrodataSchema(
            ("name", "age"),
            {
                "name": AttributeCategory.IDENTIFIER,
                "age": AttributeCategory.QUASI_IDENTIFIER,
            },
        )
        report = VadaSA().analyze_program(
            '@category("val", 3, "public").\n'
            '@output("view").\n'
            "val(1, 2, 3, 4).\n"
            "view(V) :- val(_M, _I, _A, V).\n",
            schema=schema,
        )
        assert not any(d.code == "VDL070" for d in report.errors)


class TestDisclosureOracle:
    def test_sentinels_from_identifier_positions(self):
        program = Program.parse(LEAKY)
        assert identifier_positions(program) == {("person", 0)}
        assert sentinel_values(program) == {"p1"}

    def test_find_disclosures_recurses_into_containers(self):
        program = Program.parse(
            '@category("e", 0, "identifier").\n'
            '@output("packed").\n'
            'e("id1").\n'
            "packed(S) :- e(X), S = munion(X, <X>).\n"
        )
        result = program.run(preflight=False, provenance=False)
        disclosures = find_disclosures(program, result.facts())
        assert disclosures == [Disclosure("packed", 0, frozenset({"id1"}))]

    def test_no_outputs_means_no_disclosures(self):
        program = Program.parse(
            '@category("e", 0, "identifier").\ne("id1").\n'
            "p(X) :- e(X).\n"
        )
        result = program.run(preflight=False, provenance=False)
        assert find_disclosures(program, result.facts()) == []


class TestStaticDynamicCrossCheck:
    def test_generated_programs_carry_seeding(self):
        seeded = 0
        for seed in range(40):
            program = generate_program(random.Random(seed))
            if sentinel_values(program):
                seeded += 1
                assert program.outputs()
        assert seeded >= 20

    def test_run_one_reports_flow_checked(self):
        checked = 0
        for seed in range(30):
            program = generate_program(random.Random(seed))
            outcome = run_one(program)
            assert outcome.status != "flow-disagree", outcome.detail
            checked += outcome.flow_checked
        assert checked >= 10

    def test_unseeded_programs_skip_the_check(self):
        config = GeneratorConfig(p_identifier_seed=0.0)
        program = generate_program(random.Random(5), config)
        assert sentinel_values(program) == set()
        outcome = run_one(program)
        assert not outcome.flow_checked

    @settings(deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_flow_clean_programs_never_disclose(self, seed):
        # The soundness direction of VDL070: a program the static
        # analysis calls clean must never surface a sentinel
        # identifier in an @output fact.
        program = generate_program(random.Random(seed))
        if not sentinel_values(program) or not program.outputs():
            return
        report = analyze(program)
        if any(d.code == "VDL070" for d in report.errors):
            return
        try:
            result = program.run(
                preflight=False, provenance=False,
                max_rounds=100, max_facts=20_000,
            )
        except Exception:
            return  # budget/runtime errors are out of scope here
        disclosures = find_disclosures(program, result.facts())
        assert disclosures == [], [str(d) for d in disclosures]


class TestAnnotationRoundTrip:
    def test_category_annotations_survive_render(self):
        program = Program.parse(LEAKY)
        reparsed = Program.parse(program.to_source())
        assert reparsed.annotations == program.annotations
        assert analyze(reparsed).codes() == analyze(program).codes()

    def test_generated_program_round_trips_with_seeding(self):
        program = generate_program(random.Random(11))
        reparsed = Program.parse(program.to_source())
        assert sentinel_values(reparsed) == sentinel_values(program)
        assert set(reparsed.outputs()) == set(program.outputs())
