"""Property-based engine tests.

The semi-naive chase with indices, deltas and routing is compared
against an intentionally *naive* reference evaluator (repeated full
joins until fixpoint) on randomly generated positive Datalog programs —
any divergence indicates a delta/index bug.  Further properties check
query answering and determinism.
"""

import itertools

from hypothesis import given
from hypothesis import strategies as st

from repro.vadalog import Program
from repro.vadalog.atoms import Atom
from repro.vadalog.rules import Rule
from repro.vadalog.terms import Constant, Variable


# ---------------------------------------------------------------------------
# Reference evaluator: naive bottom-up for positive Datalog.


def naive_fixpoint(rules, facts):
    """Plain-set naive evaluation; returns frozenset of (pred, values)."""
    database = {(f.predicate, tuple(t.value for t in f.terms))
                for f in facts}
    while True:
        additions = set()
        for rule in rules:
            for bindings in _naive_bindings(rule.body, database, {}):
                for head in rule.head:
                    values = tuple(
                        bindings[t] if isinstance(t, Variable) else t.value
                        for t in head.terms
                    )
                    candidate = (head.predicate, values)
                    if candidate not in database:
                        additions.add(candidate)
        if not additions:
            return frozenset(database)
        database |= additions


def _naive_bindings(literals, database, bindings):
    if not literals:
        yield bindings
        return
    literal, rest = literals[0], literals[1:]
    atom = literal.atom
    for predicate, values in database:
        if predicate != atom.predicate or len(values) != atom.arity:
            continue
        extended = dict(bindings)
        ok = True
        for term, value in zip(atom.terms, values):
            if isinstance(term, Variable):
                if term in extended and extended[term] != value:
                    ok = False
                    break
                extended[term] = value
            elif term.value != value:
                ok = False
                break
        if ok:
            yield from _naive_bindings(rest, database, extended)


# ---------------------------------------------------------------------------
# Random program generation.

CONSTANTS = ["a", "b", "c"]
VARIABLES = [Variable(n) for n in ("X", "Y", "Z")]
EDB = ["e1", "e2"]
IDB = ["p1", "p2"]


@st.composite
def random_program(draw):
    facts = []
    n_facts = draw(st.integers(2, 8))
    for _ in range(n_facts):
        predicate = draw(st.sampled_from(EDB))
        arity = 2
        values = [draw(st.sampled_from(CONSTANTS)) for _ in range(arity)]
        facts.append(Atom.of(predicate, *values))

    from repro.vadalog.atoms import Literal

    rules = []
    n_rules = draw(st.integers(1, 4))
    for _ in range(n_rules):
        n_body = draw(st.integers(1, 3))
        body = []
        used_vars = set()
        for _ in range(n_body):
            predicate = draw(st.sampled_from(EDB + IDB))
            terms = []
            for _ in range(2):
                if draw(st.booleans()):
                    variable = draw(st.sampled_from(VARIABLES))
                    used_vars.add(variable)
                    terms.append(variable)
                else:
                    terms.append(Constant(draw(st.sampled_from(CONSTANTS))))
            body.append(Literal(Atom(predicate, tuple(terms))))
        head_pred = draw(st.sampled_from(IDB))
        head_terms = []
        for _ in range(2):
            if used_vars and draw(st.booleans()):
                head_terms.append(
                    draw(st.sampled_from(sorted(used_vars,
                                                key=lambda v: v.name)))
                )
            else:
                head_terms.append(
                    Constant(draw(st.sampled_from(CONSTANTS)))
                )
        rules.append(Rule([Atom(head_pred, tuple(head_terms))], body))
    return rules, facts


class TestAgainstNaiveReference:
    @given(random_program())
    def test_chase_equals_naive_fixpoint(self, program):
        rules, facts = program
        expected = naive_fixpoint(rules, facts)
        result = Program(rules=rules, facts=facts).run(provenance=False)
        actual = {
            (fact.predicate, tuple(t.value for t in fact.terms))
            for fact in result.facts()
        }
        assert actual == expected

    @given(random_program())
    def test_evaluation_is_deterministic(self, program):
        rules, facts = program
        first = Program(rules=rules, facts=facts).run()
        second = Program(rules=rules, facts=facts).run()
        assert set(map(str, first.facts())) == set(map(str, second.facts()))


class TestRenderRoundtripProperty:
    @given(random_program())
    def test_random_programs_roundtrip_through_source(self, program):
        """parse(render(P)) derives exactly the same facts as P."""
        rules, facts = program
        original = Program(rules=rules, facts=facts)
        reparsed = Program.parse(original.to_source())
        first = {
            (f.predicate, tuple(str(t) for t in f.terms))
            for f in original.run(provenance=False).facts()
        }
        second = {
            (f.predicate, tuple(str(t) for t in f.terms))
            for f in reparsed.run(provenance=False).facts()
        }
        assert first == second


class TestQueryAnswering:
    def test_query_with_variables(self):
        program = Program.parse(
            """
            edge(a, b). edge(b, c).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        result = program.run()
        answers = result.query("path(a, Y)")
        assert sorted(row["Y"] for row in answers) == ["b", "c"]

    def test_query_fully_ground(self):
        program = Program.parse("edge(a, b).")
        result = program.run()
        assert result.query("edge(a, b)") == [{}]
        assert result.query("edge(a, z)") == []

    def test_query_all_variables(self):
        program = Program.parse("n(1). n(2).")
        result = program.run()
        answers = result.query("n(X)")
        assert sorted(row["X"] for row in answers) == [1, 2]

    def test_query_repeated_variable(self):
        program = Program.parse("pair(1, 1). pair(1, 2).")
        result = program.run()
        answers = result.query("pair(X, X)")
        assert [row["X"] for row in answers] == [1]


# ---------------------------------------------------------------------------
# Differential: compiled join plans vs the legacy recursive enumerator.


class TestPlannedVsLegacy:
    """The compiled-plan path must be observationally identical to the
    legacy enumerator it replaced.  Failures are written as replayable
    conformance seed artifacts (the embedded rendered program replays
    with ``python -m repro.testing.conformance --replay <path>``).
    """

    MAX_ROUNDS = 400
    MAX_FACTS = 4_000

    def _save_failure(self, program, detail):
        from repro.testing.conformance import (
            ConformanceOutcome, write_artifact,
        )
        from repro.testing.generator import GeneratorConfig

        path = write_artifact(
            "conformance-artifacts",
            seed=0,
            base_seed=0,
            config=GeneratorConfig(),
            outcome=ConformanceOutcome("disagree", detail),
            program=program,
            minimized=None,
            max_rounds=self.MAX_ROUNDS,
            max_facts=self.MAX_FACTS,
            termination="restricted",
            engine_variant="both",
        )
        return f"{detail}\nartifact: {path}"

    def _run(self, program, use_plans):
        try:
            result = program.run(
                provenance=True,
                max_rounds=self.MAX_ROUNDS,
                max_facts=self.MAX_FACTS,
                preflight=False,
                use_plans=use_plans,
            )
        except Exception as exc:  # noqa: BLE001 — crashes compared too
            return ("error", type(exc).__name__)
        return (
            "ok",
            frozenset(result.facts()),
            len(result.provenance),
            result.rounds,
        )

    @given(rng=st.randoms(use_true_random=False))
    def test_identical_facts_provenance_and_rounds(self, rng):
        """Without existentials and aggregates the two paths agree on
        everything: fact sets (labels and all), provenance entry
        counts, and semi-naive round counts."""
        from repro.testing.generator import (
            GeneratorConfig, generate_program,
        )

        config = GeneratorConfig(p_existential=0.0, p_aggregate=0.0)
        program = generate_program(rng, config)
        planned = self._run(program, use_plans=True)
        legacy = self._run(program, use_plans=False)
        if planned != legacy:
            raise AssertionError(self._save_failure(
                program,
                f"planned {planned[:2]} != legacy {legacy[:2]}",
            ))

    @given(rng=st.randoms(use_true_random=False))
    def test_three_way_agreement_full_feature_mix(self, rng):
        """With the full generator feature mix (existentials,
        aggregates, negation, EGDs) planned, legacy and the naive
        reference agree up to null isomorphism."""
        from repro.testing.conformance import run_one
        from repro.testing.generator import (
            GeneratorConfig, generate_program,
        )

        program = generate_program(rng, GeneratorConfig())
        outcome = run_one(program, engine_variant="both")
        if outcome.is_disagreement:
            raise AssertionError(
                self._save_failure(program, outcome.detail)
            )
