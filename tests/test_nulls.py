"""Null-semantics tests: maybe-match vs standard grouping, the
Figure 5 frequencies, and hypothesis properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model import (
    MAYBE_MATCH,
    STANDARD,
    MicrodataDB,
    semantics_by_name,
    survey_schema,
)
from repro.vadalog.terms import LabelledNull, NullFactory


def make_db(rows, attrs=("A", "B")):
    schema = survey_schema(quasi_identifiers=list(attrs))
    return MicrodataDB("t", schema, rows)


class TestStandardSemantics:
    def test_exact_grouping(self):
        db = make_db(
            [
                {"A": 1, "B": 1},
                {"A": 1, "B": 1},
                {"A": 2, "B": 1},
            ]
        )
        assert STANDARD.match_counts(db) == [2, 2, 1]

    def test_each_null_is_its_own_value(self):
        n1, n2 = LabelledNull(1), LabelledNull(2)
        db = make_db(
            [
                {"A": n1, "B": 1},
                {"A": n2, "B": 1},
                {"A": n1, "B": 1},
            ]
        )
        assert STANDARD.match_counts(db) == [2, 1, 2]

    def test_weight_sums(self):
        schema = survey_schema(quasi_identifiers=["A"], weight="W")
        db = MicrodataDB(
            "t",
            schema,
            [{"A": 1, "W": 10}, {"A": 1, "W": 5}, {"A": 2, "W": 3}],
        )
        assert STANDARD.match_weight_sums(db) == [15, 15, 3]


class TestMaybeMatchSemantics:
    def test_figure5_frequencies_before_anonymization(self, cities_db):
        counts = MAYBE_MATCH.match_counts(cities_db)
        assert counts == [1, 2, 2, 2, 2, 1, 1]

    def test_figure5_frequencies_after_suppression(self, cities_db):
        db = cities_db.copy()
        db.with_value(0, "Sector", LabelledNull(1))
        # Tuple 1's suppressed Sector lets it match tuples 2-5 -> 5;
        # tuples 2-5 now also match tuple 1 -> 3 (Figure 5b).
        counts = MAYBE_MATCH.match_counts(db)
        assert counts[:5] == [5, 3, 3, 3, 3]

    def test_null_matches_other_nulls(self):
        db = make_db(
            [
                {"A": LabelledNull(1), "B": 1},
                {"A": LabelledNull(2), "B": 1},
            ]
        )
        assert MAYBE_MATCH.match_counts(db) == [2, 2]

    def test_null_does_not_bridge_distinct_constants_elsewhere(self):
        db = make_db(
            [
                {"A": LabelledNull(1), "B": 1},
                {"A": "x", "B": 2},
            ]
        )
        assert MAYBE_MATCH.match_counts(db) == [1, 1]

    def test_zero_attributes_all_match(self):
        db = make_db([{"A": 1, "B": 1}, {"A": 2, "B": 2}])
        assert MAYBE_MATCH.match_counts(db, attributes=[]) == [2, 2]

    def test_matches_combination_with_wildcards(self):
        row = {"A": LabelledNull(3), "B": "y"}
        assert MAYBE_MATCH.matches_combination(
            row, [("A", "x"), ("B", "y")]
        )
        assert not MAYBE_MATCH.matches_combination(
            row, [("A", "x"), ("B", "z")]
        )

    def test_weight_sums_with_nulls(self):
        schema = survey_schema(quasi_identifiers=["A"], weight="W")
        db = MicrodataDB(
            "t",
            schema,
            [
                {"A": LabelledNull(1), "W": 10},
                {"A": "x", "W": 5},
                {"A": "y", "W": 3},
            ],
        )
        sums = MAYBE_MATCH.match_weight_sums(db)
        assert sums[0] == 18  # the null row matches everyone
        assert sums[1] == 15  # x matches itself and the null row


class TestSemanticsLookup:
    def test_by_name(self):
        assert semantics_by_name("maybe-match") is MAYBE_MATCH
        assert semantics_by_name("standard") is STANDARD

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            semantics_by_name("fuzzy")


# -- property-based tests ----------------------------------------------------

value_strategy = st.integers(min_value=0, max_value=3)


@st.composite
def small_dataset(draw, max_rows=12):
    n_rows = draw(st.integers(min_value=1, max_value=max_rows))
    rows = [
        {"A": draw(value_strategy), "B": draw(value_strategy)}
        for _ in range(n_rows)
    ]
    return make_db(rows)


@st.composite
def dataset_with_nulls(draw, max_rows=10):
    db = draw(small_dataset(max_rows))
    factory = NullFactory()
    n_suppressions = draw(st.integers(min_value=0, max_value=5))
    for _ in range(n_suppressions):
        row = draw(st.integers(min_value=0, max_value=len(db) - 1))
        attr = draw(st.sampled_from(["A", "B"]))
        db.with_value(row, attr, factory.fresh())
    return db


class TestSemanticsProperties:
    @given(dataset_with_nulls())
    def test_maybe_match_dominates_standard(self, db):
        """Maybe-match can only enlarge groups: per-row frequency under
        =⊥ is >= the standard-semantics frequency."""
        maybe = MAYBE_MATCH.match_counts(db)
        standard = STANDARD.match_counts(db)
        for m, s in zip(maybe, standard):
            assert m >= s

    @given(dataset_with_nulls())
    def test_counts_match_naive_quadratic(self, db):
        """The pattern-join computation equals the O(n^2) definition."""
        expected = []
        for i in range(len(db)):
            combination = [(a, db.rows[i][a]) for a in ["A", "B"]]
            expected.append(
                sum(
                    1
                    for j in range(len(db))
                    if MAYBE_MATCH.matches_combination(
                        db.rows[j], combination
                    )
                )
            )
        assert MAYBE_MATCH.match_counts(db) == expected

    @given(small_dataset())
    def test_semantics_agree_without_nulls(self, db):
        assert MAYBE_MATCH.match_counts(db) == STANDARD.match_counts(db)

    @given(dataset_with_nulls())
    def test_every_row_matches_itself(self, db):
        for count in MAYBE_MATCH.match_counts(db):
            assert count >= 1

    @given(dataset_with_nulls(), st.integers(0, 9), st.sampled_from(["A", "B"]))
    def test_suppression_never_decreases_own_frequency(
        self, db, row_seed, attr
    ):
        """Replacing a value with a fresh null is monotone for the
        suppressed row under maybe-match semantics."""
        row = row_seed % len(db)
        before = MAYBE_MATCH.match_counts(db)[row]
        db.with_value(row, attr, NullFactory(start=1000).fresh())
        after = MAYBE_MATCH.match_counts(db)[row]
        assert after >= before
