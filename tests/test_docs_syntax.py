"""The language-reference document's code snippets must stay valid:
every prolog-style block in docs/vadalog-syntax.md parses."""

import re
from pathlib import Path

import pytest

from repro.vadalog import Program

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC = REPO_ROOT / "docs" / "vadalog-syntax.md"


def prolog_blocks():
    text = DOC.read_text(encoding="utf-8")
    return re.findall(r"```prolog\n(.*?)```", text, flags=re.DOTALL)


class TestSyntaxDoc:
    def test_document_exists_with_blocks(self):
        blocks = prolog_blocks()
        assert len(blocks) >= 2

    def test_every_prolog_block_parses(self):
        for index, block in enumerate(prolog_blocks()):
            program = Program.parse(block)
            assert len(program) + len(program.facts) > 0, (
                f"block {index} parsed to an empty program"
            )

    def test_statement_table_examples_parse(self):
        """The body-element table's inline examples, as full rules."""
        examples = [
            "h(M, I) :- tuple(M, I, VSet).",
            "h(I) :- q(I, S), not msu(I, S).",
            "h(R) :- q(R, T), R > T.",
            'h(C) :- q(C), C in ["Quasi-identifier"].',
            "h(X, Y) :- q(X, Y), X > 0 && Y < 2.",
            "h(R) :- q(S), R = 1 / S.",
            "h(Q) :- q(VSet, ASet), Q = project(VSet, ASet).",
            "h(S) :- q(W, I), S = msum(W, <I>).",
            "h(F) :- q(I), F = mcount(<I>).",
            "rel(X, Y) :- rel(X, Z), own(Z, Y, W), msum(W, <Z>) > 0.5.",
            "h(A) :- q(A, A1), #similar(A, A1).",
            "h(I, R) :- q(I), #risk(I, R).",
        ]
        for example in examples:
            program = Program.parse(example)
            assert len(program.rules) == 1, example

    def test_termination_examples(self):
        program = Program.parse(
            """
            emp(e1).
            emp(X) -> reportsTo(X, Z).
            emp(Z) :- reportsTo(X, Z).
            """
        )
        result = program.run(termination="isomorphic")
        assert result.nulls_introduced == 2
