"""l-diversity measure tests."""

import pytest

from repro.anonymize import LocalSuppression, anonymize
from repro.errors import ReproError
from repro.model import (
    MAYBE_MATCH,
    STANDARD,
    MicrodataDB,
    survey_schema,
)
from repro.risk import LDiversityRisk, measure_by_name, sensitive_diversity
from repro.vadalog.terms import LabelledNull


def make_db(rows):
    schema = survey_schema(
        quasi_identifiers=["A", "B"], non_identifying=["S"]
    )
    return MicrodataDB("ld", schema, rows)


class TestDiversityCounting:
    def test_homogeneous_group_low_diversity(self):
        db = make_db(
            [
                {"A": 1, "B": 1, "S": "x"},
                {"A": 1, "B": 1, "S": "x"},
                {"A": 2, "B": 2, "S": "y"},
            ]
        )
        diversities = sensitive_diversity(db, "S", ["A", "B"])
        assert diversities == [1, 1, 1]

    def test_diverse_group(self):
        db = make_db(
            [
                {"A": 1, "B": 1, "S": "x"},
                {"A": 1, "B": 1, "S": "y"},
            ]
        )
        assert sensitive_diversity(db, "S", ["A", "B"]) == [2, 2]

    def test_null_row_joins_groups(self):
        db = make_db(
            [
                {"A": 1, "B": 1, "S": "x"},
                {"A": LabelledNull(1), "B": 1, "S": "y"},
            ]
        )
        # Under maybe-match the null row shares a group with row 0.
        assert sensitive_diversity(db, "S", ["A", "B"]) == [2, 2]
        # Under standard semantics they are separate singletons.
        assert sensitive_diversity(
            db, "S", ["A", "B"], semantics=STANDARD
        ) == [1, 1]


class TestMeasure:
    def test_registered(self):
        measure = measure_by_name("l-diversity", sensitive="S", l=2)
        assert isinstance(measure, LDiversityRisk)

    def test_scores(self):
        db = make_db(
            [
                {"A": 1, "B": 1, "S": "x"},
                {"A": 1, "B": 1, "S": "x"},
                {"A": 2, "B": 2, "S": "x"},
                {"A": 2, "B": 2, "S": "y"},
            ]
        )
        report = LDiversityRisk(sensitive="S", l=2).assess(db)
        assert report.scores == [1.0, 1.0, 0.0, 0.0]
        assert "distinct" in report.explain(0)

    def test_k_anonymous_but_not_l_diverse(self):
        """The homogeneity attack case: a group of 3 (3-anonymous!)
        sharing the same sensitive value is still flagged."""
        db = make_db(
            [
                {"A": 1, "B": 1, "S": "default"},
                {"A": 1, "B": 1, "S": "default"},
                {"A": 1, "B": 1, "S": "default"},
            ]
        )
        from repro.risk import KAnonymityRisk

        assert KAnonymityRisk(k=3).assess(db).risky_indices(0.5) == []
        report = LDiversityRisk(sensitive="S", l=2).assess(db)
        assert report.risky_indices(0.5) == [0, 1, 2]

    def test_sensitive_cannot_be_qi(self):
        db = make_db([{"A": 1, "B": 1, "S": "x"}])
        with pytest.raises(ReproError):
            LDiversityRisk(sensitive="A", l=2).assess(db)

    def test_unknown_sensitive(self):
        db = make_db([{"A": 1, "B": 1, "S": "x"}])
        with pytest.raises(ReproError):
            LDiversityRisk(sensitive="Nope", l=2).assess(db)

    def test_invalid_l(self):
        with pytest.raises(ReproError):
            LDiversityRisk(sensitive="S", l=0)


class TestInCycle:
    def test_cycle_converges_to_l_diversity(self, small_u):
        measure = LDiversityRisk(sensitive="Growth6mos", l=2)
        result = anonymize(small_u, measure, LocalSuppression())
        assert result.converged
        final = measure.assess(result.db)
        assert final.risky_indices(0.5) == []

    def test_l_diversity_needs_at_least_k_anonymity_nulls(self, small_u):
        """l-diversity with l=2 is strictly stronger than 2-anonymity
        when sensitive values can repeat, so it needs >= the nulls."""
        from repro.risk import KAnonymityRisk

        l_div = anonymize(
            small_u,
            LDiversityRisk(sensitive="Growth6mos", l=2),
            LocalSuppression(),
        )
        k_anon = anonymize(
            small_u, KAnonymityRisk(k=2), LocalSuppression()
        )
        assert l_div.nulls_injected >= k_anon.nulls_injected
