"""Documentation-integrity and error-hierarchy tests.

The README's quickstart code block is executed verbatim so the
documentation cannot drift from the API, and the exception hierarchy is
pinned so ``except ReproError`` keeps catching everything.
"""

import re
from pathlib import Path

import pytest

from repro.errors import (
    AnonymizationError,
    CategorizationError,
    EGDViolationError,
    EvaluationError,
    HierarchyError,
    ParseError,
    ReproError,
    SafetyError,
    SchemaError,
    StratificationError,
    UnknownExternalError,
    VadalogError,
    WardednessError,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def python_blocks(markdown_path):
    text = (REPO_ROOT / markdown_path).read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_quickstart_block_executes(self):
        blocks = python_blocks("README.md")
        assert blocks, "README lost its quickstart code block"
        quickstart = blocks[0]
        namespace = {}
        exec(compile(quickstart, "README-quickstart", "exec"), namespace)
        # The block ends with the shared view in `shared`.
        assert "shared" in namespace
        assert "Id" not in namespace["shared"].schema.attributes

    def test_engine_block_executes(self):
        blocks = python_blocks("README.md")
        engine_block = next(b for b in blocks if "Program.parse" in b)
        # The block contains illustrative partial lines (result.explain
        # (...)); execute only up to the run()+tuples portion.
        lines = []
        for line in engine_block.splitlines():
            if line.startswith("result.explain") or line.startswith(
                "program.wardedness"
            ):
                continue
            lines.append(line)
        namespace = {}
        exec(compile("\n".join(lines), "README-engine", "exec"),
             namespace)
        assert namespace["result"].store.count("rel") >= 1

    def test_mentioned_files_exist(self):
        text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for relative in (
            "examples/quickstart.py",
            "examples/research_data_center.py",
            "examples/business_knowledge.py",
            "examples/reasoning_engine.py",
            "examples/file_exchange.py",
            "benchmarks/bench_fig7a_nulls_by_k.py",
            "DESIGN.md",
            "EXPERIMENTS.md",
        ):
            assert relative in text
            assert (REPO_ROOT / relative).exists(), relative


class TestDesignDoc:
    def test_every_inventory_module_exists(self):
        text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for match in re.findall(r"`(vadalog/[a-z_]+\.py)`", text):
            assert (REPO_ROOT / "src" / "repro" / match).exists(), match
        for match in re.findall(
            r"`((?:risk|anonymize|model|data|attack|baselines|business)"
            r"/[a-z_0-9]+\.py)`",
            text,
        ):
            assert (REPO_ROOT / "src" / "repro" / match).exists(), match


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc in (
            VadalogError,
            ParseError,
            SafetyError,
            StratificationError,
            WardednessError,
            EvaluationError,
            EGDViolationError,
            UnknownExternalError,
            SchemaError,
            CategorizationError,
            AnonymizationError,
            HierarchyError,
        ):
            assert issubclass(exc, ReproError)

    def test_engine_errors_under_vadalog_error(self):
        for exc in (
            ParseError,
            SafetyError,
            StratificationError,
            WardednessError,
            EvaluationError,
            EGDViolationError,
        ):
            assert issubclass(exc, VadalogError)

    def test_unknown_external_is_evaluation_error(self):
        assert issubclass(UnknownExternalError, EvaluationError)

    def test_parse_error_location_formatting(self):
        error = ParseError("boom", line=3, column=7)
        assert "line 3" in str(error) and "column 7" in str(error)
        bare = ParseError("boom")
        assert str(bare) == "boom"

    def test_egd_violation_carries_facts(self):
        error = EGDViolationError("clash", fact_a="a", fact_b="b")
        assert error.fact_a == "a" and error.fact_b == "b"
