"""Metamorphic properties of the SDC pipeline.

These tests never check absolute risk numbers — they check *relations*
between runs that must hold whatever the data:

* suppressing more cells never lowers k-anonymity under maybe-match
  semantics (nulls only ever widen groups);
* risk scores are row-permutation invariant (no measure may depend on
  storage order);
* re-anonymizing an already-safe dataset changes nothing (the cycle is
  idempotent at its fixpoint).
"""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import VadaSA
from repro.data import generate_dataset, inflation_growth_fragment
from repro.model.microdata import MicrodataDB
from repro.model.nulls import MAYBE_MATCH
from repro.risk.base import measure_by_name
from repro.risk.k_anonymity import KAnonymityRisk
from repro.vadalog.terms import LabelledNull


def _suppress_random_cells(db, rng, count, label_base=10_000):
    """A copy of ``db`` with ``count`` extra QI cells suppressed."""
    result = db.copy()
    cells = [
        (row, attribute)
        for row in range(len(db))
        for attribute in db.quasi_identifiers
        if not isinstance(db.rows[row][attribute], LabelledNull)
    ]
    rng.shuffle(cells)
    for offset, (row, attribute) in enumerate(cells[:count]):
        result.with_value(row, attribute, LabelledNull(label_base + offset))
    return result


def _permuted(db, permutation):
    return MicrodataDB(
        db.name, db.schema, [db.rows[i] for i in permutation]
    )


@pytest.fixture(scope="module")
def medium_db():
    return generate_dataset("R25A4U", scale=50, seed=23)


class TestSuppressionMonotonicity:
    @given(
        rng=st.randoms(use_true_random=False),
        extra=st.integers(min_value=1, max_value=12),
    )
    def test_more_suppression_never_lowers_frequencies(self, rng, extra):
        db = inflation_growth_fragment()
        measure = KAnonymityRisk(k=2)
        before = measure.frequencies(db, semantics=MAYBE_MATCH)
        more = _suppress_random_cells(db, rng, extra)
        after = measure.frequencies(more, semantics=MAYBE_MATCH)
        assert all(b >= a for a, b in zip(before, after))

    @given(
        rng=st.randoms(use_true_random=False),
        k=st.integers(min_value=2, max_value=5),
    )
    def test_more_suppression_never_adds_risky_tuples(self, rng, k):
        db = inflation_growth_fragment()
        measure = KAnonymityRisk(k=k)
        before = measure.assess(db, semantics=MAYBE_MATCH)
        more = _suppress_random_cells(db, rng, 6)
        after = measure.assess(more, semantics=MAYBE_MATCH)
        # Monotone per row: a safe tuple can never become risky.
        for row, (sb, sa) in enumerate(zip(before.scores, after.scores)):
            assert sa <= sb, f"row {row} became risky after suppression"

    def test_suppression_monotonicity_at_scale(self, medium_db):
        rng = random.Random(7)
        measure = KAnonymityRisk(k=3)
        before = measure.frequencies(medium_db, semantics=MAYBE_MATCH)
        more = _suppress_random_cells(medium_db, rng, 40)
        after = measure.frequencies(more, semantics=MAYBE_MATCH)
        assert all(b >= a for a, b in zip(before, after))


class TestPermutationInvariance:
    @pytest.mark.parametrize(
        "measure_name", ["k-anonymity", "reidentification", "individual"]
    )
    def test_scores_follow_the_rows(self, medium_db, measure_name):
        rng = random.Random(11)
        permutation = list(range(len(medium_db)))
        rng.shuffle(permutation)
        shuffled = _permuted(medium_db, permutation)
        measure = measure_by_name(measure_name)
        original = measure.assess(medium_db, semantics=MAYBE_MATCH)
        permuted = measure.assess(shuffled, semantics=MAYBE_MATCH)
        for new_index, old_index in enumerate(permutation):
            assert permuted.scores[new_index] == pytest.approx(
                original.scores[old_index]
            ), (
                f"{measure_name} depends on row order: row {old_index} "
                f"scored differently at position {new_index}"
            )

    @given(rng=st.randoms(use_true_random=False))
    def test_k_anonymity_invariance_property(self, rng):
        db = inflation_growth_fragment()
        permutation = list(range(len(db)))
        rng.shuffle(permutation)
        shuffled = _permuted(db, permutation)
        measure = KAnonymityRisk(k=2)
        original = measure.assess(db, semantics=MAYBE_MATCH)
        permuted = measure.assess(shuffled, semantics=MAYBE_MATCH)
        assert [
            original.scores[old] for old in permutation
        ] == permuted.scores


class TestAnonymizationIdempotence:
    def test_reanonymizing_a_safe_dataset_is_a_noop(self):
        vada = VadaSA()
        db = inflation_growth_fragment()
        vada.register(db)
        first = vada.anonymize(db.name, measure="k-anonymity", k=2)
        assert first.converged

        again = MicrodataDB("already_safe", db.schema, first.db.rows)
        vada.register(again)
        second = vada.anonymize("already_safe", measure="k-anonymity", k=2)
        assert second.converged
        assert second.nulls_injected == 0
        assert second.steps == []
        assert second.db.rows == first.db.rows

    def test_reanonymizing_at_scale(self, medium_db):
        vada = VadaSA()
        vada.register(medium_db)
        first = vada.anonymize(medium_db.name, measure="k-anonymity", k=2)
        assert first.converged

        again = MicrodataDB(
            "already_safe_scale", medium_db.schema, first.db.rows
        )
        vada.register(again)
        second = vada.anonymize(
            "already_safe_scale", measure="k-anonymity", k=2
        )
        assert second.nulls_injected == 0
        assert second.steps == []
