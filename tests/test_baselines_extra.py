"""Mondrian and record-swapping baseline tests."""

import pytest

from repro.anonymize import LocalSuppression, anonymize
from repro.attack import LinkageAttacker, evaluate_attack, ground_truth
from repro.baselines import mondrian_k_anonymity, random_swap
from repro.data import (
    generate_dataset,
    generate_oracle,
    survey_hierarchy,
)
from repro.errors import AnonymizationError
from repro.model import STANDARD, DomainHierarchy
from repro.risk import KAnonymityRisk


class TestMondrian:
    def test_reaches_k_anonymity(self, small_u):
        result = mondrian_k_anonymity(
            small_u, k=2, hierarchy=survey_hierarchy()
        )
        counts = STANDARD.match_counts(result.db)
        assert min(counts) >= 2

    def test_higher_k_means_bigger_partitions(self, small_u):
        loose = mondrian_k_anonymity(small_u, k=2)
        strict = mondrian_k_anonymity(small_u, k=5)
        assert strict.average_partition_size >= loose.average_partition_size
        strict_counts = STANDARD.match_counts(strict.db)
        assert min(strict_counts) >= 5

    def test_without_hierarchy_uses_span_values(self, cities_db):
        result = mondrian_k_anonymity(cities_db, k=2)
        counts = STANDARD.match_counts(result.db)
        assert min(counts) >= 2
        spans = [
            value
            for row in result.db.rows
            for value in row.values()
            if isinstance(value, str) and "|" in value
        ]
        assert spans  # heterogeneous partitions got span categories

    def test_with_hierarchy_prefers_ancestors(self, cities_db):
        hierarchy = DomainHierarchy.italian_geography()
        result = mondrian_k_anonymity(cities_db, k=2,
                                      hierarchy=hierarchy)
        areas = {row["Area"] for row in result.db.rows}
        # Milano/Torino roll up to "North" rather than a span value.
        assert "North" in areas or "Milano|Torino" not in areas

    def test_original_untouched(self, cities_db):
        snapshot = [dict(row) for row in cities_db.rows]
        mondrian_k_anonymity(cities_db, k=2)
        assert cities_db.rows == snapshot

    def test_generalizes_globally_more_than_vada_sa(self, small_u):
        """The uniform-partition baseline touches far more cells than
        the tuple-local cycle — the paper's minimality argument."""
        mondrian = mondrian_k_anonymity(
            small_u, k=2, hierarchy=survey_hierarchy()
        )
        cycle = anonymize(small_u, KAnonymityRisk(k=2),
                          LocalSuppression())
        touched_by_cycle = cycle.nulls_injected + cycle.recoded_cells
        assert mondrian.generalized_cells > touched_by_cycle

    def test_invalid_k(self, cities_db):
        with pytest.raises(AnonymizationError):
            mondrian_k_anonymity(cities_db, k=0)

    def test_too_small_dataset(self, cities_db):
        with pytest.raises(AnonymizationError):
            mondrian_k_anonymity(cities_db, k=100)


class TestSwapping:
    def test_marginal_preserved_exactly(self, small_u):
        from collections import Counter

        result = random_swap(small_u, "Sector", fraction=0.3, seed=5)
        before = Counter(row["Sector"] for row in small_u.rows)
        after = Counter(row["Sector"] for row in result.db.rows)
        assert before == after

    def test_some_rows_swapped(self, small_u):
        result = random_swap(small_u, "Sector", fraction=0.3, seed=5)
        assert result.swapped_rows > 0
        differing = sum(
            1
            for a, b in zip(small_u.rows, result.db.rows)
            if a["Sector"] != b["Sector"]
        )
        assert differing == result.swapped_rows

    def test_stratified_swap_preserves_joint_with_strata(self, small_u):
        result = random_swap(
            small_u,
            "Sector",
            fraction=0.5,
            seed=6,
            stratify_by=["Area"],
        )
        from collections import Counter

        before = Counter(
            (row["Area"], row["Sector"]) for row in small_u.rows
        )
        after = Counter(
            (row["Area"], row["Sector"]) for row in result.db.rows
        )
        # Swapping within Area strata preserves the Area x Sector joint.
        assert before == after

    def test_deterministic(self, small_u):
        a = random_swap(small_u, "Sector", fraction=0.2, seed=9)
        b = random_swap(small_u, "Sector", fraction=0.2, seed=9)
        assert a.db.rows == b.db.rows

    def test_invalid_arguments(self, small_u):
        with pytest.raises(AnonymizationError):
            random_swap(small_u, "Nope")
        with pytest.raises(AnonymizationError):
            random_swap(small_u, "Sector", fraction=0.0)

    def test_swapping_misdirects_the_attacker(self):
        """Swapped records may still be 'linked' — but to the wrong
        identity: correctness of re-identification drops."""
        db = generate_dataset("R6A4U", scale=10, seed=21)
        oracle = generate_oracle(db, max_population=60_000)
        truth = ground_truth(db, oracle)
        risky = KAnonymityRisk(k=2).assess(db).risky_indices(0.5)
        rows = [r for r in risky if r in truth]
        attacker = LinkageAttacker(oracle)
        before = evaluate_attack(attacker, db, truth, rows=rows)
        swapped = random_swap(db, "Sector", fraction=0.9, seed=4).db
        swapped = random_swap(swapped, "Area", fraction=0.9, seed=5).db
        after = evaluate_attack(attacker, swapped, truth, rows=rows)
        assert after.re_identified <= before.re_identified
