"""Opt-in paper-scale checks.

These run the headline anonymization setting at the paper's actual
dataset sizes (25k-100k rows) and are skipped unless
``REPRO_PAPER_SCALE=1`` is set — they take minutes, not seconds.

    REPRO_PAPER_SCALE=1 pytest tests/test_paper_scale.py -v
"""

import os

import pytest

from repro.anonymize import AnonymizationCycle, LocalSuppression
from repro.data import generate_dataset
from repro.risk import KAnonymityRisk

paper_scale = pytest.mark.skipif(
    os.environ.get("REPRO_PAPER_SCALE") != "1",
    reason="set REPRO_PAPER_SCALE=1 to run paper-size datasets",
)


@paper_scale
def test_r25a4w_full_size_nulls_order_of_magnitude():
    """Paper: an average real-world 25k dataset needs <50 nulls at
    the k=5 tolerance; tens of nulls at k=2."""
    db = generate_dataset("R25A4W", scale=1)
    for k, bound in ((2, 120), (5, 250)):
        result = AnonymizationCycle(
            KAnonymityRisk(k=k), LocalSuppression(), threshold=0.5
        ).run(db)
        assert result.converged
        assert result.nulls_injected < bound


@paper_scale
def test_r100a4u_scales():
    """The 100k-row unbalanced dataset anonymizes in one sitting."""
    db = generate_dataset("R100A4U", scale=1)
    result = AnonymizationCycle(
        KAnonymityRisk(k=2), LocalSuppression(), threshold=0.5
    ).run(db)
    assert result.converged
