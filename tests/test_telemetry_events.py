"""Unified event stream tests: the EventLog envelope and summary fold,
file replay (the on-disk stream must tell the same story the live log
folded), the instrumented emitters (chase derivations, anonymization
decisions, framework lifecycle) and the CLI export flags."""

import json

import pytest

from repro import telemetry
from repro.cli import main as cli_main
from repro.data import generate_dataset
from repro.framework import VadaSA
from repro.telemetry import EventLog, EventSpanSink
from repro.telemetry.events import (
    EVENT_SCHEMA_VERSION,
    fold,
    new_summary,
    read_events,
    replay,
)
from repro.vadalog import Program
from repro.vadalog.terms import LabelledNull


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


TRANSITIVE = """
edge(a, b). edge(b, c). edge(c, d).
@label("base").
path(X, Y) :- edge(X, Y).
@label("step").
path(X, Z) :- path(X, Y), edge(Y, Z).
@label("mint").
manager(X, M) :- edge(X, _).
"""


class TestEventLog:
    def test_envelope_fields(self):
        log = EventLog(clock=lambda: 12.5)
        event = log.emit("decision", kind="suppress", row=3)
        assert event == {
            "v": EVENT_SCHEMA_VERSION,
            "seq": 1,
            "ts": 12.5,
            "type": "decision",
            "payload": {"kind": "suppress", "row": 3},
        }
        assert len(log) == 1

    def test_sequence_increments(self):
        log = EventLog()
        seqs = [log.emit("lifecycle", stage="s")["seq"] for _ in range(5)]
        assert seqs == [1, 2, 3, 4, 5]

    def test_payload_normalized_to_json_scalars(self):
        log = EventLog()
        null = LabelledNull(7)
        event = log.emit("decision", kind="suppress", new=null,
                         derived=(null, 1), nested={"v": null})
        payload = event["payload"]
        assert payload["new"] == str(null)
        assert payload["derived"] == [str(null), 1]
        assert payload["nested"] == {"v": str(null)}
        # The whole envelope survives a JSON round-trip unchanged.
        assert json.loads(json.dumps(event)) == event

    def test_summary_counts_by_type_and_kind(self):
        log = EventLog()
        log.emit("decision", kind="suppress", method="suppression")
        log.emit("decision", kind="suppress", method="suppression")
        log.emit("decision", kind="derive", rule="step")
        log.emit("lifecycle", stage="share")
        summary = log.summary()
        assert summary["events"] == 4
        assert summary["by_type"] == {"decision": 3, "lifecycle": 1}
        assert summary["decisions"]["by_kind"] == {
            "suppress": 2, "derive": 1,
        }
        assert summary["decisions"]["by_rule"] == {
            "suppression": 2, "step": 1,
        }
        assert summary["lifecycle"] == {"share": 1}

    def test_summary_is_a_copy(self):
        log = EventLog()
        log.emit("lifecycle", stage="assess")
        summary = log.summary()
        summary["lifecycle"]["assess"] = 99
        assert log.summary()["lifecycle"]["assess"] == 1

    def test_metrics_event_last_snapshot_wins(self):
        log = EventLog()
        log.emit_metrics({"counters": {"a": 1}})
        log.emit_metrics({"counters": {"a": 5, "b": 2}})
        assert log.summary()["counters"] == {"a": 5, "b": 2}

    def test_tail_bounded_and_filterable(self):
        log = EventLog(keep=3)
        for i in range(5):
            log.emit("decision", kind="derive", i=i)
        log.emit("lifecycle", stage="share")
        tail = log.tail()
        assert len(tail) == 3
        assert [e["seq"] for e in tail] == [4, 5, 6]
        assert [e["type"] for e in log.tail("lifecycle")] == ["lifecycle"]
        # Summary still covers everything, not just the tail.
        assert log.summary()["events"] == 6

    def test_emit_after_close_is_noop(self):
        log = EventLog()
        log.emit("lifecycle", stage="assess")
        log.close()
        assert log.emit("lifecycle", stage="share") is None
        assert log.summary()["events"] == 1
        log.close()  # idempotent

    def test_span_sink_forwards(self):
        log = EventLog()
        EventSpanSink(log).emit({"name": "chase.run", "elapsed_ns": 10})
        summary = log.summary()
        assert summary["spans"] == {
            "total": 1, "by_name": {"chase.run": 1},
        }


class TestFold:
    def test_fold_matches_incremental_summary(self):
        log = EventLog()
        events = [
            log.emit("decision", kind="recode", method="recoding"),
            log.emit("span", name="cycle.iteration"),
            log.emit("metrics", counters={"x": 1}),
        ]
        folded = new_summary()
        for event in events:
            fold(folded, event)
        assert folded == log.summary()

    def test_unknown_type_counted_not_crashed(self):
        summary = fold(new_summary(), {"type": "future-thing",
                                       "payload": {}})
        assert summary["by_type"] == {"future-thing": 1}
        assert summary["events"] == 1

    def test_plan_fallback_folds_by_rule(self):
        summary = new_summary()
        for rule in ("r1", "r1", "r2"):
            fold(summary, {
                "type": "plan_fallback",
                "payload": {"rule": rule, "error": "EvaluationError"},
            })
        assert summary["plan_fallbacks"] == {
            "total": 3, "by_rule": {"r1": 2, "r2": 1},
        }

    def test_plan_fallback_section_tolerates_old_summaries(self):
        # A summary dict from before the section existed (e.g. built
        # by an older fold and carried forward) must not crash.
        summary = new_summary()
        del summary["plan_fallbacks"]
        fold(summary, {"type": "plan_fallback",
                       "payload": {"rule": "r"}})
        assert summary["plan_fallbacks"]["total"] == 1


class TestPlanFallbackEvents:
    # Legacy never evaluates Q for X=2 (the join on f filters it out),
    # so the planned path's pushed-down division hits 0 mid-join and
    # must fall back — the scenario the audit event exists for.
    # Mutual recursion keeps both rules in one stratum, so e(2, 0)
    # arrives as a *delta* fact; the delta plan's pushed-down division
    # then raises mid-join and the engine falls back to legacy
    # enumeration (which joins f first and never evaluates 2/0).
    FALLBACK_PROGRAM = (
        'f(1). e(1, 1). seed(2).\n@label("div").\n'
        'out(Q) :- e(X, Y), Q = X / Y, f(X).\n'
        'e(X, 0) :- out(Q), seed(X).\n@output("out").\n'
    )

    # use_columnar=False below: the batched executor *masks* the
    # raising row instead (it can prove legacy never finishes it —
    # see test_columnar.py); the row path's fallback event machinery
    # stays reachable through the escape hatch.

    def test_chase_emits_plan_fallback_event(self):
        telemetry.enable(events=True)
        Program.parse(self.FALLBACK_PROGRAM).run(
            preflight=False, use_columnar=False
        )
        log = telemetry.events()
        fallbacks = log.tail("plan_fallback")
        assert fallbacks, "fallback run emitted no plan_fallback event"
        payload = fallbacks[0]["payload"]
        assert payload["rule"] == "div"
        assert payload["error"] == "EvaluationError"
        assert "reason" in payload
        assert {"stratum", "round"} <= set(payload)
        assert log.summary()["plan_fallbacks"]["by_rule"]["div"] >= 1

    def test_plan_fallback_events_replay_from_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        telemetry.enable(events_path=str(path))
        log = telemetry.events()
        Program.parse(self.FALLBACK_PROGRAM).run(
            preflight=False, use_columnar=False
        )
        telemetry.disable()
        summary = replay(str(path))
        assert summary == log.summary()
        assert summary["plan_fallbacks"]["total"] >= 1
        assert summary["plan_fallbacks"]["by_rule"] == {
            "div": summary["plan_fallbacks"]["total"],
        }

    def test_no_fallback_no_event(self):
        telemetry.enable(events=True)
        Program.parse(TRANSITIVE).run()
        log = telemetry.events()
        assert log.tail("plan_fallback") == []
        assert log.summary()["plan_fallbacks"]["total"] == 0


class TestFileReplay:
    def write_some(self, path):
        log = EventLog(path=str(path))
        log.emit("decision", kind="suppress", method="suppression",
                 row=0, attribute="ZIP")
        log.emit("span", name="cycle.run", elapsed_ns=123)
        log.emit("lifecycle", stage="anonymize", iterations=2)
        log.emit_metrics({"counters": {"cycle.runs": 1}})
        log.close()
        return log

    def test_replay_equals_live_summary(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = self.write_some(path)
        assert replay(str(path)) == log.summary()

    def test_read_events_validates_envelope(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"no_type": 1}\n')
        with pytest.raises(ValueError, match="not an event envelope"):
            list(read_events(str(path)))

    def test_read_events_rejects_garbage_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            list(read_events(str(path)))

    def test_read_events_rejects_wrong_schema_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(
            {"v": 999, "seq": 1, "ts": 0, "type": "span", "payload": {}}
        ) + "\n")
        with pytest.raises(ValueError, match="schema version 999"):
            list(read_events(str(path)))

    def test_replay_detects_sequence_gap(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self.write_some(path)
        lines = path.read_text().splitlines()
        del lines[1]  # drop seq 2: a truncated/corrupted stream
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="sequence gap"):
            replay(str(path))
        # Non-strict replay still folds what is there.
        assert replay(str(path), strict_sequence=False)["events"] == 3

    def test_replay_detects_truncated_head(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self.write_some(path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[1:]) + "\n")
        with pytest.raises(ValueError, match="sequence gap"):
            replay(str(path))

    def test_replay_allows_appended_sessions(self, tmp_path):
        """The file is opened in append mode, so two runs may share it;
        a seq restarting at 1 is a new session, not a gap."""
        path = tmp_path / "events.jsonl"
        self.write_some(path)
        second = EventLog(path=str(path))
        second.emit("lifecycle", stage="share")
        second.close()
        summary = replay(str(path))
        assert summary["events"] == 5
        assert summary["lifecycle"] == {"anonymize": 1, "share": 1}


class TestInstrumentedEmitters:
    def test_chase_emits_derive_and_invent_null_events(self):
        telemetry.enable(events=True)
        Program.parse(TRANSITIVE).run()
        log = telemetry.events()
        derives = [e for e in log.tail("decision")
                   if e["payload"]["kind"] == "derive"]
        assert derives, "chase produced no derive events"
        sample = derives[0]["payload"]
        assert {"rule", "stratum", "round", "facts"} <= set(sample)
        assert {d["payload"]["rule"] for d in derives} >= {"base", "step"}
        mints = [e for e in log.tail("decision")
                 if e["payload"]["kind"] == "invent_null"]
        assert mints and mints[0]["payload"]["rule"] == "mint"
        assert mints[0]["payload"]["nulls"] >= 1

    def test_cycle_emits_suppress_decisions(self):
        telemetry.enable(events=True)
        db = generate_dataset("R6A4U", seed=20210323, scale=25)
        vada = VadaSA()
        vada.register(db)
        vada.anonymize(db.name, measure="k-anonymity", k=2)
        log = telemetry.events()
        suppressions = [e for e in log.tail("decision")
                        if e["payload"]["kind"] == "suppress"]
        assert suppressions, "anonymization produced no suppress events"
        payload = suppressions[0]["payload"]
        assert payload["db"] == db.name
        assert isinstance(payload["row"], int)
        assert payload["attribute"] in db.schema.attributes
        assert payload["method"] and payload["measure"]
        assert "reason" in payload
        stages = log.summary()["lifecycle"]
        assert stages.get("anonymize") == 1

    def test_full_exchange_replays_identically(self, tmp_path):
        """Acceptance criterion: the event JSONL of a full VadaSA
        exchange replays into a summary identical to the live one."""
        path = tmp_path / "events.jsonl"
        telemetry.enable(events_path=str(path))
        log = telemetry.events()
        db = generate_dataset("R6A4U", seed=20210323, scale=25)
        vada = VadaSA()
        vada.register(db)
        vada.assess(db.name, measure="k-anonymity", k=2)
        vada.share(db.name, measure="k-anonymity", k=2)
        telemetry.disable()  # appends the final metrics snapshot
        live = log.summary()
        assert replay(str(path)) == live
        assert live["lifecycle"] == {"assess": 1, "anonymize": 1,
                                     "share": 1}
        assert live["decisions"]["by_kind"].get("suppress", 0) > 0
        assert live["counters"].get("cycle.runs", 0) > 0
        assert live["spans"]["total"] > 0

    def test_disable_detaches_event_log(self):
        telemetry.enable(events=True)
        log = telemetry.events()
        assert log is not None
        telemetry.disable()
        assert telemetry.events() is None
        # The tracer no longer carries the sink for the closed log.
        sinks = [s for s in telemetry.tracer().sinks
                 if isinstance(s, EventSpanSink)]
        assert not sinks

    def test_disabled_run_emits_nothing(self):
        log = EventLog()
        telemetry.state.events = log  # dormant: enabled stays False
        try:
            Program.parse(TRANSITIVE).run()
        finally:
            telemetry.state.events = None
        assert len(log) == 0


class TestCliExportFlags:
    def generate(self, tmp_path):
        out = tmp_path / "data.csv"
        cli_main(["generate", "R6A4U", "-o", str(out), "--scale", "20",
                  "--seed", "20210323"])
        return out

    def test_events_prom_and_rule_profile_flags(self, tmp_path, capsys):
        out = self.generate(tmp_path)
        events_path = tmp_path / "events.jsonl"
        prom_path = tmp_path / "metrics.prom"
        exit_code = cli_main([
            "--events-out", str(events_path),
            "--prom-out", str(prom_path),
            "--rule-profile",
            "anonymize", str(out), "--measure", "k-anonymity",
            "--k", "2", "-o", str(tmp_path / "anon.csv"),
        ])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "rule cost profile" in captured.err
        assert f"events written to {events_path}" in captured.err
        assert f"metrics written to {prom_path}" in captured.err
        summary = replay(str(events_path))
        assert summary["decisions"]["total"] > 0
        text = prom_path.read_text()
        assert telemetry.validate_prometheus_text(text) > 0

    def test_events_out_unwritable_path_is_reported(self, tmp_path,
                                                    capsys):
        out = self.generate(tmp_path)
        exit_code = cli_main([
            "--events-out", str(tmp_path / "nope" / "events.jsonl"),
            "assess", str(out), "--measure", "k-anonymity", "--k", "2",
        ])
        assert exit_code == 2
        assert "cannot open telemetry output" in capsys.readouterr().err
