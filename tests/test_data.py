"""Dataset generator tests: Figure 6 codes, W/U/V risk ordering,
survey fixtures, oracle consistency."""

import pytest

from repro.data import (
    FIGURE6_GRID,
    city_fragment,
    generate_dataset,
    generate_oracle,
    inflation_growth_fragment,
    parse_spec,
    profile_by_code,
    skewed_probabilities,
)
from repro.errors import ReproError
from repro.risk import KAnonymityRisk


class TestSpecParsing:
    def test_parse_codes(self):
        spec = parse_spec("R25A4W")
        assert spec.rows == 25_000
        assert spec.attributes == 4
        assert spec.profile.code == "W"
        assert spec.code == "R25A4W"

    def test_case_insensitive(self):
        assert parse_spec("r100a4u").rows == 100_000

    def test_bad_code(self):
        with pytest.raises(ReproError):
            parse_spec("X25A4W")

    def test_unknown_distribution(self):
        with pytest.raises(ReproError):
            profile_by_code("Z")

    def test_figure6_grid_parses(self):
        for code, _tag in FIGURE6_GRID:
            spec = parse_spec(code)
            assert spec.rows >= 6000

    def test_skew_normalizes(self):
        probabilities = skewed_probabilities([0.5, 0.3, 0.2], 2.0)
        assert sum(probabilities) == pytest.approx(1.0)
        assert probabilities[0] > 0.5  # skew concentrates


class TestGeneration:
    def test_row_count_and_scale(self):
        db = generate_dataset("R6A4U", scale=10)
        assert len(db) == 600
        assert len(db.quasi_identifiers) == 4

    def test_attribute_count(self):
        db = generate_dataset("R50A9W", scale=100)
        assert len(db.quasi_identifiers) == 9

    def test_deterministic_by_seed(self):
        a = generate_dataset("R6A4U", scale=10, seed=5)
        b = generate_dataset("R6A4U", scale=10, seed=5)
        assert a.rows == b.rows

    def test_different_seeds_differ(self):
        a = generate_dataset("R6A4U", scale=10, seed=5)
        b = generate_dataset("R6A4U", scale=10, seed=6)
        assert a.rows != b.rows

    def test_weights_positive(self, small_w):
        assert all(w >= 1.0 for w in small_w.weights())

    def test_unbalanced_profiles_have_more_risky_tuples(self):
        """The core W < U < V property driving Figures 7a-7d."""
        measure = KAnonymityRisk(k=2)
        risky = {}
        for code in ("R25A4W", "R25A4U", "R25A4V"):
            db = generate_dataset(code, scale=10, seed=42)
            risky[code] = len(measure.assess(db).risky_indices(0.5))
        assert risky["R25A4W"] < risky["R25A4U"] < risky["R25A4V"]

    def test_invalid_scale(self):
        with pytest.raises(ReproError):
            generate_dataset("R6A4U", scale=0)

    def test_too_many_attributes(self):
        from repro.data.generator import DatasetSpec
        from repro.data.distributions import profile_by_code

        spec = DatasetSpec(1000, 99, profile_by_code("W"))
        with pytest.raises(ReproError):
            generate_dataset(spec)


class TestSurveyFixtures:
    def test_figure1_shape(self, ig_db):
        assert len(ig_db) == 20
        assert ig_db.schema.identifiers == ["Id"]
        assert len(ig_db.schema.quasi_identifiers) == 5

    def test_figure1_weights(self, ig_db):
        assert ig_db.weight_of(0) == 230
        assert ig_db.weight_of(19) == 90

    def test_figure5a_shape(self, cities_db):
        assert len(cities_db) == 7
        assert cities_db.weight_attribute is None

    def test_named_fragment(self):
        db = inflation_growth_fragment(name="custom")
        assert db.name == "custom"


class TestOracle:
    def test_cohort_sizes_track_weights(self, small_w, small_oracle):
        # The oracle frequency of a row's QI combination approximates
        # its sampling weight (Section 2.2's |sigma(M) join O| = W).
        checked = 0
        for index in range(0, len(small_w), 25):
            values = {
                a: small_w.rows[index][a]
                for a in small_w.quasi_identifiers
            }
            frequency = small_oracle.frequency(values)
            weight = small_w.weight_of(index)
            assert frequency >= 1
            assert frequency <= weight * 3 + 5
            checked += 1
        assert checked > 5

    def test_identities_unique(self, small_oracle):
        identities = [row["Identity"] for row in small_oracle.rows]
        assert len(identities) == len(set(identities))

    def test_max_population_cap(self, small_w):
        capped = generate_oracle(small_w, max_population=500)
        assert len(capped) <= 500
