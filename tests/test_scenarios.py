"""Scenario-generator and household-risk tests (Section 2's other RDC
microdata DBs; Section 4.4's household grouping)."""

import pytest

from repro.anonymize import LocalSuppression, RecodeThenSuppress, anonymize
from repro.business import anonymize_households, household_clusters
from repro.data import (
    household_hierarchy,
    household_survey,
    housing_hierarchy,
    housing_market,
)
from repro.errors import ReproError
from repro.risk import KAnonymityRisk
from repro.vadalog.terms import LabelledNull


class TestHouseholdSurvey:
    def test_shape(self):
        db = household_survey(households=60, seed=1)
        assert db.schema.identifiers == ["PersonId"]
        assert "HouseholdId" in db.schema.non_identifying
        assert len(db.quasi_identifiers) == 4
        assert len(db) >= 60  # at least one person per household

    def test_households_share_city_and_income(self):
        db = household_survey(households=40, seed=2)
        by_household = {}
        for row in db.rows:
            by_household.setdefault(row["HouseholdId"], []).append(row)
        for members in by_household.values():
            assert len({m["City"] for m in members}) == 1
            assert len({m["IncomeBand"] for m in members}) == 1

    def test_deterministic(self):
        a = household_survey(households=20, seed=5)
        b = household_survey(households=20, seed=5)
        assert a.rows == b.rows

    def test_hierarchy_covers_cities(self):
        db = household_survey(households=30, seed=3)
        hierarchy = household_hierarchy()
        for row in db.rows:
            assert hierarchy.can_generalize("City", row["City"])

    def test_recoding_cycle_works(self):
        db = household_survey(households=120, seed=4)
        result = anonymize(
            db,
            KAnonymityRisk(k=2),
            RecodeThenSuppress(household_hierarchy()),
        )
        assert result.converged


class TestHouseholdRisk:
    def test_clusters_group_by_household(self):
        db = household_survey(households=30, seed=6)
        clusters = household_clusters(db, "HouseholdId")
        for cluster in clusters:
            households = {
                db.rows[i]["HouseholdId"] for i in cluster
            }
            assert len(households) == 1
            assert len(cluster) >= 2

    def test_minimum_size_filter(self):
        db = household_survey(households=30, seed=6)
        big = household_clusters(db, "HouseholdId", minimum_size=4)
        assert all(len(c) >= 4 for c in big)

    def test_unknown_attribute(self):
        db = household_survey(households=5, seed=6)
        with pytest.raises(ReproError):
            household_clusters(db, "Nope")

    def test_suppressed_household_not_clustered(self):
        db = household_survey(households=10, seed=7)
        target = db.rows[0]["HouseholdId"]
        affected = [
            i for i, row in enumerate(db.rows)
            if row["HouseholdId"] == target
        ]
        for index in affected:
            db.with_value(index, "HouseholdId", LabelledNull(index + 1))
        clusters = household_clusters(db, "HouseholdId")
        clustered = set().union(*clusters) if clusters else set()
        assert not (clustered & set(affected))

    def test_household_cycle_needs_more_suppression(self):
        db = household_survey(households=150, seed=8)
        plain = anonymize(db, KAnonymityRisk(k=2), LocalSuppression())
        grouped = anonymize_households(
            db, "HouseholdId", KAnonymityRisk(k=2), LocalSuppression()
        )
        assert grouped.converged
        assert grouped.nulls_injected >= plain.nulls_injected


class TestHousingMarket:
    def test_shape(self):
        db = housing_market(transactions=100, seed=1)
        assert len(db) == 100
        assert len(db.quasi_identifiers) == 5

    def test_recoding_on_geography(self):
        db = housing_market(transactions=300, seed=2)
        result = anonymize(
            db,
            KAnonymityRisk(k=2),
            RecodeThenSuppress(housing_hierarchy()),
        )
        assert result.converged
        # Some geography should have been rolled up rather than nulled.
        assert result.recoded_cells > 0

    def test_suppression_converges(self):
        db = housing_market(transactions=200, seed=3)
        result = anonymize(db, KAnonymityRisk(k=2), LocalSuppression())
        assert result.converged
