"""Attribute-categorization tests (Algorithm 1) and similarity
functions."""

import pytest

from repro.categorize import (
    AttributeCategorizer,
    combined,
    exact,
    jaccard,
    levenshtein,
    levenshtein_distance,
    normalized_exact,
    similarity_by_name,
)
from repro.data import figure4_categories, inflation_growth_fragment
from repro.errors import CategorizationError
from repro.model import AttributeCategory, ExperienceBase, MetadataDictionary


class TestSimilarity:
    def test_exact(self):
        assert exact("Area", "Area") == 1.0
        assert exact("Area", "area") == 0.0

    def test_normalized(self):
        assert normalized_exact("Residential Rev.", "residential rev") == 1.0
        assert normalized_exact("Area", "Sector") == 0.0

    def test_jaccard_token_overlap(self):
        assert jaccard("Export Rev.", "Export Revenue") == pytest.approx(
            1 / 3
        )
        assert jaccard("Area", "Area") == 1.0
        assert jaccard("", "Area") == 0.0

    def test_levenshtein_distance(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("same", "same") == 0

    def test_levenshtein_similarity_bounds(self):
        assert 0.0 <= levenshtein("Area", "Sector") <= 1.0
        assert levenshtein("Area", "area") == 1.0

    def test_combined_only_certain_on_exact(self):
        assert combined("Area", "area") == 1.0
        assert combined("Area", "Sector") < 1.0

    def test_lookup(self):
        assert similarity_by_name("jaccard") is jaccard
        with pytest.raises(ValueError):
            similarity_by_name("cosine")


class TestCategorizer:
    def experience(self):
        return ExperienceBase(
            {
                "Id": AttributeCategory.IDENTIFIER,
                "Area": AttributeCategory.QUASI_IDENTIFIER,
                "Weight": AttributeCategory.WEIGHT,
            }
        )

    def test_exact_borrowing(self):
        categorizer = AttributeCategorizer(self.experience())
        result = categorizer.categorize(["Area", "Id"])
        assert result.assigned["Area"] is AttributeCategory.QUASI_IDENTIFIER
        assert result.assigned["Id"] is AttributeCategory.IDENTIFIER
        assert result.is_complete

    def test_similar_name_borrowing(self):
        categorizer = AttributeCategorizer(self.experience())
        result = categorizer.categorize(["area", "Sampling Weight"])
        assert result.assigned["area"] is AttributeCategory.QUASI_IDENTIFIER

    def test_unknown_attribute_pending(self):
        categorizer = AttributeCategorizer(self.experience())
        result = categorizer.categorize(["CompletelyNovel42"])
        assert result.pending == ["CompletelyNovel42"]
        assert not result.is_complete

    def test_conflict_surfaced_for_human(self):
        base = ExperienceBase(
            {
                "Rev": AttributeCategory.QUASI_IDENTIFIER,
                "rev": AttributeCategory.NON_IDENTIFYING,
            }
        )
        categorizer = AttributeCategorizer(base, similarity="normalized")
        result = categorizer.categorize(["REV"])
        assert len(result.conflicts) == 1
        assert result.conflicts[0].attribute == "REV"

    def test_manual_resolution_consolidates(self):
        categorizer = AttributeCategorizer(self.experience())
        result = categorizer.categorize(["Mystery"])
        categorizer.resolve(
            result, "Mystery", AttributeCategory.NON_IDENTIFYING
        )
        assert result.is_complete
        # Rule 3: the decision entered the experience base...
        follow_up = categorizer.categorize(["Mystery"])
        assert (
            follow_up.assigned["Mystery"]
            is AttributeCategory.NON_IDENTIFYING
        )

    def test_consolidation_helps_within_one_run(self):
        # "mystery_value" is too far from anything known, but once
        # "MysteryValue" is (hypothetically) known it would resolve;
        # here we check recursive passes: an attribute similar to an
        # attribute categorized in the same run gets its category.
        base = ExperienceBase({"Area": AttributeCategory.QUASI_IDENTIFIER})
        categorizer = AttributeCategorizer(
            base, similarity="levenshtein", threshold=0.74
        )
        result = categorizer.categorize(["Areas", "Areass"])
        # "Areas" ~ "Area" (0.8); "Areass" ~ "Area" is 4/6 = 0.67 <
        # threshold, but "Areass" ~ "Areas" is 5/6 = 0.83 once
        # consolidated.
        assert result.assigned["Areas"] is AttributeCategory.QUASI_IDENTIFIER
        assert result.assigned["Areass"] is (
            AttributeCategory.QUASI_IDENTIFIER
        )

    def test_no_consolidation_switch(self):
        base = ExperienceBase({"Area": AttributeCategory.QUASI_IDENTIFIER})
        categorizer = AttributeCategorizer(
            base, similarity="levenshtein", threshold=0.74,
            consolidate=False,
        )
        result = categorizer.categorize(["Areas", "Areass"])
        assert "Areass" in result.pending

    def test_invalid_threshold(self):
        with pytest.raises(CategorizationError):
            AttributeCategorizer(threshold=0.0)

    def test_figure4_metadata_dictionary(self):
        """Categorize the I&G attributes with the banking defaults and
        check against the Figure 4 Category table (where it is
        self-consistent with the Section 2.2 text)."""
        dictionary = MetadataDictionary()
        db = inflation_growth_fragment()
        dictionary.register(
            db.name,
            [(a, db.schema.descriptions.get(a, "")) for a in
             db.schema.attributes],
        )
        categorizer = AttributeCategorizer(
            ExperienceBase.banking_defaults()
        )
        result = categorizer.categorize_dictionary(dictionary, db.name)
        assert result.is_complete
        figure4 = figure4_categories()
        for attribute in ["Id", "Area", "Sector", "Employees", "Weight"]:
            assert (
                dictionary.category(db.name, attribute)
                is figure4[attribute]
            )

    def test_evidence_explanation(self):
        categorizer = AttributeCategorizer(self.experience())
        result = categorizer.categorize(["Area"])
        text = result.explain("Area")
        assert "Quasi-identifier" in text
