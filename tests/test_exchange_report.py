"""VadaSA.exchange_report tests."""

import pytest

from repro import VadaSA
from repro.anonymize import LocalSuppression
from repro.data import city_fragment


class TestExchangeReport:
    def test_blocked_before_anonymization(self, cities_db):
        vada = VadaSA()
        vada.register(cities_db)
        report = vada.exchange_report(
            cities_db.name,
            measures=["k-anonymity"],
            params={"k-anonymity": {"k": 2}},
        )
        assert "BLOCKED" in report
        assert "k-anonymity" in report
        assert "risky" in report

    def test_pass_after_anonymization(self, cities_db):
        vada = VadaSA()
        vada.register(cities_db)
        result = vada.anonymize(cities_db.name, measure="k-anonymity",
                                k=2)
        anonymized = result.db
        anonymized_vada = VadaSA()
        anonymized_vada.register(anonymized)
        report = anonymized_vada.exchange_report(
            anonymized.name,
            measures=["k-anonymity"],
            params={"k-anonymity": {"k": 2}},
        )
        # k-anonymity expected re-identifications are 0 once no tuple
        # is risky; the gate budget (1.0) therefore passes.
        assert "PASS" in report

    def test_default_measures_listed(self, ig_db):
        vada = VadaSA()
        vada.register(ig_db)
        report = vada.exchange_report(ig_db.name)
        for name in ("k-anonymity", "reidentification", "individual"):
            assert name in report

    def test_includes_dataset_summary(self, ig_db):
        vada = VadaSA()
        vada.register(ig_db)
        report = vada.exchange_report(ig_db.name)
        assert "20 tuples" in report
        assert "maybe-match" in report
