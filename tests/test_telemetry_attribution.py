"""Per-rule cost attribution tests: profiles built from synthetic
snapshots (exact numbers) and from a live instrumented chase run."""

import json

import pytest

from repro import telemetry
from repro.telemetry import MetricsRegistry, RuleProfile
from repro.vadalog import Program


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def synthetic_snapshot():
    """Two rules with known costs: r_hot dominates, r_cold invents
    nulls; an unrelated unlabelled histogram must be ignored."""
    registry = MetricsRegistry()
    hot_match = registry.histogram("chase.match_ns", rule="r_hot")
    for value in (4_000_000.0, 2_000_000.0):
        hot_match.observe(value)
    registry.histogram("chase.fire_ns", rule="r_hot").observe(500_000.0)
    registry.histogram("chase.match_ns", rule="r_cold").observe(
        1_000_000.0
    )
    registry.histogram("chase.enumerate_bindings_ns").observe(9e9)
    registry.counter("chase.bindings", rule="r_hot").inc(10)
    registry.counter("chase.rule_firings", rule="r_hot").inc(6)
    registry.counter("chase.new_facts", rule="r_hot").inc(40)
    registry.counter("chase.new_facts", rule="r_cold").inc(3)
    registry.counter(
        "chase.nulls_introduced_by_rule", rule="r_cold"
    ).inc(3)
    registry.counter("provenance.derivations", rule="r_hot").inc(40)
    registry.gauge("chase.rule_stratum", rule="r_hot").set(0)
    registry.gauge("chase.rule_stratum", rule="r_cold").set(1)
    return registry.snapshot()


class TestFromSnapshot:
    def test_exact_numbers(self):
        profile = RuleProfile.from_snapshot(synthetic_snapshot())
        assert len(profile) == 2
        hot = profile.rule("r_hot")
        assert hot.match_ns == 6_000_000.0
        assert hot.fire_ns == 500_000.0
        assert hot.total_ns == 6_500_000.0
        assert hot.match_calls == 2
        assert hot.bindings == 10
        assert hot.firings == 6
        assert hot.facts == 40
        assert hot.derivations == 40
        assert hot.stratum == 0
        cold = profile.rule("r_cold")
        assert cold.total_ns == 1_000_000.0
        assert cold.nulls == 3
        assert cold.stratum == 1
        assert profile.total_ns == 7_500_000.0

    def test_unlabelled_metrics_ignored(self):
        profile = RuleProfile.from_snapshot(synthetic_snapshot())
        assert profile.rule("chase.enumerate_bindings_ns") is None

    def test_empty_snapshot(self):
        profile = RuleProfile.from_snapshot(
            MetricsRegistry().snapshot()
        )
        assert not profile
        assert len(profile) == 0
        assert profile.total_ns == 0.0
        assert profile.rows() == []
        assert "no per-rule cost recorded" in profile.render()

    def test_rows_hottest_first(self):
        profile = RuleProfile.from_snapshot(synthetic_snapshot())
        assert [c.rule for c in profile.rows()] == ["r_hot", "r_cold"]
        assert [c.rule for c in profile.rows(top=1)] == ["r_hot"]

    def test_tie_broken_by_facts_then_name(self):
        registry = MetricsRegistry()
        for rule, facts in (("b", 1), ("a", 1), ("c", 9)):
            registry.histogram("chase.match_ns", rule=rule).observe(
                100.0
            )
            registry.counter("chase.new_facts", rule=rule).inc(facts)
        profile = RuleProfile.from_snapshot(registry.snapshot())
        assert [c.rule for c in profile.rows()] == ["c", "a", "b"]


class TestStrataRollup:
    def test_rollup_sums_per_stratum(self):
        strata = RuleProfile.from_snapshot(
            synthetic_snapshot()
        ).strata()
        assert set(strata) == {0, 1}
        assert strata[0]["total_ns"] == 6_500_000.0
        assert strata[0]["rules"] == ["r_hot"]
        assert strata[1]["nulls"] == 3
        assert strata[1]["rules"] == ["r_cold"]

    def test_unknown_stratum_lands_in_minus_one(self):
        registry = MetricsRegistry()
        registry.histogram("chase.match_ns", rule="orphan").observe(1.0)
        strata = RuleProfile.from_snapshot(registry.snapshot()).strata()
        assert set(strata) == {-1}
        assert strata[-1]["rules"] == ["orphan"]


class TestReports:
    def test_render_contains_rules_and_rollup(self):
        report = RuleProfile.from_snapshot(
            synthetic_snapshot()
        ).render(top=5)
        assert "hot rules (top 2 of 2" in report
        assert "r_hot" in report and "r_cold" in report
        assert "per-stratum rollup:" in report
        assert "stratum 0:" in report and "stratum 1:" in report

    def test_to_json_roundtrips(self):
        profile = RuleProfile.from_snapshot(synthetic_snapshot())
        data = json.loads(profile.to_json_text())
        assert data["total_ns"] == 7_500_000.0
        assert [r["rule"] for r in data["rules"]] == ["r_hot", "r_cold"]
        assert {s["stratum"] for s in data["strata"]} == {0, 1}


RECURSIVE = """
edge(a, b). edge(b, c). edge(c, d).
@label("base").
path(X, Y) :- edge(X, Y).
@label("step").
path(X, Z) :- path(X, Y), edge(Y, Z).
@label("mint").
manager(X, M) :- edge(X, _).
"""


class TestLiveAttribution:
    def test_profile_of_an_instrumented_chase(self):
        telemetry.enable()
        Program.parse(RECURSIVE).run()
        profile = telemetry.rule_profile()
        assert {"base", "step", "mint"} <= {
            c.rule for c in profile.rows()
        }
        step = profile.rule("step")
        assert step.total_ns > 0
        assert step.match_calls >= 1
        assert step.facts > 0
        assert step.stratum is not None
        assert profile.rule("mint").nulls >= 1

    def test_per_run_snapshot_carries_attribution(self):
        telemetry.enable()
        result = Program.parse(RECURSIVE).run()
        profile = RuleProfile.from_snapshot(
            result.stats["telemetry"]
        )
        assert profile.rule("step") is not None
        assert profile.total_ns > 0

    def test_disabled_profile_is_empty(self):
        Program.parse(RECURSIVE).run()
        assert not telemetry.rule_profile()
