"""Anonymization tests: local suppression, global recoding, heuristics
and metrics — the Figure 5 walkthrough in executable form."""

import pytest

from repro.anonymize import (
    AnonymizationStep,
    FixedOrderSelection,
    GlobalRecoding,
    LocalSuppression,
    MostRiskyFirstSelection,
    RandomSelection,
    RecodeThenSuppress,
    fifo_order,
    generalization_steps,
    information_loss,
    less_significant_first,
    method_by_name,
    most_risky_tuple_first,
    nulls_injected,
    qi_selection_by_name,
    recode_column,
    recoded_cells,
    tuple_ordering_by_name,
    utility_weighted_loss,
)
from repro.errors import AnonymizationError
from repro.model import MAYBE_MATCH, DomainHierarchy, is_suppressed
from repro.risk import KAnonymityRisk
from repro.vadalog.terms import LabelledNull, NullFactory


class TestLocalSuppression:
    def test_injects_labelled_null(self, cities_db):
        db = cities_db.copy()
        method = LocalSuppression()
        factory = NullFactory()
        step = method.apply(db, 0, "Sector", factory, reason="test")
        assert is_suppressed(db.rows[0]["Sector"])
        assert step.old_value == "Textiles"
        assert isinstance(step.new_value, LabelledNull)
        assert factory.issued == 1

    def test_cannot_suppress_twice(self, cities_db):
        db = cities_db.copy()
        method = LocalSuppression()
        factory = NullFactory()
        method.apply(db, 0, "Sector", factory)
        with pytest.raises(AnonymizationError):
            method.apply(db, 0, "Sector", factory)

    def test_only_quasi_identifiers(self, cities_db):
        db = cities_db.copy()
        with pytest.raises(AnonymizationError):
            LocalSuppression().apply(db, 0, "Id", NullFactory())

    def test_applicable_attributes_shrink(self, cities_db):
        db = cities_db.copy()
        method = LocalSuppression()
        factory = NullFactory()
        before = method.applicable_attributes(db, 0)
        method.apply(db, 0, "Sector", factory)
        after = method.applicable_attributes(db, 0)
        assert set(after) == set(before) - {"Sector"}

    def test_step_explanation(self, cities_db):
        db = cities_db.copy()
        step = LocalSuppression().apply(
            db, 0, "Sector", NullFactory(), reason="risk over threshold"
        )
        text = step.explain()
        assert "Sector" in text and "risk over threshold" in text


class TestGlobalRecoding:
    def test_city_rolls_up_to_region(self, cities_db):
        db = cities_db.copy()
        method = GlobalRecoding(DomainHierarchy.italian_geography())
        step = method.apply(db, 5, "Area", NullFactory())
        assert db.rows[5]["Area"] == "North"
        assert step.method == "global-recoding"

    def test_no_hierarchy_means_not_applicable(self, cities_db):
        method = GlobalRecoding()
        assert method.applicable_attributes(cities_db, 0) == []

    def test_unknown_value_raises(self, cities_db):
        db = cities_db.copy()
        method = GlobalRecoding(DomainHierarchy.italian_geography())
        with pytest.raises(AnonymizationError):
            method.apply(db, 0, "Sector", NullFactory())

    def test_recursive_roll_up(self, cities_db):
        db = cities_db.copy()
        hierarchy = DomainHierarchy.italian_geography()
        method = GlobalRecoding(hierarchy)
        method.apply(db, 5, "Area", NullFactory())
        method.apply(db, 5, "Area", NullFactory())
        assert db.rows[5]["Area"] == "Italy"

    def test_recode_column(self, cities_db):
        db = cities_db.copy()
        hierarchy = DomainHierarchy.italian_geography()
        changed = recode_column(db, "Area", hierarchy)
        assert changed == 7
        areas = {row["Area"] for row in db.rows}
        assert areas == {"Center", "North"}

    def test_recode_then_suppress_prefers_recoding(self, cities_db):
        db = cities_db.copy()
        method = RecodeThenSuppress(DomainHierarchy.italian_geography())
        applicable = method.applicable_attributes(db, 5)
        assert applicable == ["Area"]
        step = method.apply(db, 5, "Area", NullFactory())
        assert step.method == "global-recoding"

    def test_recode_then_suppress_falls_back(self, cities_db):
        db = cities_db.copy()
        method = RecodeThenSuppress(DomainHierarchy())  # empty hierarchy
        applicable = method.applicable_attributes(db, 0)
        assert set(applicable) == set(db.quasi_identifiers)
        step = method.apply(db, 0, "Sector", NullFactory())
        assert step.method == "local-suppression"

    def test_method_registry(self):
        assert method_by_name("local-suppression")
        assert method_by_name("global-recoding")
        with pytest.raises(AnonymizationError):
            method_by_name("teleport")


class TestTupleOrderings:
    def test_less_significant_first_sorts_by_weight(self, ig_db):
        report = KAnonymityRisk(k=2).assess(ig_db)
        ordered = less_significant_first(ig_db, [6, 14, 3], report)
        # weights: row 6 -> 300, row 14 -> 30, row 3 -> 60
        assert ordered == [14, 3, 6]

    def test_fifo_preserves_order(self, ig_db):
        report = KAnonymityRisk(k=2).assess(ig_db)
        assert fifo_order(ig_db, [5, 1, 9], report) == [5, 1, 9]

    def test_most_risky_tuple_first(self, ig_db):
        from repro.risk import ReidentificationRisk

        report = ReidentificationRisk().assess(ig_db)
        ordered = most_risky_tuple_first(ig_db, [6, 14], report)
        assert ordered == [14, 6]  # 1/30 > 1/300

    def test_lookup_by_name(self):
        assert tuple_ordering_by_name("fifo") is fifo_order
        with pytest.raises(ValueError):
            tuple_ordering_by_name("alphabetical")


class TestQISelection:
    def test_most_risky_first_reproduces_fig5_choice(self, cities_db):
        """Suppressing Sector of tuple 1 yields frequency 5; any other
        attribute leaves the sample-unique 'Textiles' in place
        (Section 4.4's worked example)."""
        selection = MostRiskyFirstSelection()
        selection.prepare(
            cities_db, cities_db.quasi_identifiers, MAYBE_MATCH
        )
        choice = selection.select(
            cities_db, 0, cities_db.quasi_identifiers
        )
        assert choice == "Sector"

    def test_fixed_order_takes_first(self, cities_db):
        selection = FixedOrderSelection()
        assert selection.select(cities_db, 0, ["Area", "Sector"]) == "Area"

    def test_random_is_seeded(self, cities_db):
        first = RandomSelection(seed=3)
        second = RandomSelection(seed=3)
        applicable = cities_db.quasi_identifiers
        choices_a = [first.select(cities_db, 0, applicable)
                     for _ in range(5)]
        choices_b = [second.select(cities_db, 0, applicable)
                     for _ in range(5)]
        assert choices_a == choices_b

    def test_lookup_by_name(self):
        assert isinstance(
            qi_selection_by_name("most-risky-first"),
            MostRiskyFirstSelection,
        )
        with pytest.raises(ValueError):
            qi_selection_by_name("psychic")


class TestMetrics:
    def test_nulls_injected(self, cities_db):
        original = cities_db.copy()
        modified = cities_db.copy()
        modified.with_value(0, "Sector", LabelledNull(1))
        modified.with_value(2, "Area", LabelledNull(2))
        assert nulls_injected(original, modified) == 2

    def test_information_loss_formula(self, cities_db):
        original = cities_db.copy()
        modified = cities_db.copy()
        modified.with_value(0, "Sector", LabelledNull(1))
        # 1 null / (3 risky x 4 QIs)
        assert information_loss(original, modified, 3) == pytest.approx(
            1 / 12
        )

    def test_information_loss_zero_when_no_risky(self, cities_db):
        assert information_loss(cities_db, cities_db, 0) == 0.0

    def test_recoded_cells(self, cities_db):
        original = cities_db.copy()
        modified = cities_db.copy()
        hierarchy = DomainHierarchy.italian_geography()
        recode_column(modified, "Area", hierarchy)
        assert recoded_cells(original, modified) == 7
        assert nulls_injected(original, modified) == 0

    def test_generalization_steps(self, cities_db):
        original = cities_db.copy()
        modified = cities_db.copy()
        hierarchy = DomainHierarchy.italian_geography()
        recode_column(modified, "Area", hierarchy)
        assert generalization_steps(original, modified, hierarchy) == 7

    def test_utility_weighted_loss_prefers_light_tuples(self, ig_db):
        light = ig_db.copy()
        light.with_value(14, "Area", LabelledNull(1))  # weight 30
        heavy = ig_db.copy()
        heavy.with_value(6, "Area", LabelledNull(1))   # weight 300
        assert utility_weighted_loss(ig_db, light) < utility_weighted_loss(
            ig_db, heavy
        )
