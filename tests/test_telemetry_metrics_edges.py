"""Histogram edge cases: percentile queries on empty/single-sample
series must be well-defined (read paths never raise), and registry
``merge`` must be associative on the exact aggregates even past
reservoir truncation."""

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.metrics import RESERVOIR_SIZE, Histogram


class TestPercentileEdgeCases:
    def test_empty_histogram_is_zero_for_any_p(self):
        histogram = Histogram()
        for p in (0, 50, 95, 99, 100, -10, 250):
            assert histogram.percentile(p) == 0.0

    def test_empty_histogram_snapshot_does_not_raise(self):
        registry = MetricsRegistry()
        registry.histogram("empty")
        data = registry.snapshot()["histograms"]["empty"]
        assert data["count"] == 0
        assert data["mean"] == 0.0
        assert data["p50"] == 0.0 and data["p99"] == 0.0
        assert data["min"] == 0.0 and data["max"] == 0.0

    def test_single_sample_is_every_percentile(self):
        histogram = Histogram()
        histogram.observe(42.0)
        for p in (0, 1, 50, 99, 100):
            assert histogram.percentile(p) == 42.0

    def test_out_of_range_p_is_clamped(self):
        histogram = Histogram()
        histogram.extend([1.0, 2.0, 3.0])
        assert histogram.percentile(-5) == 1.0
        assert histogram.percentile(1e9) == 3.0

    def test_two_samples_extremes(self):
        histogram = Histogram()
        histogram.extend([10.0, 20.0])
        assert histogram.percentile(0) == 10.0
        assert histogram.percentile(100) == 20.0


def exact(snapshot):
    """The exact (non-reservoir) part of a snapshot: counters, gauges,
    and per-histogram count/sum/min/max/mean."""
    return {
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "histograms": {
            key: {field: data[field]
                  for field in ("count", "sum", "min", "max", "mean")}
            for key, data in snapshot["histograms"].items()
        },
    }


def make_registries():
    a = MetricsRegistry()
    a.counter("c").inc(1)
    a.counter("only_a").inc(5)
    a.gauge("g").set(1)
    a.histogram("h").extend([1.0, 9.0])
    b = MetricsRegistry()
    b.counter("c").inc(2)
    b.gauge("g").set(2)
    b.histogram("h").extend([5.0])
    b.histogram("h2", rule="r").extend([2.0, 4.0])
    c = MetricsRegistry()
    c.counter("c").inc(4)
    c.histogram("h").extend([0.5, 100.0])
    return a, b, c


class TestMergeAssociativity:
    def test_left_and_right_grouping_agree(self):
        a1, b1, c1 = make_registries()
        b1.merge(c1)
        a1.merge(b1)  # a . (b . c)
        a2, b2, c2 = make_registries()
        a2.merge(b2)
        a2.merge(c2)  # (a . b) . c
        assert a1.snapshot() == a2.snapshot()

    def test_merged_aggregates_are_the_union(self):
        a, b, c = make_registries()
        a.merge(b)
        a.merge(c)
        snapshot = a.snapshot()
        assert snapshot["counters"]["c"] == 7
        assert snapshot["counters"]["only_a"] == 5
        assert snapshot["gauges"]["g"] == 2  # last write wins
        histogram = snapshot["histograms"]["h"]
        assert histogram["count"] == 5
        assert histogram["sum"] == pytest.approx(115.5)
        assert histogram["min"] == 0.5 and histogram["max"] == 100.0

    def test_merge_into_empty_is_identity(self):
        a, _, _ = make_registries()
        empty = MetricsRegistry()
        empty.merge(a)
        assert empty.snapshot() == a.snapshot()

    def test_associative_past_reservoir_truncation(self):
        """The donor's min/max may no longer be in its reservoir; the
        merge must still carry them (and the exact count/sum)."""

        def overfull():
            registry = MetricsRegistry()
            histogram = registry.histogram("big")
            histogram.observe(0.25)  # the true min, soon overwritten
            for _ in range(RESERVOIR_SIZE + 10):
                histogram.observe(1.0)
            histogram.observe(999.0)  # true max, lands in-reservoir
            return registry

        def single():
            registry = MetricsRegistry()
            registry.histogram("big").observe(2.0)
            return registry

        left = single()
        left.merge(overfull())
        grouped = single()
        middle = MetricsRegistry()
        middle.merge(overfull())
        grouped.merge(middle)
        for merged in (left, grouped):
            data = merged.snapshot()["histograms"]["big"]
            assert data["count"] == RESERVOIR_SIZE + 13
            assert data["min"] == 0.25
            assert data["max"] == 999.0
            assert data["sum"] == pytest.approx(
                0.25 + (RESERVOIR_SIZE + 10) + 999.0 + 2.0
            )
        assert exact(left.snapshot()) == exact(grouped.snapshot())

    def test_histogram_merge_from_empty_donor(self):
        histogram = Histogram()
        histogram.observe(3.0)
        histogram.merge_from(Histogram())
        assert histogram.count == 1
        assert histogram.min == 3.0 and histogram.max == 3.0

    def test_empty_histogram_merge_from_full_donor(self):
        donor = Histogram()
        donor.extend([1.0, 2.0])
        histogram = Histogram()
        histogram.merge_from(donor)
        assert histogram.count == 2
        assert histogram.total == pytest.approx(3.0)
        assert histogram.min == 1.0 and histogram.max == 2.0


class TestThreadSafety:
    """Concurrent instrument updates must lose nothing: the parallel
    chase hammers counters, gauges, histograms and the event log from
    stratum and shard workers simultaneously."""

    THREADS = 8
    PER_THREAD = 2_000

    def _hammer(self, worker):
        import threading

        errors = []

        def guarded(index):
            try:
                worker(index)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=guarded, args=(index,))
            for index in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors

    def test_counter_increments_are_exact(self):
        registry = MetricsRegistry()

        def worker(index):
            counter = registry.counter("hammered")
            for _ in range(self.PER_THREAD):
                counter.inc()

        self._hammer(worker)
        total = self.THREADS * self.PER_THREAD
        assert registry.counter("hammered").value == total

    def test_gauge_inc_dec_balances_to_zero(self):
        registry = MetricsRegistry()

        def worker(index):
            gauge = registry.gauge("inflight")
            for _ in range(self.PER_THREAD):
                gauge.inc()
                gauge.dec()

        self._hammer(worker)
        assert registry.gauge("inflight").value == 0

    def test_histogram_aggregates_are_exact(self):
        registry = MetricsRegistry()

        def worker(index):
            histogram = registry.histogram("latency")
            base = index * self.PER_THREAD
            for offset in range(self.PER_THREAD):
                histogram.observe(float(base + offset))

        self._hammer(worker)
        histogram = registry.histogram("latency")
        total = self.THREADS * self.PER_THREAD
        assert histogram.count == total
        assert histogram.min == 0.0
        assert histogram.max == float(total - 1)
        assert histogram.total == float(total * (total - 1) // 2)

    def test_histogram_merge_from_races_with_observe(self):
        registry = MetricsRegistry()
        source = Histogram()
        source.extend([1.0, 2.0, 3.0])

        def worker(index):
            histogram = registry.histogram("merged")
            if index % 2 == 0:
                for _ in range(self.PER_THREAD):
                    histogram.observe(5.0)
            else:
                for _ in range(50):
                    histogram.merge_from(source)

        self._hammer(worker)
        histogram = registry.histogram("merged")
        even = (self.THREADS // 2) * self.PER_THREAD
        odd = (self.THREADS - self.THREADS // 2) * 50 * 3
        assert histogram.count == even + odd
        assert histogram.min == 1.0
        assert histogram.max == 5.0

    def test_event_log_sequence_is_gap_free(self):
        from repro.telemetry.events import EventLog

        log = EventLog(path=None)
        per_thread = 500

        def worker(index):
            for offset in range(per_thread):
                log.emit("hammer", worker=index, offset=offset)

        self._hammer(worker)
        events = log.tail()
        total = self.THREADS * per_thread
        assert len(events) <= total  # ring buffer may truncate
        sequences = [event["seq"] for event in events]
        assert len(set(sequences)) == len(sequences), "duplicate seq"
        assert max(sequences) == total, "lost emissions"
