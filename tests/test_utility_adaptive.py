"""Tests for statistical-utility metrics and the adaptive method."""

import pytest

from repro.anonymize import (
    AdaptiveMethod,
    LocalSuppression,
    GlobalRecoding,
    UtilityReport,
    anonymize,
    joint_distance,
    marginal_distance,
    total_variation,
    weighted_mean_shift,
)
from repro.errors import AnonymizationError, ReproError
from repro.model import DomainHierarchy
from repro.risk import KAnonymityRisk
from repro.vadalog.terms import LabelledNull, NullFactory


class TestTotalVariation:
    def test_identical_is_zero(self):
        d = {"a": 0.5, "b": 0.5}
        assert total_variation(d, d) == 0.0

    def test_disjoint_is_one(self):
        assert total_variation({"a": 1.0}, {"b": 1.0}) == 1.0

    def test_symmetric(self):
        p = {"a": 0.7, "b": 0.3}
        q = {"a": 0.4, "b": 0.6}
        assert total_variation(p, q) == total_variation(q, p)
        assert total_variation(p, q) == pytest.approx(0.3)


class TestDatasetDistances:
    def test_untouched_dataset_distance_zero(self, ig_db):
        assert marginal_distance(ig_db, ig_db, "Area") == 0.0
        assert joint_distance(ig_db, ig_db) == 0.0

    def test_suppression_moves_mass_to_bucket(self, cities_db):
        modified = cities_db.copy()
        modified.with_value(0, "Sector", LabelledNull(1))
        distance = marginal_distance(cities_db, modified, "Sector")
        assert distance == pytest.approx(1 / 7)

    def test_recoding_changes_marginal_less_than_suppressing_all(
        self, cities_db
    ):
        hierarchy = DomainHierarchy.italian_geography()
        recoded = anonymize(
            cities_db, KAnonymityRisk(k=2), GlobalRecoding(hierarchy)
        )
        suppress_heavy = cities_db.copy()
        factory = NullFactory()
        for row in range(len(suppress_heavy)):
            suppress_heavy.with_value(row, "Area", factory.fresh())
        light = marginal_distance(cities_db, recoded.db, "Area")
        heavy = marginal_distance(cities_db, suppress_heavy, "Area")
        assert light < heavy

    def test_weighted_mean_preserved_by_cycle(self, ig_db):
        result = anonymize(ig_db, KAnonymityRisk(k=2), LocalSuppression())
        shift = weighted_mean_shift(ig_db, result.db, "Growth6mos")
        assert shift == 0.0

    def test_mean_shift_detects_change(self, ig_db):
        modified = ig_db.copy()
        modified.with_value(0, "Growth6mos", 10_000)
        assert weighted_mean_shift(ig_db, modified, "Growth6mos") > 0.1

    def test_mean_shift_requires_numeric(self, ig_db):
        with pytest.raises(ReproError):
            weighted_mean_shift(ig_db, ig_db, "Area")

    def test_utility_report(self, small_u):
        result = anonymize(small_u, KAnonymityRisk(k=2),
                           LocalSuppression())
        report = UtilityReport(
            small_u, result.db, numeric_attributes=["Growth6mos"]
        )
        # The cycle touches a small minority of cells: TV stays small.
        assert report.joint < 0.25
        assert report.worst_marginal < 0.15
        assert report.mean_shifts["Growth6mos"] == 0.0


class TestAdaptiveMethod:
    def test_prefers_recoding_then_suppresses(self, cities_db):
        hierarchy = DomainHierarchy.italian_geography()
        method = AdaptiveMethod(hierarchy, patience=1)
        result = anonymize(cities_db, KAnonymityRisk(k=2), method)
        assert result.converged
        methods_used = {step.method for step in result.steps}
        # Area values can be recoded; Sector of tuple 1 cannot.
        assert any("global-recoding" in m for m in methods_used)
        assert any("local-suppression" in m for m in methods_used)

    def test_patience_escalates(self, cities_db):
        hierarchy = DomainHierarchy.italian_geography()
        method = AdaptiveMethod(hierarchy, patience=1)
        db = cities_db.copy()
        factory = NullFactory()
        applicable = method.applicable_attributes(db, 5)
        assert applicable == ["Area"]  # recoding level
        method.apply(db, 5, "Area", factory)
        # Patience 1 exhausted: next action for row 5 is suppression.
        applicable = method.applicable_attributes(db, 5)
        assert set(applicable) <= set(db.quasi_identifiers)
        step = method.apply(db, 5, applicable[0], factory)
        assert "local-suppression" in step.method

    def test_unactionable_attribute_escalates_in_place(self, cities_db):
        hierarchy = DomainHierarchy.italian_geography()
        method = AdaptiveMethod(hierarchy, patience=5)
        db = cities_db.copy()
        # Sector has no roll-up: the recoding level cannot act, the
        # apply call escalates to suppression for this attribute.
        step = method.apply(db, 0, "Sector", NullFactory())
        assert "local-suppression" in step.method

    def test_empty_method_list_rejected(self):
        with pytest.raises(AnonymizationError):
            AdaptiveMethod(methods=[])

    def test_invalid_patience(self):
        with pytest.raises(AnonymizationError):
            AdaptiveMethod(patience=0)

    def test_reset_clears_history(self, cities_db):
        hierarchy = DomainHierarchy.italian_geography()
        method = AdaptiveMethod(hierarchy, patience=1)
        db = cities_db.copy()
        method.apply(db, 5, "Area", NullFactory())
        method.reset()
        fresh = cities_db.copy()
        assert method.applicable_attributes(fresh, 5) == ["Area"]

    def test_adaptive_preserves_more_utility_than_pure_suppression(
        self, cities_db
    ):
        hierarchy = DomainHierarchy.italian_geography()
        adaptive = anonymize(
            cities_db, KAnonymityRisk(k=2),
            AdaptiveMethod(hierarchy, patience=2),
        )
        suppression = anonymize(
            cities_db, KAnonymityRisk(k=2), LocalSuppression()
        )
        assert adaptive.converged and suppression.converged
        # Recoding keeps (coarse) values, so fewer nulls appear.
        assert adaptive.nulls_injected <= suppression.nulls_injected
