"""Cross-measure property tests: relationships the risk measures must
satisfy among themselves on arbitrary data."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model import MAYBE_MATCH, MicrodataDB, survey_schema
from repro.risk import (
    DifferentialRisk,
    IndividualRisk,
    KAnonymityRisk,
    ReidentificationRisk,
    SudaRisk,
)
from repro.vadalog.terms import NullFactory


@st.composite
def random_db(draw):
    n_rows = draw(st.integers(min_value=1, max_value=16))
    rows = [
        {
            "A": draw(st.integers(0, 3)),
            "B": draw(st.integers(0, 2)),
            "C": draw(st.integers(0, 1)),
            "W": draw(st.integers(1, 100)),
        }
        for _ in range(n_rows)
    ]
    schema = survey_schema(
        quasi_identifiers=["A", "B", "C"], weight="W"
    )
    return MicrodataDB("prop", schema, rows)


class TestBounds:
    @given(random_db())
    def test_all_scores_in_unit_interval(self, db):
        for measure in (
            ReidentificationRisk(),
            KAnonymityRisk(k=2),
            IndividualRisk(mode="series"),
            SudaRisk(k=2),
            DifferentialRisk(epsilon=0.5),
        ):
            report = measure.assess(db)
            assert all(0.0 <= s <= 1.0 for s in report.scores)
            assert len(report.scores) == len(db)


class TestCrossMeasureRelations:
    @given(random_db())
    def test_suda_risky_implies_k_anonymity_risky(self, db):
        """A tuple with an MSU smaller than k is unique on some subset,
        hence unique on the full QI set, hence k-anonymity-risky for
        the same k."""
        suda = SudaRisk(k=2).assess(db).risky_indices(0.5)
        kanon = KAnonymityRisk(k=2).assess(db).risky_indices(0.5)
        assert set(suda) <= set(kanon)

    @given(random_db())
    def test_individual_simple_le_reidentification_scaled(self, db):
        """Individual risk f/SumW equals f x re-identification risk
        (1/SumW) for the same group."""
        individual = IndividualRisk(mode="simple").assess(db)
        reid = ReidentificationRisk().assess(db)
        counts = MAYBE_MATCH.match_counts(db)
        for index in range(len(db)):
            expected = min(1.0, counts[index] * reid.scores[index])
            assert individual.scores[index] == pytest.approx(
                expected, rel=1e-9
            )

    @given(random_db())
    def test_series_individual_never_exceeds_simple(self, db):
        """The posterior mean E[1/F | f] is at most 1/f = the sample
        (simple) risk when p<=1 ... it is at most 1/f, while simple is
        f/SumW; both are <= 1; series <= 1/f always."""
        series = IndividualRisk(mode="series").assess(db)
        counts = MAYBE_MATCH.match_counts(db)
        for index in range(len(db)):
            assert series.scores[index] <= 1.0 / counts[index] + 1e-9

    @given(random_db())
    def test_differential_matches_k_anonymity_at_calibration(self, db):
        """With eps=ln 2 and T=0.5, 'safe' means frequency >= 2 — the
        exact k=2 criterion."""
        import math

        differential = DifferentialRisk(epsilon=math.log(2)).assess(db)
        kanon = KAnonymityRisk(k=2).assess(db)
        assert differential.risky_indices(0.5) == kanon.risky_indices(0.5)


class TestMonotonicityUnderSuppression:
    @given(random_db(), st.integers(0, 100),
           st.sampled_from(["A", "B", "C"]))
    def test_suppression_never_raises_k_anonymity_risk_of_row(
        self, db, row_seed, attribute
    ):
        row = row_seed % len(db)
        measure = KAnonymityRisk(k=2)
        before = measure.assess(db).scores[row]
        db.with_value(row, attribute, NullFactory(start=900).fresh())
        after = measure.assess(db).scores[row]
        assert after <= before

    @given(random_db(), st.integers(0, 100),
           st.sampled_from(["A", "B", "C"]))
    def test_suppression_never_raises_differential_risk_of_row(
        self, db, row_seed, attribute
    ):
        row = row_seed % len(db)
        measure = DifferentialRisk(epsilon=0.4)
        before = measure.assess(db).scores[row]
        db.with_value(row, attribute, NullFactory(start=900).fresh())
        after = measure.assess(db).scores[row]
        assert after <= before + 1e-12
