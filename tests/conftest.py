"""Shared fixtures and the suite-wide hypothesis configuration.

Hypothesis settings are centralized here as named profiles instead of
per-file ``@settings(...)`` copies.  Select one with the
``HYPOTHESIS_PROFILE`` environment variable:

* ``ci``   — small, derandomized budgets for the pull-request lane;
* ``dev``  — the default for local runs: moderate budgets;
* ``deep`` — the nightly lane: large budgets, prints reproduction
  blobs.  PRs touching the chase engine, the reference oracle or null
  semantics must pass this profile (see docs/testing.md).
"""

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.data import (
    city_fragment,
    generate_dataset,
    generate_oracle,
    inflation_growth_fragment,
)

settings.register_profile(
    "ci",
    max_examples=30,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "deep",
    max_examples=500,
    deadline=None,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def ig_db():
    """The 20-tuple Inflation & Growth fragment of Figure 1."""
    return inflation_growth_fragment()


@pytest.fixture
def cities_db():
    """The 7-tuple Figure 5a example."""
    return city_fragment()


@pytest.fixture(scope="session")
def small_w():
    """A small R25A4W-profile dataset (250 rows) for cycle tests."""
    return generate_dataset("R25A4W", scale=100, seed=11)


@pytest.fixture(scope="session")
def small_u():
    return generate_dataset("R25A4U", scale=100, seed=11)


@pytest.fixture(scope="session")
def small_v():
    return generate_dataset("R25A4V", scale=100, seed=11)


@pytest.fixture(scope="session")
def small_oracle(small_w):
    return generate_oracle(small_w, seed=5, max_population=60_000)
