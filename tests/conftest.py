"""Shared fixtures: the paper's survey fragments and small synthetic
datasets used across the suite."""

import pytest

from repro.data import (
    city_fragment,
    generate_dataset,
    generate_oracle,
    inflation_growth_fragment,
)


@pytest.fixture
def ig_db():
    """The 20-tuple Inflation & Growth fragment of Figure 1."""
    return inflation_growth_fragment()


@pytest.fixture
def cities_db():
    """The 7-tuple Figure 5a example."""
    return city_fragment()


@pytest.fixture(scope="session")
def small_w():
    """A small R25A4W-profile dataset (250 rows) for cycle tests."""
    return generate_dataset("R25A4W", scale=100, seed=11)


@pytest.fixture(scope="session")
def small_u():
    return generate_dataset("R25A4U", scale=100, seed=11)


@pytest.fixture(scope="session")
def small_v():
    return generate_dataset("R25A4V", scale=100, seed=11)


@pytest.fixture(scope="session")
def small_oracle(small_w):
    return generate_oracle(small_w, seed=5, max_population=60_000)
