"""File-level risk indicator and composition-attack tests."""

import pytest

from repro.anonymize import LocalSuppression, anonymize
from repro.attack import (
    composition_links,
    composition_risk,
    shared_quasi_identifiers,
    unique_links,
)
from repro.errors import ReproError
from repro.model import MicrodataDB, survey_schema
from repro.risk import (
    KAnonymityRisk,
    ReidentificationRisk,
    RiskReport,
    file_risk,
    release_gate,
)
from repro.vadalog.terms import LabelledNull


class TestFileRisk:
    def test_expected_reidentifications_sum(self, ig_db):
        report = ReidentificationRisk().assess(ig_db)
        aggregate = file_risk(report)
        assert aggregate.expected_reidentifications == pytest.approx(
            sum(report.scores)
        )
        assert aggregate.tuples == 20
        assert aggregate.global_risk == pytest.approx(
            aggregate.expected_reidentifications / 20
        )

    def test_at_risk_share(self, cities_db):
        report = KAnonymityRisk(k=2).assess(cities_db)
        aggregate = file_risk(report, threshold=0.5)
        assert aggregate.at_risk_share == pytest.approx(3 / 7)

    def test_empty_report(self):
        empty = RiskReport("test", [], [])
        aggregate = file_risk(empty)
        assert aggregate.tuples == 0
        assert aggregate.global_risk == 0.0

    def test_invalid_threshold(self, ig_db):
        report = ReidentificationRisk().assess(ig_db)
        with pytest.raises(ReproError):
            file_risk(report, threshold=2.0)

    def test_string_rendering(self, ig_db):
        report = ReidentificationRisk().assess(ig_db)
        assert "expected re-identifications" in str(file_risk(report))


class TestReleaseGate:
    def test_gate_blocks_risky_file(self, cities_db):
        report = KAnonymityRisk(k=2).assess(cities_db)
        assert not release_gate(report)

    def test_gate_passes_anonymized_file(self, cities_db):
        result = anonymize(
            cities_db, KAnonymityRisk(k=2), LocalSuppression()
        )
        report = KAnonymityRisk(k=2).assess(result.db)
        assert release_gate(report)

    def test_global_budget_enforced(self, ig_db):
        report = ReidentificationRisk().assess(ig_db)
        total = sum(report.scores)
        assert release_gate(report, tuple_threshold=0.5,
                            global_budget=total + 0.01)
        assert not release_gate(report, tuple_threshold=0.5,
                                global_budget=total - 0.01)


def make_release(rows, attrs=("A", "B")):
    schema = survey_schema(quasi_identifiers=list(attrs))
    return MicrodataDB("rel", schema, rows)


class TestComposition:
    def test_shared_attributes(self):
        first = make_release([{"A": 1, "B": 2}], ("A", "B"))
        second = make_release([{"B": 2, "C": 3}], ("B", "C"))
        assert shared_quasi_identifiers(first, second) == ["B"]

    def test_no_shared_attributes_raises(self):
        first = make_release([{"A": 1, "B": 2}], ("A", "B"))
        second = make_release([{"C": 1, "D": 2}], ("C", "D"))
        with pytest.raises(ReproError):
            composition_links(first, second)

    def test_exact_join_counts(self):
        first = make_release(
            [{"A": 1, "B": 1}, {"A": 2, "B": 2}]
        )
        second = make_release(
            [{"A": 1, "B": 1}, {"A": 1, "B": 1}, {"A": 3, "B": 3}]
        )
        assert composition_links(first, second) == [2, 0]

    def test_unique_links_are_the_danger(self):
        first = make_release([{"A": 1, "B": 1}, {"A": 2, "B": 2}])
        second = make_release([{"A": 1, "B": 1}])
        assert unique_links(first, second) == [0]
        risks = composition_risk(first, second)
        assert risks == [1.0, 0.0]

    def test_suppression_on_second_side_widens_matches(self):
        first = make_release([{"A": 1, "B": 1}])
        second = make_release(
            [{"A": LabelledNull(1), "B": 1}, {"A": 2, "B": 1}]
        )
        # The null row maybe-matches; the (2,1) row does not.
        assert composition_links(first, second) == [1]

    def test_suppression_on_first_side_wildcards_probe(self):
        first = make_release([{"A": LabelledNull(5), "B": 1}])
        second = make_release(
            [{"A": 1, "B": 1}, {"A": 2, "B": 1}, {"A": 2, "B": 9}]
        )
        assert composition_links(first, second) == [2]

    def test_anonymization_reduces_unique_bridges(self, small_u):
        """Two overlapping releases of the same survey: anonymizing
        both shrinks the set of one-to-one join bridges."""
        half = len(small_u) * 2 // 3
        first = MicrodataDB(
            "first", small_u.schema, small_u.rows[:half]
        )
        second = MicrodataDB(
            "second", small_u.schema, small_u.rows[half // 2:]
        )
        bridges_before = len(unique_links(first, second))
        anon_first = anonymize(
            first, KAnonymityRisk(k=2), LocalSuppression()
        ).db
        anon_second = anonymize(
            second, KAnonymityRisk(k=2), LocalSuppression()
        ).db
        bridges_after = len(unique_links(anon_first, anon_second))
        assert bridges_after <= bridges_before
