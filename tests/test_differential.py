"""Differential-privacy-inspired risk measure tests (the paper's
future-work extension)."""

import math

import pytest

from repro.anonymize import LocalSuppression, anonymize
from repro.errors import ReproError
from repro.risk import (
    DifferentialRisk,
    KAnonymityRisk,
    measure_by_name,
    minimum_safe_frequency,
)


class TestScores:
    def test_sample_unique_scores_one(self, cities_db):
        report = DifferentialRisk(epsilon=0.5).assess(cities_db)
        # Rows 0, 5, 6 are sample uniques (frequency 1).
        assert report.scores[0] == 1.0
        assert report.scores[5] == 1.0

    def test_exponential_decay(self, cities_db):
        epsilon = 0.7
        report = DifferentialRisk(epsilon=epsilon).assess(cities_db)
        # Rows 1-4 have frequency 2.
        assert report.scores[1] == pytest.approx(math.exp(-epsilon))

    def test_larger_epsilon_means_lower_risk(self, cities_db):
        strict = DifferentialRisk(epsilon=0.1).assess(cities_db)
        loose = DifferentialRisk(epsilon=2.0).assess(cities_db)
        for tight, lax in zip(strict.scores, loose.scores):
            assert lax <= tight

    def test_invalid_epsilon(self):
        with pytest.raises(ReproError):
            DifferentialRisk(epsilon=0)

    def test_registered(self):
        measure = measure_by_name("differential", epsilon=1.0)
        assert isinstance(measure, DifferentialRisk)


class TestThresholdCorrespondence:
    def test_minimum_safe_frequency(self):
        # rho <= T  <=>  f >= 1 + ln(1/T)/eps
        assert minimum_safe_frequency(math.log(2), 0.5) == 2
        assert minimum_safe_frequency(0.5, 1.0) == 1

    def test_safe_from_group_consistent_with_assess(self, cities_db):
        measure = DifferentialRisk(epsilon=0.9)
        report = measure.assess(cities_db)
        freqs = KAnonymityRisk(k=2).frequencies(cities_db)
        for index, frequency in enumerate(freqs):
            safe = measure.safe_from_group(frequency, 0.0, 0.5)
            assert safe == (report.scores[index] <= 0.5)

    def test_bound_requires_positive_threshold(self):
        with pytest.raises(ReproError):
            minimum_safe_frequency(1.0, 0.0)


class TestInCycle:
    def test_cycle_converges_with_differential_measure(self, cities_db):
        # epsilon = ln 2 and T = 0.5 make "safe" equal "frequency >= 2",
        # i.e. exactly 2-anonymity: the cycle must behave identically.
        differential = anonymize(
            cities_db,
            DifferentialRisk(epsilon=math.log(2)),
            LocalSuppression(),
            threshold=0.5,
        )
        k_anon = anonymize(
            cities_db, KAnonymityRisk(k=2), LocalSuppression()
        )
        assert differential.converged
        assert differential.nulls_injected == k_anon.nulls_injected

    def test_stricter_epsilon_needs_more_nulls(self, small_u):
        loose = anonymize(
            small_u, DifferentialRisk(epsilon=1.0), LocalSuppression()
        )
        strict = anonymize(
            small_u, DifferentialRisk(epsilon=0.3), LocalSuppression()
        )
        # epsilon=0.3 requires groups of >= 1+ln(2)/0.3 ~ 4 tuples.
        assert strict.nulls_injected > loose.nulls_injected
        assert strict.converged and loose.converged
