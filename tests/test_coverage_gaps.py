"""Depth tests for paths the main suites exercise only indirectly:
standard-semantics tracking, hierarchy completeness, mid-chase EGD
unification, dependency-graph edge marking, bench-registry integrity."""

import pytest

from repro.anonymize import GroupTracker, LocalSuppression
from repro.data import (
    QI_DOMAINS,
    generate_dataset,
    survey_hierarchy,
)
from repro.model import MAYBE_MATCH, STANDARD
from repro.vadalog import Program
from repro.vadalog.atoms import Atom
from repro.vadalog.negation import DependencyGraph
from repro.vadalog.parser.parser import parse_program
from repro.vadalog.terms import LabelledNull, NullFactory


class TestGroupTrackerStandardSemantics:
    def test_stats_match_standard_semantics(self, cities_db):
        db = cities_db.copy()
        factory = NullFactory()
        method = LocalSuppression()
        tracker = GroupTracker(db, db.quasi_identifiers, STANDARD)
        for row, attribute in [(0, "Sector"), (5, "Area"),
                               (6, "Area")]:
            old_key = tracker.before_change(row)
            method.apply(db, row, attribute, factory)
            tracker.after_change(row, old_key)
        expected = STANDARD.match_counts(db)
        for index in range(len(db)):
            count, _ = tracker.stats(index)
            assert count == expected[index]

    def test_null_rows_stay_in_exact_index_under_standard(self,
                                                          cities_db):
        db = cities_db.copy()
        tracker = GroupTracker(db, db.quasi_identifiers, STANDARD)
        old_key = tracker.before_change(0)
        LocalSuppression().apply(db, 0, "Sector", NullFactory())
        tracker.after_change(0, old_key)
        # Under standard semantics a null is just another value: the
        # tracker keeps the row in the exact counter, no null-row scan.
        assert not tracker.null_rows


class TestSurveyHierarchyCompleteness:
    def test_every_common_domain_value_generalizes(self):
        hierarchy = survey_hierarchy()
        for domain in QI_DOMAINS:
            for value in domain.values + domain.rare_values:
                assert hierarchy.can_generalize(domain.name, value), (
                    domain.name,
                    value,
                )

    def test_generated_w_dataset_fully_recodable(self):
        db = generate_dataset("R6A4W", scale=20, seed=1)
        hierarchy = survey_hierarchy()
        for row in db.rows:
            for attribute in db.quasi_identifiers:
                assert hierarchy.can_generalize(
                    attribute, row[attribute]
                )


class TestEGDMidChase:
    def test_derived_null_unifies_with_derived_constant(self):
        """Rule 1 invents a null category; rule 2 derives a constant
        one; the EGD must unify them during the same run."""
        program = Program.parse(
            """
            att(m, area).
            known(area, qi).
            att(M, A) -> exists(C) cat(M, A, C).
            cat(M, A, C) :- att(M, A), known(A, C).
            C1 = C2 :- cat(M, A, C1), cat(M, A, C2).
            """
        )
        result = program.run()
        rows = result.tuples("cat")
        assert len(rows) == 1
        assert rows[0][2] == "qi"
        assert result.egd_violations == []

    def test_egd_chain_of_nulls(self):
        """Two invented nulls for the same key unify transitively with
        one constant."""
        from repro.vadalog.database import FactStore
        from repro.vadalog.egd import enforce_egds
        from repro.vadalog.terms import Constant

        store = FactStore(
            [
                Atom("cat", (Constant("a"), LabelledNull(1))),
                Atom("cat", (Constant("a"), LabelledNull(2))),
                Atom("cat", (Constant("a"), Constant("qi"))),
            ]
        )
        egd = parse_program("C1 = C2 :- cat(A, C1), cat(A, C2).").egds[0]
        violations = enforce_egds([egd], store)
        assert violations == []
        facts = list(store.facts("cat"))
        assert len(facts) == 1
        assert facts[0].terms[1] == Constant("qi")


class TestDependencyGraphEdges:
    def test_negated_edge_marked(self):
        rules = parse_program("p(X) :- n(X), not m(X).").rules
        graph = DependencyGraph(rules).graph
        assert graph.get_edge_data("m", "p")["negated"]
        assert not graph.get_edge_data("n", "p")["negated"]

    def test_aggregated_edge_marked(self):
        rules = parse_program(
            "t(G, S) :- n(G, W, I), S = msum(W, <I>)."
        ).rules
        graph = DependencyGraph(rules).graph
        assert graph.get_edge_data("n", "t")["aggregated"]

    def test_external_edges_excluded(self):
        rules = parse_program("p(X) :- n(X), #check(X).").rules
        graph = DependencyGraph(rules).graph
        assert "#check" not in graph.nodes


class TestBenchRegistryIntegrity:
    def test_run_all_registry_is_consistent(self):
        import sys
        from pathlib import Path

        benchmarks = Path(__file__).resolve().parent.parent / "benchmarks"
        sys.path.insert(0, str(benchmarks))
        try:
            import run_all

            assert len(run_all.FIGURES) >= 10
            keys = [entry[0] for entry in run_all.FIGURES]
            assert len(keys) == len(set(keys))
            for key, title, columns, generator in run_all.FIGURES:
                assert callable(generator), key
                assert columns, key
        finally:
            sys.path.remove(str(benchmarks))


class TestOracleDeterminism:
    def test_generate_oracle_deterministic(self, small_w):
        from repro.data import generate_oracle

        first = generate_oracle(small_w, seed=3, max_population=5000)
        second = generate_oracle(small_w, seed=3, max_population=5000)
        assert first.rows == second.rows
