"""Parametric dataset generator — the Figure 6 grid.

Dataset codes follow the paper: ``R25A4W`` = 25k rows, 4
quasi-identifiers, real-world-fitted distribution; ``U``/``V`` are the
(very) unbalanced variants.  :func:`generate_dataset` accepts either a
code or explicit parameters, and a ``scale`` divisor so the benchmark
suite can run the same grid CI-sized while ``--paper-scale`` runs the
original row counts.

Sampling weights follow Section 2.1: the weight of a tuple estimates
the number of identity-oracle entities sharing its quasi-identifier
combination, so we draw a population multiplier per combination and set
``W = sample_frequency x multiplier x noise``.  The matching
:func:`generate_oracle` expands the combinations into an actual
identity oracle consistent with those weights.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..model.microdata import MicrodataDB
from ..model.oracle import IdentityOracle
from ..model.schema import MicrodataSchema, survey_schema
from .distributions import (
    QI_DOMAINS,
    DistributionProfile,
    profile_by_code,
    skewed_probabilities,
)

_CODE_PATTERN = re.compile(r"^R(\d+)A(\d+)([WUV])$", re.IGNORECASE)


class DatasetSpec(NamedTuple):
    """Rows, number of QIs and distribution profile of one dataset."""

    rows: int
    attributes: int
    profile: DistributionProfile

    @property
    def code(self) -> str:
        thousands = self.rows // 1000
        return f"R{thousands}A{self.attributes}{self.profile.code}"


def parse_spec(code: str) -> DatasetSpec:
    """Parse a Figure 6 dataset code like ``R25A4W``."""
    match = _CODE_PATTERN.match(code.strip())
    if not match:
        raise ReproError(
            f"bad dataset code {code!r}; expected e.g. 'R25A4W'"
        )
    thousands, attributes, dist = match.groups()
    return DatasetSpec(
        rows=int(thousands) * 1000,
        attributes=int(attributes),
        profile=profile_by_code(dist),
    )


#: The twelve datasets of Figure 6 (code, real-world/realistic/synth tag).
FIGURE6_GRID: Tuple[Tuple[str, str], ...] = (
    ("R6A4U", "Synth"),
    ("R12A4U", "Synth"),
    ("R25A4W", "Real-world"),
    ("R25A4U", "Realistic"),
    ("R25A4V", "Realistic"),
    ("R50A4W", "Synth"),
    ("R50A4U", "Synth"),
    ("R50A5W", "Synth"),
    ("R50A6W", "Synth"),
    ("R50A8W", "Synth"),
    ("R50A9W", "Synth"),
    ("R100A4U", "Synth"),
)


def generate_dataset(
    code_or_spec,
    seed: int = 20210323,
    scale: int = 1,
    population_multiplier: float = 40.0,
) -> MicrodataDB:
    """Generate a microdata DB for a Figure 6 code (or DatasetSpec).

    ``scale`` divides the row count (>=1), keeping the distribution
    intact — used to run the paper grid at laptop/CI size.
    """
    spec = (
        code_or_spec
        if isinstance(code_or_spec, DatasetSpec)
        else parse_spec(code_or_spec)
    )
    if spec.attributes < 1 or spec.attributes > len(QI_DOMAINS):
        raise ReproError(
            f"attribute count must be 1..{len(QI_DOMAINS)}, got "
            f"{spec.attributes}"
        )
    if scale < 1:
        raise ReproError(f"scale must be >= 1, got {scale}")
    rows = max(10, spec.rows // scale)
    rng = np.random.default_rng(seed)
    domains = QI_DOMAINS[: spec.attributes]
    profile = spec.profile

    columns: Dict[str, np.ndarray] = {}
    outliers = rng.random(rows) < profile.outlier_rate
    for domain in domains:
        probabilities = skewed_probabilities(
            domain.probabilities, profile.skew
        )
        common = rng.choice(
            np.array(domain.values, dtype=object), size=rows, p=probabilities
        )
        pool = np.array(
            domain.rare_values + domain.values, dtype=object
        )
        rare = rng.choice(pool, size=rows)
        columns[domain.name] = np.where(outliers, rare, common)

    qi_names = [domain.name for domain in domains]

    # Structured unbalance (the V profile): isolated extreme outliers
    # plus families of small clusters (see DistributionProfile docs).
    n_extreme = int(rows * profile.extreme_rate)
    n_family = int(rows * profile.family_rate)
    if n_extreme or n_family:
        shuffled = rng.permutation(rows)
        extreme_rows = shuffled[:n_extreme]
        family_rows = shuffled[n_extreme : n_extreme + n_family]
        for position, index in enumerate(extreme_rows):
            for name in qi_names:
                columns[name][index] = f"XR-{name}-{position}"
        family_size = 12  # 4 variants x 3 copies
        copies = 3
        varied = qi_names[0]
        for family_start in range(0, len(family_rows), family_size):
            members = family_rows[family_start : family_start + family_size]
            base = {
                domain.name: rng.choice(
                    np.array(
                        domain.rare_values + domain.values, dtype=object
                    )
                )
                for domain in domains
            }
            for member_position, index in enumerate(members):
                variant = member_position // copies
                for name in qi_names:
                    columns[name][index] = base[name]
                columns[varied][index] = f"FV-{family_start}-{variant}"
    combos = list(zip(*(columns[name] for name in qi_names)))
    frequency = Counter(combos)

    # Weights: population multiplier per combination, lognormal noise.
    multiplier = {
        combo: population_multiplier * rng.lognormal(0.0, 0.35)
        for combo in frequency
    }
    weights = [
        max(
            1.0,
            round(
                multiplier[combo] * rng.lognormal(0.0, 0.15), 1
            ),
        )
        for combo in combos
    ]

    schema = survey_schema(
        identifiers=["Id"],
        quasi_identifiers=qi_names,
        non_identifying=["Growth6mos"],
        weight="Weight",
    )
    growth = rng.normal(3.0, 18.0, size=rows).round(1)
    records = []
    for index in range(rows):
        record = {"Id": f"{seed % 997:03d}{index:07d}"}
        for name in qi_names:
            record[name] = columns[name][index]
        record["Growth6mos"] = float(growth[index])
        record["Weight"] = weights[index]
        records.append(record)
    return MicrodataDB(spec.code, schema, records)


def generate_oracle(
    db: MicrodataDB,
    seed: int = 77,
    max_population: Optional[int] = None,
) -> IdentityOracle:
    """Expand a microdata DB into a consistent identity oracle.

    Every microdata row spawns a cohort of oracle identities sharing
    its quasi-identifier combination, sized by the row's sampling
    weight divided by the combination's sample frequency (so the total
    cohort of a combination ≈ its weight, as Section 2.2 prescribes:
    W_t estimates |σ_t(M) ⋈ O|).
    """
    rng = np.random.default_rng(seed)
    qi_names = list(db.quasi_identifiers)
    combos = [db.qi_values(i) for i in range(len(db))]
    frequency = Counter(combos)
    rows: List[Dict] = []
    identity = 0
    for index in range(len(db)):
        weight = db.weight_of(index)
        cohort = max(1, int(round(weight / frequency[combos[index]])))
        if max_population is not None:
            remaining = max_population - len(rows)
            if remaining <= 0:
                break
            cohort = min(cohort, remaining)
        source = db.rows[index]
        for _ in range(cohort):
            identity += 1
            record = {name: source[name] for name in qi_names}
            record["Id"] = f"O{identity:09d}"
            record["Identity"] = f"entity-{identity}"
            rows.append(record)
    # The microdata rows themselves are in the population: reuse their
    # direct identifier for one cohort member each, so a direct-id join
    # re-identifies exactly one oracle tuple.
    cursor = 0
    for index in range(len(db)):
        if cursor >= len(rows):
            break
        rows[cursor]["Id"] = db.rows[index].get("Id", rows[cursor]["Id"])
        cohort = max(1, int(round(db.weight_of(index) /
                                  frequency[combos[index]])))
        cursor += cohort
    rng.shuffle(rows)
    return IdentityOracle(["Id"], qi_names, "Identity", rows)


def figure6_datasets(
    scale: int = 10, seed: int = 20210323
) -> List[MicrodataDB]:
    """Generate the full Figure 6 grid (scaled by default)."""
    return [
        generate_dataset(code, seed=seed, scale=scale)
        for code, _ in FIGURE6_GRID
    ]
