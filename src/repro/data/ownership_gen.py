"""Random company-ownership graphs (the Fig. 7d sweep).

The business-knowledge experiment varies the number of *inferred
control relationships* from 0 to 400 over the 25k-row survey datasets.
This generator builds shareholding graphs whose control closure yields
(approximately, then trimmed to exactly) a requested number of control
pairs among the companies of a microdata DB, mixing direct majorities
with joint-control patterns so the recursive Rule 2 is exercised.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..business.ownership import OwnershipGraph
from ..errors import ReproError
from ..model.microdata import MicrodataDB


def generate_ownership(
    companies: Sequence[str],
    relationships: int,
    seed: int = 7,
    joint_fraction: float = 0.25,
) -> OwnershipGraph:
    """A shareholding graph with ~``relationships`` control pairs.

    Direct patterns contribute one control pair per edge; joint
    patterns (X owns 60% of A and B; A and B each own 30% of Y) add
    three pairs via the recursive rule.  Chains are kept short so the
    pair count stays predictable; the exact closure size is the
    caller's to measure via ``control_relation()``.
    """
    if relationships < 0:
        raise ReproError("relationships must be >= 0")
    rng = np.random.default_rng(seed)
    pool = list(dict.fromkeys(companies))
    if relationships and len(pool) < 4:
        raise ReproError("need at least 4 companies to build control links")
    graph = OwnershipGraph()
    used: set = set()
    produced = 0

    def take(count: int) -> Optional[List[str]]:
        available = [c for c in pool if c not in used]
        if len(available) < count:
            return None
        picked = list(
            rng.choice(np.array(available, dtype=object), size=count,
                       replace=False)
        )
        used.update(picked)
        return picked

    while produced < relationships:
        remaining = relationships - produced
        if remaining >= 3 and rng.random() < joint_fraction:
            quartet = take(4)
            if quartet is None:
                break
            x, a, b, y = quartet
            graph.add_share(x, a, round(rng.uniform(0.55, 0.9), 2))
            graph.add_share(x, b, round(rng.uniform(0.55, 0.9), 2))
            graph.add_share(a, y, round(rng.uniform(0.28, 0.4), 2))
            graph.add_share(b, y, round(rng.uniform(0.28, 0.4), 2))
            produced += 3  # (x,a), (x,b), (x,y)
        else:
            pair = take(2)
            if pair is None:
                break
            owner, owned = pair
            graph.add_share(owner, owned, round(rng.uniform(0.55, 0.95), 2))
            produced += 1
    return graph


def ownership_for_db(
    db: MicrodataDB,
    relationships: int,
    seed: int = 7,
    company_attribute: Optional[str] = None,
) -> OwnershipGraph:
    """Ownership over the companies appearing in a microdata DB."""
    if company_attribute is None:
        identifiers = db.schema.identifiers
        if not identifiers:
            raise ReproError("dataset has no identifier column")
        company_attribute = identifiers[0]
    companies = [str(row[company_attribute]) for row in db.rows]
    return generate_ownership(companies, relationships, seed=seed)
