"""repro.data — survey fixtures and synthetic dataset generators
(Figures 1, 5 and 6)."""

from .distributions import (
    PROFILES,
    QI_DOMAINS,
    AttributeDomain,
    DistributionProfile,
    profile_by_code,
    skewed_probabilities,
)
from .hierarchies import survey_hierarchy
from .scenarios import (
    household_hierarchy,
    household_survey,
    housing_hierarchy,
    housing_market,
)
from .generator import (
    FIGURE6_GRID,
    DatasetSpec,
    figure6_datasets,
    generate_dataset,
    generate_oracle,
    parse_spec,
)
from .ownership_gen import generate_ownership, ownership_for_db
from .survey import (
    city_fragment,
    city_schema,
    figure4_categories,
    inflation_growth_fragment,
    inflation_growth_schema,
)

__all__ = [
    "AttributeDomain",
    "DatasetSpec",
    "DistributionProfile",
    "FIGURE6_GRID",
    "PROFILES",
    "QI_DOMAINS",
    "city_fragment",
    "city_schema",
    "figure4_categories",
    "figure6_datasets",
    "generate_dataset",
    "generate_oracle",
    "generate_ownership",
    "inflation_growth_fragment",
    "inflation_growth_schema",
    "ownership_for_db",
    "parse_spec",
    "profile_by_code",
    "skewed_probabilities",
    "survey_hierarchy",
    "household_hierarchy",
    "household_survey",
    "housing_hierarchy",
    "housing_market",
]
