"""The Inflation & Growth Survey fixtures (Figures 1, 4 and 5).

``inflation_growth_fragment`` is the 20-tuple microdata DB of Figure 1,
used throughout the paper's running examples: re-identification risk is
highest for tuple 15 (1/30 ≈ 0.033) and lowest for tuple 7 (1/300 ≈
0.003); tuple 4 is the only North/Textiles/1000+ company.

``city_fragment`` is the 7-tuple example of Figure 5a (all attributes
quasi-identifying, no weight), on which local suppression of tuple 1's
Sector yields the frequencies of Figure 5b under maybe-match semantics.

Note: the paper's Figure 4 Category table disagrees with the Section
2.2 text about ``Export Rev.`` / ``Export to DE`` / ``Growth``; we
follow the Section 2.2 text for the Figure 1 schema (it is the one the
risk numbers are computed from) and expose the Figure 4 table verbatim
as :func:`figure4_categories` for the categorization tests.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..model.schema import AttributeCategory, MicrodataSchema, survey_schema
from ..model.microdata import MicrodataDB

#: Attribute order of Figure 1.
IG_ATTRIBUTES = (
    "Id",
    "Area",
    "Sector",
    "Employees",
    "Residential Rev.",
    "Export Rev.",
    "Export to DE",
    "Growth6mos",
    "Weight",
)

_IG_ROWS: List[Tuple] = [
    ("612276", "North", "Public Service", "50-200", "0-30", "0-30", "30-60", 2, 230),
    ("737536", "South", "Commerce", "201-1000", "0-30", "90+", "0-30", -1, 190),
    ("971906", "Center", "Commerce", "1000+", "0-30", "30-60", "0-30", 4, 70),
    ("589681", "North", "Textiles", "1000+", "90+", "0-30", "0-30", 30, 60),
    ("419410", "North", "Construction", "1000+", "90+", "0-30", "0-30", 300, 50),
    ("972915", "North", "Other", "1000+", "0-30", "0-30", "30-60", 50, 70),
    ("501118", "North", "Other", "201-1000", "60-90", "90+", "90+", -20, 300),
    ("815363", "North", "Textiles", "201-1000", "60-90", "30-60", "90+", 2, 230),
    ("490065", "South", "Public Service", "50-200", "0-30", "0-30", "0-30", 12, 123),
    ("415487", "South", "Commerce", "1000+", "0-30", "0-30", "90+", 3, 145),
    ("399087", "South", "Commerce", "50-200", "30-60", "0-30", "30-60", 2, 70),
    ("170034", "Center", "Commerce", "1000+", "60-90", "0-30", "0-30", 45, 90),
    ("724905", "Center", "Construction", "201-1000", "0-30", "30-60", "0-30", 2, 200),
    ("554475", "Center", "Other", "50-200", "0-30", "90+", "0-30", 0, 104),
    ("946251", "Center", "Public Service", "201-1000", "30-60", "90+", "90+", 150, 30),
    ("581077", "North", "Textiles", "50-200", "0-30", "60-90", "30-60", -20, 160),
    ("765562", "South", "Textiles", "50-200", "0-30", "60-90", "0-30", -7, 200),
    ("154840", "Center", "Commerce", "201-1000", "0-30", "60-90", "0-30", 4, 220),
    ("600837", "Center", "Construction", "50-200", "0-30", "60-90", "0-30", 20, 190),
    ("220712", "Center", "Financial", "1000+", "30-60", "60-90", "30-60", -30, 90),
]


def inflation_growth_schema() -> MicrodataSchema:
    """The Figure 1 schema, categorized per the Section 2.2 text."""
    return survey_schema(
        identifiers=["Id"],
        quasi_identifiers=[
            "Area",
            "Sector",
            "Employees",
            "Residential Rev.",
            "Export Rev.",
        ],
        non_identifying=["Export to DE", "Growth6mos"],
        weight="Weight",
        descriptions={
            "Id": "Company Identifier",
            "Area": "Geographic Area",
            "Sector": "Product Sector",
            "Employees": "Num. of employees",
            "Residential Rev.": "Rev. from internal market",
            "Export Rev.": "Rev. from external market",
            "Export to DE": "Rev. from DE market",
            "Growth6mos": "Rev. growth last 6 mths",
            "Weight": "Sampling Weight",
        },
    )


def inflation_growth_fragment(name: str = "I&G") -> MicrodataDB:
    """The 20-tuple Figure 1 fragment as a MicrodataDB."""
    rows = [dict(zip(IG_ATTRIBUTES, values)) for values in _IG_ROWS]
    return MicrodataDB(name, inflation_growth_schema(), rows)


def figure4_categories() -> Dict[str, AttributeCategory]:
    """The Figure 4 Category table, verbatim (see module docstring for
    the discrepancy with the Section 2.2 text)."""
    c = AttributeCategory
    return {
        "Id": c.IDENTIFIER,
        "Area": c.QUASI_IDENTIFIER,
        "Sector": c.QUASI_IDENTIFIER,
        "Employees": c.QUASI_IDENTIFIER,
        "Residential Rev.": c.QUASI_IDENTIFIER,
        "Export Rev.": c.NON_IDENTIFYING,
        "Export to DE": c.QUASI_IDENTIFIER,
        "Growth": c.QUASI_IDENTIFIER,
        "Weight": c.WEIGHT,
    }


#: Figure 5a attribute order.
CITY_ATTRIBUTES = ("Id", "Area", "Sector", "Employees", "Residential Revenue")

_CITY_ROWS: List[Tuple] = [
    ("099876", "Roma", "Textiles", "1000+", "0-30"),
    ("765389", "Roma", "Commerce", "1000+", "0-30"),
    ("231654", "Roma", "Commerce", "1000+", "0-30"),
    ("097302", "Roma", "Financial", "1000+", "0-30"),
    ("120967", "Roma", "Financial", "1000+", "0-30"),
    ("232498", "Milano", "Construction", "0-200", "60-90"),
    ("340901", "Torino", "Construction", "0-200", "60-90"),
]


def city_schema() -> MicrodataSchema:
    """Figure 5a: Id is the direct identifier, everything else a QI,
    no sampling weight."""
    return survey_schema(
        identifiers=["Id"],
        quasi_identifiers=["Area", "Sector", "Employees",
                           "Residential Revenue"],
    )


def city_fragment(name: str = "Cities") -> MicrodataDB:
    """The 7-tuple Figure 5a microdata DB."""
    rows = [dict(zip(CITY_ATTRIBUTES, values)) for values in _CITY_ROWS]
    return MicrodataDB(name, city_schema(), rows)
