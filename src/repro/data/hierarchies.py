"""Domain hierarchies for the synthetic survey attributes.

Global recoding (Algorithm 8) needs roll-up knowledge per attribute;
this module builds a :class:`~repro.model.hierarchy.DomainHierarchy`
covering every QI domain of the Figure 6 generator, so recoding-based
anonymization runs on the synthetic datasets too:

* ``Area``: the macro-areas roll up to ``Italy`` (and the rare pool to
  a catch-all ``OtherArea``);
* ``Sector``: sectors roll up to ``Goods`` / ``Services`` super-sectors;
* numeric band attributes (``Employees``, revenue shares, ``Firm Age``,
  ``Turnover``): fine bands roll up to coarse low/high bands and then
  to ``any``;
* ``Legal Form``: forms roll up to ``Company``.
"""

from __future__ import annotations

from ..model.hierarchy import DomainHierarchy

_SECTOR_GROUPS = {
    "Goods": ["Textiles", "Construction", "Mining", "Aerospace",
              "Shipbuilding", "Tobacco"],
    "Services": ["Commerce", "Public Service", "Financial", "Other"],
}

_BAND_LEVELS = {
    "Employees": (
        ["0-50", "50-200", "201-1000", "1000+", "10000+"],
        ["small", "large"],
    ),
    "Residential Rev.": (
        ["negative", "0-30", "30-60", "60-90", "90+"],
        ["low", "high"],
    ),
    "Export Rev.": (
        ["negative", "0-30", "30-60", "60-90", "90+"],
        ["low", "high"],
    ),
    "Export to DE": (
        ["negative", "0-30", "30-60", "60-90", "90+"],
        ["low", "high"],
    ),
    "Firm Age": (
        ["0-5", "6-15", "16-40", "40+", "100+"],
        ["young", "established"],
    ),
    "Turnover": (
        ["0-1M", "1-10M", "10-100M", "100M+", "1B+"],
        ["small-cap", "large-cap"],
    ),
}

_AREAS = ["North", "Center", "South", "Islands", "Abroad"]
_LEGAL_FORMS = ["Srl", "SpA", "Snc", "Coop", "SApA", "Foreign"]


def survey_hierarchy() -> DomainHierarchy:
    """Roll-up knowledge for all nine synthetic QI domains."""
    hierarchy = DomainHierarchy()

    # Area: macro-areas -> Italy.
    hierarchy.set_attribute_type("Area", "MacroArea")
    hierarchy.add_subtype("MacroArea", "Country")
    hierarchy.add_instance("Italy", "Country")
    for area in _AREAS:
        hierarchy.add_instance(area, "MacroArea")
        hierarchy.add_is_a(area, "Italy")

    # Sector: sectors -> super-sectors -> economy.
    hierarchy.set_attribute_type("Sector", "Sector")
    hierarchy.add_subtype("Sector", "SuperSector")
    hierarchy.add_subtype("SuperSector", "Economy")
    hierarchy.add_instance("Economy", "Economy")
    for super_sector, sectors in _SECTOR_GROUPS.items():
        hierarchy.add_instance(super_sector, "SuperSector")
        hierarchy.add_is_a(super_sector, "Economy")
        for sector in sectors:
            hierarchy.add_instance(sector, "Sector")
            hierarchy.add_is_a(sector, super_sector)

    # Legal form: forms -> Company.
    hierarchy.set_attribute_type("Legal Form", "LegalForm")
    hierarchy.add_subtype("LegalForm", "LegalAny")
    hierarchy.add_instance("Company", "LegalAny")
    for form in _LEGAL_FORMS:
        hierarchy.add_instance(form, "LegalForm")
        hierarchy.add_is_a(form, "Company")

    # Banded numeric attributes: fine band -> coarse band -> any.
    for attribute, (fine, coarse) in _BAND_LEVELS.items():
        type_fine = f"{attribute} band"
        type_coarse = f"{attribute} group"
        type_any = f"{attribute} any"
        hierarchy.set_attribute_type(attribute, type_fine)
        hierarchy.add_subtype(type_fine, type_coarse)
        hierarchy.add_subtype(type_coarse, type_any)
        top = f"any {attribute}"
        hierarchy.add_instance(top, type_any)
        split = (len(fine) + 1) // 2
        for level_name in coarse:
            hierarchy.add_instance(level_name, type_coarse)
            hierarchy.add_is_a(level_name, top)
        for position, band in enumerate(fine):
            hierarchy.add_instance(band, type_fine)
            target = coarse[0] if position < split else coarse[1]
            hierarchy.add_is_a(band, target)

    return hierarchy
