"""Quasi-identifier value distributions: W, U and V (Figure 6).

The paper's synthetic datasets are generated "by fitting the real-world
distribution (W) or by inducing specific unbalanced (U) or very
unbalanced (V) distributions", where unbalanced means "many tuples with
very selective combinations of quasi-identifiers".

We model each quasi-identifier as a categorical domain with a skewed
marginal (fitted to the Inflation & Growth survey shape for the four
base attributes) plus a pool of *rare* values.  A dataset profile is
then (marginal skew, outlier rate): outlier tuples draw their values
uniformly from the rare pools, producing the highly selective
combinations that drive disclosure risk.

========  ============  ===========================================
profile   outlier rate  intent
========  ============  ===========================================
``W``     0.2%          real-world tail of special firms
``U``     1.5%          unbalanced: noticeably more risky tuples
``V``     5%            very unbalanced: globally risky dataset
========  ============  ===========================================
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Sequence, Tuple

from ..errors import ReproError


class AttributeDomain(NamedTuple):
    """A categorical QI domain: common values with probabilities, plus
    a rare pool for outlier tuples."""

    name: str
    values: Tuple[str, ...]
    probabilities: Tuple[float, ...]
    rare_values: Tuple[str, ...]


def _domain(name, weighted_values, rare_values):
    values = tuple(v for v, _ in weighted_values)
    raw = [w for _, w in weighted_values]
    total = sum(raw)
    return AttributeDomain(
        name,
        values,
        tuple(w / total for w in raw),
        tuple(rare_values),
    )


#: The nine QI domains backing the R*A4..R*A9 datasets; the first four
#: mirror the Figure 1 survey attributes.
QI_DOMAINS: Tuple[AttributeDomain, ...] = (
    _domain(
        "Area",
        [("North", 0.45), ("Center", 0.33), ("South", 0.22)],
        ["Islands", "Abroad"],
    ),
    _domain(
        "Sector",
        [
            ("Commerce", 0.30),
            ("Public Service", 0.22),
            ("Construction", 0.18),
            ("Other", 0.15),
            ("Textiles", 0.10),
            ("Financial", 0.05),
        ],
        ["Mining", "Aerospace", "Shipbuilding", "Tobacco"],
    ),
    _domain(
        "Employees",
        [("50-200", 0.55), ("201-1000", 0.33), ("1000+", 0.12)],
        ["10000+", "0-50"],
    ),
    _domain(
        "Residential Rev.",
        [("0-30", 0.52), ("30-60", 0.26), ("60-90", 0.15), ("90+", 0.07)],
        ["negative"],
    ),
    _domain(
        "Export Rev.",
        [("0-30", 0.48), ("30-60", 0.24), ("60-90", 0.18), ("90+", 0.10)],
        ["negative"],
    ),
    _domain(
        "Export to DE",
        [("0-30", 0.62), ("30-60", 0.21), ("60-90", 0.11), ("90+", 0.06)],
        ["negative"],
    ),
    _domain(
        "Firm Age",
        [("0-5", 0.22), ("6-15", 0.37), ("16-40", 0.30), ("40+", 0.11)],
        ["100+"],
    ),
    _domain(
        "Legal Form",
        [("Srl", 0.52), ("SpA", 0.23), ("Snc", 0.15), ("Coop", 0.10)],
        ["SApA", "Foreign"],
    ),
    _domain(
        "Turnover",
        [("0-1M", 0.43), ("1-10M", 0.33), ("10-100M", 0.18), ("100M+", 0.06)],
        ["1B+"],
    ),
)


class DistributionProfile(NamedTuple):
    """Parameters of one distribution tweak.

    * ``outlier_rate`` — fraction of rows whose QI values are drawn
      from the rare pools independently (dispersed selective tuples);
    * ``extreme_rate`` — fraction of rows given globally unique values
      on *every* QI: isolated outliers that cost several suppressions
      each (the expensive head of V);
    * ``family_rate`` — fraction of rows arranged into families of
      small clusters (triplets sharing all but one QI): risky only at
      higher k and cheap to fix collectively, which is what makes V's
      information loss *drop* as k grows (Fig. 7b);
    * ``skew`` — marginal skew boost.
    """

    code: str
    outlier_rate: float
    extreme_rate: float
    family_rate: float
    skew: float


PROFILES: Dict[str, DistributionProfile] = {
    "W": DistributionProfile("W", 0.002, 0.0, 0.0, 1.0),
    "U": DistributionProfile("U", 0.015, 0.0, 0.0, 1.6),
    "V": DistributionProfile("V", 0.010, 0.015, 0.10, 2.4),
}


def profile_by_code(code: str) -> DistributionProfile:
    try:
        return PROFILES[code.upper()]
    except KeyError:
        raise ReproError(
            f"unknown distribution code {code!r}; expected one of "
            f"{sorted(PROFILES)}"
        ) from None


def skewed_probabilities(
    probabilities: Sequence[float], skew: float
) -> List[float]:
    """Raise a marginal to the ``skew`` power and renormalize — higher
    skew concentrates mass on the already-common values, thinning the
    tail and making the rare combinations rarer (more selective)."""
    powered = [p ** skew for p in probabilities]
    total = sum(powered)
    return [p / total for p in powered]
