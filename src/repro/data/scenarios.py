"""Scenario generators for the other RDC microdata DBs (Section 2).

Beyond the Inflation & Growth survey, the Bank of Italy RDC stores
microdata about "families and individuals, firms, and historical data";
the paper names, among others, *Household income and wealth* and the
*Italian housing market*.  These generators produce schema-faithful
synthetic stand-ins so the framework's schema independence can be
demonstrated on genuinely different shapes:

* :func:`household_survey` — individuals nested in households
  (hierarchical respondents: the household id drives household-level
  risk, Section 4.4);
* :func:`housing_market` — property transactions with a
  municipality/zone geography amenable to global recoding.

Both come with a matching :class:`~repro.model.hierarchy.DomainHierarchy`
accessor so recoding works out of the box.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..model.hierarchy import DomainHierarchy
from ..model.microdata import MicrodataDB
from ..model.schema import survey_schema

_REGIONS = {
    "North": ["Milano", "Torino", "Venezia"],
    "Center": ["Roma", "Firenze"],
    "South": ["Napoli", "Bari", "Palermo"],
}

_OCCUPATIONS = [
    ("Employee", 0.48),
    ("Self-employed", 0.18),
    ("Retired", 0.20),
    ("Student", 0.08),
    ("Unemployed", 0.06),
]

_AGE_BANDS = [("18-30", 0.18), ("31-45", 0.28), ("46-65", 0.34),
              ("65+", 0.20)]

_INCOME_BANDS = [("0-15k", 0.25), ("15-30k", 0.38), ("30-60k", 0.27),
                 ("60k+", 0.10)]


def household_survey(
    households: int = 400,
    seed: int = 4242,
    name: str = "HH-Income",
) -> MicrodataDB:
    """Household income & wealth style microdata: one row per
    *individual*, 1-5 individuals per household."""
    rng = np.random.default_rng(seed)
    rows = []
    person = 0
    cities = [c for group in _REGIONS.values() for c in group]
    for household in range(households):
        size = int(rng.integers(1, 6))
        city = str(rng.choice(cities))
        income = _weighted(rng, _INCOME_BANDS)
        for _ in range(size):
            person += 1
            rows.append(
                {
                    "PersonId": f"P{person:07d}",
                    "HouseholdId": f"H{household:06d}",
                    "City": city,
                    "AgeBand": _weighted(rng, _AGE_BANDS),
                    "Occupation": _weighted(rng, _OCCUPATIONS),
                    "IncomeBand": income,
                    "WealthIndex": round(float(rng.lognormal(3, 0.8)), 1),
                    "Weight": float(rng.integers(20, 400)),
                }
            )
    schema = survey_schema(
        identifiers=["PersonId"],
        quasi_identifiers=["City", "AgeBand", "Occupation",
                           "IncomeBand"],
        non_identifying=["HouseholdId", "WealthIndex"],
        weight="Weight",
        descriptions={
            "PersonId": "Individual identifier",
            "HouseholdId": "Household code (drives household risk)",
            "City": "Municipality of residence",
            "AgeBand": "Age band",
            "Occupation": "Occupational status",
            "IncomeBand": "Net yearly income band",
            "WealthIndex": "Synthetic wealth index",
            "Weight": "Sampling weight",
        },
    )
    return MicrodataDB(name, schema, rows)


def household_hierarchy() -> DomainHierarchy:
    """Geography + band roll-ups for the household survey."""
    hierarchy = DomainHierarchy()
    hierarchy.set_attribute_type("City", "City")
    hierarchy.add_subtype("City", "Region")
    hierarchy.add_subtype("Region", "Country")
    hierarchy.add_instance("Italy", "Country")
    for region, cities in _REGIONS.items():
        hierarchy.add_instance(region, "Region")
        hierarchy.add_is_a(region, "Italy")
        for city in cities:
            hierarchy.add_instance(city, "City")
            hierarchy.add_is_a(city, region)
    for attribute, levels in (
        ("AgeBand", (["18-30", "31-45", "46-65", "65+"],
                     ["working-age", "senior"])),
        ("IncomeBand", (["0-15k", "15-30k", "30-60k", "60k+"],
                        ["lower", "upper"])),
    ):
        fine, coarse = levels
        type_fine = f"{attribute} band"
        type_coarse = f"{attribute} group"
        hierarchy.set_attribute_type(attribute, type_fine)
        hierarchy.add_subtype(type_fine, type_coarse)
        split = (len(fine) + 1) // 2
        for level_name in coarse:
            hierarchy.add_instance(level_name, type_coarse)
        for position, band in enumerate(fine):
            hierarchy.add_instance(band, type_fine)
            hierarchy.add_is_a(
                band, coarse[0] if position < split else coarse[1]
            )
    return hierarchy


_ZONES = ["Centro", "Semicentro", "Periferia"]
_PROPERTY_TYPES = [("Apartment", 0.62), ("House", 0.22),
                   ("Commercial", 0.10), ("Land", 0.06)]
_PRICE_BANDS = [("0-100k", 0.22), ("100-250k", 0.42),
                ("250-500k", 0.24), ("500k+", 0.12)]


def housing_market(
    transactions: int = 800,
    seed: int = 777,
    name: str = "Housing",
) -> MicrodataDB:
    """Italian housing market style microdata: one row per
    transaction."""
    rng = np.random.default_rng(seed)
    cities = [c for group in _REGIONS.values() for c in group]
    rows = []
    for index in range(transactions):
        rows.append(
            {
                "DeedId": f"D{index:08d}",
                "City": str(rng.choice(cities)),
                "Zone": str(rng.choice(_ZONES, p=[0.25, 0.35, 0.40])),
                "PropertyType": _weighted(rng, _PROPERTY_TYPES),
                "PriceBand": _weighted(rng, _PRICE_BANDS),
                "SqmBand": str(
                    rng.choice(["0-50", "50-100", "100-200", "200+"],
                               p=[0.2, 0.45, 0.28, 0.07])
                ),
                "DiscountPct": round(float(rng.normal(8, 5)), 1),
                "Weight": float(rng.integers(10, 200)),
            }
        )
    schema = survey_schema(
        identifiers=["DeedId"],
        quasi_identifiers=["City", "Zone", "PropertyType", "PriceBand",
                           "SqmBand"],
        non_identifying=["DiscountPct"],
        weight="Weight",
    )
    return MicrodataDB(name, schema, rows)


def housing_hierarchy() -> DomainHierarchy:
    """Geography roll-up for the housing market dataset."""
    hierarchy = DomainHierarchy()
    hierarchy.set_attribute_type("City", "City")
    hierarchy.add_subtype("City", "Region")
    for region, cities in _REGIONS.items():
        hierarchy.add_instance(region, "Region")
        for city in cities:
            hierarchy.add_instance(city, "City")
            hierarchy.add_is_a(city, region)
    return hierarchy


def _weighted(rng, weighted_values) -> str:
    values = [value for value, _ in weighted_values]
    weights = np.array([weight for _, weight in weighted_values])
    return str(rng.choice(values, p=weights / weights.sum()))
