"""Differential conformance harness.

Everything needed to falsify a chase-engine optimization:

* :mod:`repro.testing.compare` — fact-set comparison up to
  labelled-null isomorphism (and the weaker homomorphic equivalence
  that restricted-chase firing-order divergence requires);
* :mod:`repro.testing.generator` — an iWarded-style random generator
  of warded programs (linear rules, harmless/harmful joins, negation,
  EGDs, monotonic aggregates, existentials) plus random fact bases;
* :mod:`repro.testing.conformance` — the runner that executes the
  production :class:`~repro.vadalog.chase.ChaseEngine` and the naive
  :mod:`~repro.vadalog.reference` oracle on the same inputs, diffs the
  models, minimizes failures and emits replayable seed artifacts.

Run from the command line::

    python -m repro.testing.conformance --seed 20260805 --examples 300
    python -m repro.testing.conformance --replay artifact.json
"""

from .compare import (
    ComparisonResult,
    compare_fact_sets,
    homomorphism_exists,
    homomorphically_equivalent,
    isomorphic,
)
from .generator import GeneratorConfig, generate_program
from .conformance import (
    ConformanceOutcome,
    ConformanceReport,
    run_conformance,
    run_one,
)

__all__ = [
    "ComparisonResult",
    "compare_fact_sets",
    "homomorphism_exists",
    "homomorphically_equivalent",
    "isomorphic",
    "GeneratorConfig",
    "generate_program",
    "ConformanceOutcome",
    "ConformanceReport",
    "run_conformance",
    "run_one",
]
