"""Random warded-program generation, after iWarded.

iWarded ("iWarded: A System for Benchmarking Datalog+/- Reasoning")
generates warded Datalog± scenarios by controlling the *join structure*
of rules: linear rules, harmless joins (join variables that can never
bind a labelled null) and harmful joins (join variables at affected
positions).  This module grows random programs in that spirit, with
knobs for every feature the chase supports:

* linear vs join rules (``p_linear``, ``max_body_atoms``);
* existential heads — the source of labelled nulls, and hence of
  harmful joins downstream (``p_existential``, ``p_multi_head``);
* stratified negation, safe and stratifiable **by construction**: a
  rule deriving ``p_i`` may only negate EDB predicates or ``p_j`` with
  ``j < i``, so negative edges always point up the predicate order;
* monotonic aggregates on dedicated head predicates
  (``p_aggregate``), optionally with post-aggregate conditions;
* EGDs (functional dependencies over a binary-or-wider predicate);
* inequality/equality conditions between bound variables;
* confidentiality seeding (``p_identifier_seed``): one EDB position
  is declared ``@category(..., "identifier")`` and filled with unique
  sentinel constants, and every derived predicate is ``@output`` — the
  substrate for the static-vs-dynamic leakage cross-check.

Wardedness is guaranteed by *pruning*: after generation the program is
checked with the engine's own :func:`~repro.vadalog.wardedness.
check_wardedness` analysis and violating rules are dropped until the
report is clean (wardedness is a whole-program property, so this loops
to a fixpoint).

The generator draws every decision from a caller-supplied ``rng``
(anything exposing ``random``/``randint``/``choice``), which makes it
replayable from a seed *and* shrinkable when driven by hypothesis's
``st.randoms()``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import StratificationError
from ..vadalog.atoms import Annotation, Atom, Condition, Literal
from ..vadalog.expressions import BinOp, Lit, VarRef
from ..vadalog.negation import stratify
from ..vadalog.program import Program
from ..vadalog.rules import AggregateSpec, Rule
from ..vadalog.terms import Constant, Variable
from ..vadalog.wardedness import check_wardedness


@dataclass
class GeneratorConfig:
    """Knobs for one generated program/database pair.

    The defaults produce small, feature-dense programs that both
    evaluators finish in milliseconds — the conformance smoke lane runs
    hundreds of them per invocation.
    """

    n_edb: int = 3
    n_idb: int = 4
    min_arity: int = 1
    max_arity: int = 3
    constants: Tuple = ("a", "b", "c", 1, 2)
    min_facts: int = 3
    max_facts: int = 12
    min_rules: int = 2
    max_rules: int = 6
    max_body_atoms: int = 3
    #: Probability of a single-atom (linear, in iWarded's sense) body.
    p_linear: float = 0.4
    #: Probability a non-aggregate rule gets existential head variables.
    p_existential: float = 0.3
    #: Probability an existential rule has a two-atom head sharing the
    #: existential (the joint-homomorphism corner).
    p_multi_head: float = 0.2
    p_negation: float = 0.25
    p_condition: float = 0.2
    p_aggregate: float = 0.2
    #: Probability a generated aggregate gets a post-aggregate
    #: threshold condition.
    p_aggregate_condition: float = 0.3
    max_egds: int = 2
    p_egd: float = 0.35
    #: Probability the program gets confidentiality seeding: one EDB
    #: position is declared ``@category(..., "identifier")`` and filled
    #: with unique sentinel constants, and every derived predicate is
    #: declared ``@output`` — so the conformance harness can cross-check
    #: the static VDL070 verdict against the dynamic disclosure oracle
    #: (:mod:`repro.attack.disclosure`).
    p_identifier_seed: float = 0.85

    def to_dict(self) -> Dict:
        data = asdict(self)
        data["constants"] = list(self.constants)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "GeneratorConfig":
        data = dict(data)
        if "constants" in data:
            data["constants"] = tuple(data["constants"])
        return cls(**data)


#: A fixed pool of variable names; joins arise from drawing the same
#: variable for several positions.
_VAR_POOL = [Variable(name) for name in ("X", "Y", "Z", "U", "V", "W")]


class _Generation:
    """One generation run: predicate pools, rules, facts."""

    def __init__(self, rng, config: GeneratorConfig):
        self.rng = rng
        self.config = config
        self.arities: Dict[str, int] = {}
        self.edb: List[str] = []
        self.idb: List[str] = []
        #: Aggregate head predicates are exclusive to their one rule
        #: (functional emission assumes a single producer).
        self.aggregate_preds: List[str] = []
        for index in range(config.n_edb):
            name = f"e{index}"
            self.edb.append(name)
            self.arities[name] = rng.randint(
                config.min_arity, config.max_arity
            )
        for index in range(config.n_idb):
            name = f"p{index}"
            self.idb.append(name)
            self.arities[name] = rng.randint(
                config.min_arity, config.max_arity
            )
        #: (predicate, position) carrying unique sentinel identifiers,
        #: or ``None`` when the program is generated unseeded.
        self.identifier_position: Optional[Tuple[str, int]] = None
        self._sentinel_count = 0
        if rng.random() < config.p_identifier_seed:
            predicate = rng.choice(self.edb)
            self.identifier_position = (
                predicate,
                rng.randint(0, self.arities[predicate] - 1),
            )

    # -- small draws ----------------------------------------------------

    def constant(self) -> Constant:
        return Constant(self.rng.choice(list(self.config.constants)))

    def _body_atom(
        self, pool: Sequence[str], bound: List[Variable]
    ) -> Atom:
        predicate = self.rng.choice(list(pool))
        terms = []
        for _ in range(self.arities[predicate]):
            roll = self.rng.random()
            if roll < 0.15:
                terms.append(self.constant())
            elif bound and roll < 0.6:
                terms.append(self.rng.choice(bound))
            else:
                variable = self.rng.choice(_VAR_POOL)
                terms.append(variable)
        for term in terms:
            if isinstance(term, Variable) and term not in bound:
                bound.append(term)
        return Atom(predicate, tuple(terms))

    # -- rule generation -------------------------------------------------

    def rule(self, rule_no: int) -> Rule:
        rng = self.rng
        config = self.config
        if rng.random() < config.p_linear:
            n_body = 1
        else:
            n_body = rng.randint(2, config.max_body_atoms)
        body_pool = self.edb + self.idb + self.aggregate_preds
        bound: List[Variable] = []
        body = [
            Literal(self._body_atom(body_pool, bound))
            for _ in range(n_body)
        ]

        if rng.random() < config.p_aggregate:
            return self._aggregate_rule(rule_no, body, bound)

        head_index = rng.randint(0, len(self.idb) - 1)
        head_pred = self.idb[head_index]

        # Negation: only strictly-lower predicates, so stratification
        # holds by construction; all negated variables are body-bound.
        if rng.random() < config.p_negation:
            negatable = self.edb + self.idb[:head_index]
            if negatable:
                predicate = rng.choice(negatable)
                terms = tuple(
                    rng.choice(bound) if bound and rng.random() < 0.8
                    else self.constant()
                    for _ in range(self.arities[predicate])
                )
                body.append(Literal(Atom(predicate, terms), negated=True))

        conditions = []
        if len(bound) >= 2 and rng.random() < config.p_condition:
            left, right = rng.choice(bound), rng.choice(bound)
            if left != right:
                op = "!=" if rng.random() < 0.8 else "=="
                conditions.append(
                    Condition(BinOp(op, VarRef(left), VarRef(right)))
                )

        existentials: List[Variable] = []
        if rng.random() < config.p_existential:
            existentials = [
                Variable(f"E{index}")
                for index in range(rng.randint(1, 2))
            ]

        head_terms = []
        for _ in range(self.arities[head_pred]):
            roll = rng.random()
            if existentials and roll < 0.45:
                head_terms.append(rng.choice(existentials))
            elif bound and roll < 0.9:
                head_terms.append(rng.choice(bound))
            else:
                head_terms.append(self.constant())
        head = [Atom(head_pred, tuple(head_terms))]

        used_existentials = [v for v in existentials if v in head_terms]
        if used_existentials and rng.random() < config.p_multi_head:
            other = rng.choice(self.idb)
            extra_terms = []
            for _ in range(self.arities[other]):
                roll = rng.random()
                if roll < 0.5:
                    extra_terms.append(rng.choice(used_existentials))
                elif bound and roll < 0.9:
                    extra_terms.append(rng.choice(bound))
                else:
                    extra_terms.append(self.constant())
            head.append(Atom(other, tuple(extra_terms)))

        return Rule(
            head,
            body,
            conditions=conditions,
            label=f"r{rule_no}",
            declared_existentials=used_existentials,
        )

    def _aggregate_rule(
        self, rule_no: int, body: List[Literal], bound: List[Variable]
    ) -> Rule:
        rng = self.rng
        config = self.config
        target = Variable("AGG")
        function = rng.choice(["mcount", "msum", "mmax", "mmin"])
        if function == "mcount":
            argument = None
        elif not bound or rng.random() < 0.5:
            argument = Lit(rng.randint(1, 3))
        else:
            argument = VarRef(rng.choice(bound))
        contributors: List[Variable] = []
        if bound:
            contributors = [
                rng.choice(bound)
                for _ in range(rng.randint(1, min(2, len(bound))))
            ]
        if not contributors:
            # Degenerate all-constant body: aggregates need at least
            # one bound contributor, so give the first atom a variable.
            filler = _VAR_POOL[0]
            first = body[0].atom
            new_terms = (filler,) + first.terms[1:]
            body[0] = Literal(Atom(first.predicate, new_terms))
            bound.append(filler)
            contributors = [filler]
        group = [
            v for v in bound
            if v not in contributors and rng.random() < 0.4
        ][:2]
        predicate = f"agg{rule_no}"
        self.arities[predicate] = len(group) + 1
        self.aggregate_preds.append(predicate)
        head = [Atom(predicate, tuple(group) + (target,))]
        conditions = []
        if rng.random() < config.p_aggregate_condition:
            conditions.append(
                Condition(BinOp(">", VarRef(target), Lit(1)))
            )
        return Rule(
            head,
            body,
            conditions=conditions,
            aggregates=[
                AggregateSpec(target, function, argument, contributors)
            ],
            label=f"r{rule_no}",
        )

    # -- EGDs and facts ---------------------------------------------------

    def egds(self):
        from ..vadalog.rules import EGD

        rng = self.rng
        candidates = [
            name
            for name in self.edb + self.idb
            if self.arities[name] >= 2
        ]
        egds = []
        for index in range(self.config.max_egds):
            if not candidates or rng.random() >= self.config.p_egd:
                continue
            predicate = rng.choice(candidates)
            arity = self.arities[predicate]
            key = rng.randint(0, arity - 1)
            dependent = rng.choice(
                [i for i in range(arity) if i != key]
            )
            left_terms = []
            right_terms = []
            equalities = []
            shared = Variable("K")
            for position in range(arity):
                if position == key:
                    left_terms.append(shared)
                    right_terms.append(shared)
                elif position == dependent:
                    left, right = Variable("D1"), Variable("D2")
                    left_terms.append(left)
                    right_terms.append(right)
                    equalities.append((left, right))
                else:
                    left_terms.append(Variable(f"L{position}"))
                    right_terms.append(Variable(f"R{position}"))
            egds.append(
                EGD(
                    [
                        Literal(Atom(predicate, tuple(left_terms))),
                        Literal(Atom(predicate, tuple(right_terms))),
                    ],
                    equalities,
                    label=f"fd{index}_{predicate}",
                )
            )
        return egds

    def facts(self) -> List[Atom]:
        rng = self.rng
        count = rng.randint(self.config.min_facts, self.config.max_facts)
        facts = []
        for _ in range(count):
            predicate = rng.choice(self.edb)
            terms = []
            for index in range(self.arities[predicate]):
                if (predicate, index) == self.identifier_position:
                    # Unique sentinels: never drawn from the shared
                    # constant pool, so one surfacing in an @output
                    # fact is unambiguously a flow from this position.
                    self._sentinel_count += 1
                    terms.append(Constant(f"id!{self._sentinel_count}"))
                else:
                    terms.append(self.constant())
            facts.append(Atom(predicate, tuple(terms)))
        return facts

    def annotations(self, rules: Sequence[Rule]) -> List[Annotation]:
        """Sensitivity/output declarations for the surviving rules."""
        annotations: List[Annotation] = []
        if self.identifier_position is not None:
            predicate, index = self.identifier_position
            annotations.append(
                Annotation("category", (predicate, index, "identifier"))
            )
        derived = sorted(
            {
                predicate
                for rule in rules
                for predicate in rule.head_predicates()
            }
        )
        annotations.extend(
            Annotation("output", (predicate,)) for predicate in derived
        )
        return annotations


def generate_program(
    rng, config: Optional[GeneratorConfig] = None
) -> Program:
    """Generate one warded, stratifiable program with its fact base."""
    config = config or GeneratorConfig()
    generation = _Generation(rng, config)
    n_rules = rng.randint(config.min_rules, config.max_rules)
    rules = [generation.rule(number) for number in range(n_rules)]

    # Prune to wardedness: affected positions are a whole-program
    # fixpoint, so dropping one rule can heal (or expose) others.
    while rules:
        report = check_wardedness(rules)
        if report.is_warded:
            break
        offender = report.violations()[0].rule
        rules = [rule for rule in rules if rule is not offender]

    # Negation is stratifiable by construction; keep the check as a
    # belt-and-braces guard against generator drift.
    while True:
        try:
            stratify(rules)
            break
        except StratificationError:
            rules = [
                rule for rule in rules if not rule.negative_body()
            ]

    if not rules:
        fallback_pred = generation.idb[0]
        source = generation.edb[0]
        width = min(
            generation.arities[fallback_pred], generation.arities[source]
        )
        variables = [Variable(f"X{i}") for i in range(width)]
        body_terms = list(variables) + [
            Variable(f"_a{i}")
            for i in range(generation.arities[source] - width)
        ]
        head_terms = list(variables) + [
            Constant(config.constants[0])
            for _ in range(generation.arities[fallback_pred] - width)
        ]
        rules = [
            Rule(
                [Atom(fallback_pred, tuple(head_terms))],
                [Literal(Atom(source, tuple(body_terms)))],
                label="r_fallback",
            )
        ]

    return Program(
        rules=rules,
        egds=generation.egds(),
        facts=generation.facts(),
        annotations=generation.annotations(rules),
        name="generated",
    )
