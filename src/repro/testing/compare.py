"""Fact-set comparison up to labelled-null renaming.

Two chase runs may invent different null labels for the same model, so
raw set equality is useless for differential testing.  The right
notions, from strongest to weakest:

* **equality** — identical fact sets, labels and all;
* **isomorphism** — a bijection on labelled nulls mapping one fact set
  exactly onto the other (same model, different labels);
* **homomorphic equivalence** — homomorphisms both ways, nulls mapped
  to arbitrary terms.  This is the semantically meaningful notion for
  restricted-chase results: firing order legitimately changes *which*
  existentials are blocked, so two correct runs can differ by facts
  that are homomorphically redundant, while still certifying the same
  certain answers (the null-free part is forced equal by the
  constant-fixing of homomorphisms).

All checks are exact backtracking searches — exponential in the worst
case, fine at conformance-harness instance sizes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..vadalog.atoms import Fact
from ..vadalog.terms import LabelledNull, Term


def _as_fact_set(facts: Iterable[Fact]) -> FrozenSet[Fact]:
    return frozenset(facts)


def _split_by_nulls(
    facts: FrozenSet[Fact],
) -> Tuple[FrozenSet[Fact], List[Fact]]:
    """Partition into (ground facts, facts carrying at least one null)."""
    with_nulls = [
        fact
        for fact in facts
        if any(isinstance(term, LabelledNull) for term in fact.terms)
    ]
    ground = frozenset(facts.difference(with_nulls))
    return ground, with_nulls


def isomorphic(a: Iterable[Fact], b: Iterable[Fact]) -> bool:
    """Is there a bijective null renaming mapping ``a`` exactly onto
    ``b``?"""
    set_a, set_b = _as_fact_set(a), _as_fact_set(b)
    if len(set_a) != len(set_b):
        return False
    ground_a, nulls_a = _split_by_nulls(set_a)
    ground_b, nulls_b = _split_by_nulls(set_b)
    if ground_a != ground_b or len(nulls_a) != len(nulls_b):
        return False
    labels_a = {
        term for fact in nulls_a for term in fact.terms
        if isinstance(term, LabelledNull)
    }
    labels_b = {
        term for fact in nulls_b for term in fact.terms
        if isinstance(term, LabelledNull)
    }
    if len(labels_a) != len(labels_b):
        return False
    # Most-constrained-first: facts with fewer candidate images early.
    nulls_a.sort(key=lambda fact: (fact.predicate, fact.arity))

    def candidates(fact: Fact) -> List[Fact]:
        return [
            other
            for other in nulls_b
            if other.predicate == fact.predicate
            and other.arity == fact.arity
        ]

    used: set = set()

    def search(index: int, mapping: Dict[LabelledNull, Term]) -> bool:
        if index == len(nulls_a):
            return True
        fact = nulls_a[index]
        for image in candidates(fact):
            if image in used:
                continue
            extension: Dict[LabelledNull, Term] = {}
            ok = True
            for term, value in zip(fact.terms, image.terms):
                if isinstance(term, LabelledNull):
                    if not isinstance(value, LabelledNull):
                        ok = False
                        break
                    prior = mapping.get(term, extension.get(term))
                    if prior is None:
                        # Injectivity: no two nulls map to one target.
                        if value in mapping.values() or (
                            value in extension.values()
                        ):
                            ok = False
                            break
                        extension[term] = value
                    elif prior != value:
                        ok = False
                        break
                elif term != value:
                    ok = False
                    break
            if not ok:
                continue
            mapping.update(extension)
            used.add(image)
            if search(index + 1, mapping):
                return True
            used.discard(image)
            for null in extension:
                mapping.pop(null, None)
        return False

    return search(0, {})


def homomorphism_exists(a: Iterable[Fact], b: Iterable[Fact]) -> bool:
    """Is there a homomorphism from ``a`` into ``b``?  Nulls of ``a``
    may map to any term of ``b`` (consistently); constants are fixed."""
    set_b = _as_fact_set(b)
    ground_a, nulls_a = _split_by_nulls(_as_fact_set(a))
    if not ground_a.issubset(set_b):
        return False
    by_pred: Dict[Tuple[str, int], List[Fact]] = {}
    for fact in set_b:
        by_pred.setdefault((fact.predicate, fact.arity), []).append(fact)
    facts = sorted(nulls_a, key=lambda fact: (fact.predicate, fact.arity))

    def search(index: int, mapping: Dict[LabelledNull, Term]) -> bool:
        if index == len(facts):
            return True
        fact = facts[index]
        for image in by_pred.get((fact.predicate, fact.arity), ()):
            extension: Dict[LabelledNull, Term] = {}
            ok = True
            for term, value in zip(fact.terms, image.terms):
                if isinstance(term, LabelledNull):
                    prior = mapping.get(term, extension.get(term))
                    if prior is None:
                        extension[term] = value
                    elif prior != value:
                        ok = False
                        break
                elif term != value:
                    ok = False
                    break
            if not ok:
                continue
            mapping.update(extension)
            if search(index + 1, mapping):
                return True
            for null in extension:
                mapping.pop(null, None)
        return False

    return search(0, {})


def homomorphically_equivalent(
    a: Iterable[Fact], b: Iterable[Fact]
) -> bool:
    """Homomorphisms both ways (same certain answers)."""
    set_a, set_b = _as_fact_set(a), _as_fact_set(b)
    return homomorphism_exists(set_a, set_b) and homomorphism_exists(
        set_b, set_a
    )


class ComparisonResult:
    """Structured verdict of a two-store comparison."""

    __slots__ = ("verdict", "detail")

    #: Verdict values, strongest agreement first.
    EQUAL = "equal"
    ISOMORPHIC = "isomorphic"
    HOM_EQUIVALENT = "hom-equivalent"
    DIFFERENT = "different"

    def __init__(self, verdict: str, detail: str = ""):
        self.verdict = verdict
        self.detail = detail

    @property
    def agree(self) -> bool:
        return self.verdict != self.DIFFERENT

    def __repr__(self):
        suffix = f": {self.detail}" if self.detail else ""
        return f"ComparisonResult({self.verdict}{suffix})"


def diff_summary(
    a: Iterable[Fact], b: Iterable[Fact], limit: int = 12
) -> str:
    """Human-readable asymmetric difference for failure artifacts."""
    set_a, set_b = _as_fact_set(a), _as_fact_set(b)
    only_a = sorted(str(fact) for fact in set_a - set_b)[:limit]
    only_b = sorted(str(fact) for fact in set_b - set_a)[:limit]
    lines = [f"left: {len(set_a)} facts, right: {len(set_b)} facts"]
    if only_a:
        lines.append("only in left: " + "; ".join(only_a))
    if only_b:
        lines.append("only in right: " + "; ".join(only_b))
    return "\n".join(lines)


def compare_fact_sets(
    a: Iterable[Fact], b: Iterable[Fact]
) -> ComparisonResult:
    """Classify two fact sets into the strongest agreement that holds."""
    set_a, set_b = _as_fact_set(a), _as_fact_set(b)
    if set_a == set_b:
        return ComparisonResult(ComparisonResult.EQUAL)
    if isomorphic(set_a, set_b):
        return ComparisonResult(ComparisonResult.ISOMORPHIC)
    if homomorphically_equivalent(set_a, set_b):
        return ComparisonResult(
            ComparisonResult.HOM_EQUIVALENT,
            "models differ only by homomorphically redundant facts "
            "(restricted-chase firing order)",
        )
    return ComparisonResult(
        ComparisonResult.DIFFERENT, diff_summary(set_a, set_b)
    )
