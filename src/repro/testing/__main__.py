"""``python -m repro.testing`` — the conformance CLI."""

import sys

from .conformance import main

sys.exit(main())
