"""Cross-engine conformance: run both evaluators, diff the models.

For every generated (program, database) pair the runner executes

* the production :class:`~repro.vadalog.chase.ChaseEngine` (semi-naive,
  indexed, routed) — via compiled join plans, the legacy recursive
  enumerator, or both, selected by the ``engine_variant`` knob — and
* the naive :func:`~repro.vadalog.reference.naive_chase` oracle,

under identical round/fact budgets, then classifies the pair
(``engine_variant="both"`` first requires planned/legacy agreement, so
a single run asserts three-way planned/legacy/reference consensus):

========================  ====================================================
status                    meaning
========================  ====================================================
``equal``                 identical fact sets (labels and all)
``isomorphic``            equal up to a bijective labelled-null renaming
``hom-equivalent``        homomorphically equivalent — legitimate
                          restricted-chase firing-order divergence
``error-match``           both evaluators raised the same exception type
``budget``                both runs exhausted a budget (skipped)
``budget-skew``           exactly one run exhausted a budget (skipped; a
                          cluster of these deserves investigation)
``analyzer-dirty``        the static analyzer reports error-level
                          diagnostics on a generated program — the
                          generator broke its own cleanliness contract
``analyzer-engine-       the analyzer found no errors but the engine's
disagree``                static machinery (safety / stratification /
                          wardedness) still refused the program
``flow-disagree``         the static leakage pass (VDL070) called the
                          program clean, yet a sentinel identifier
                          surfaced in an ``@output`` fact — the static
                          information-flow analysis is unsound
``parallel-diverged``     the parallel sharded chase did not reproduce
                          the serial run bit-for-bit (facts, EGD
                          violations, round count or provenance
                          insertion order) — a scheduler/merge bug
``disagree``              anything else — a real conformance failure
========================  ====================================================

The ``analyzer-*`` and ``flow-*`` statuses count as disagreements: both
directions of analyzer/engine divergence are findings, minimized and
archived like model mismatches.

Static/dynamic leakage cross-check: the generator (with probability
``p_identifier_seed``) declares one EDB position
``@category(..., "identifier")``, fills it with unique sentinel
constants, and marks every derived predicate ``@output``.  After the
evaluators agree, the harness compares the static VDL070 verdict with
:func:`repro.attack.disclosure.find_disclosures` over the engine's
model.  VDL070 over-approximates, so "static flags a flow, dynamics
show none" is fine — but a static-clean program disclosing a sentinel
is a soundness bug (``flow-disagree``).  Outcomes that performed the
check carry ``flow_checked=True``.

Disagreements are minimized by greedy delta-debugging (drop rules,
EGDs, facts while the disagreement persists) and written as a JSON
*seed artifact* that replays with one command::

    PYTHONPATH=src python -m repro.testing.conformance --replay <artifact.json>

The artifact embeds the generator seed and config (for regeneration)
*and* the rendered minimized program (for humans and for replay
independent of generator drift).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..vadalog.atoms import Fact
from ..vadalog.program import Program
from ..vadalog.reference import naive_chase
from .compare import ComparisonResult, compare_fact_sets, diff_summary
from .generator import GeneratorConfig, generate_program

#: Default budgets: generous relative to generated instance sizes, so
#: budget exhaustion means a genuinely diverging (or non-terminating
#: restricted-chase) program, not a close call.
DEFAULT_MAX_ROUNDS = 400
DEFAULT_MAX_FACTS = 4_000


class _Run:
    """Outcome of one evaluator on one program."""

    __slots__ = (
        "kind", "facts", "violations", "error", "rounds", "provenance",
    )

    def __init__(
        self,
        kind,
        facts=None,
        violations=None,
        error=None,
        rounds=None,
        provenance=None,
    ):
        self.kind = kind  # 'ok' | 'budget' | 'error'
        self.facts = facts
        self.violations = violations
        self.error = error
        #: Chase rounds executed (``None`` unless the run succeeded).
        self.rounds = rounds
        #: Comparable provenance sequence (insertion order), captured
        #: only when the caller asked for it — the parallel gate.
        self.provenance = provenance


def _violation_pairs(pairs) -> Set[frozenset]:
    """Normalize EGD constant clashes to unordered repr pairs, so the
    two evaluators' different bookkeeping compares cleanly."""
    return {frozenset((repr(left), repr(right))) for left, right in pairs}


#: Engine evaluation paths the harness can pit against each other and
#: against the naive oracle.  ``both`` runs the compiled-plan path AND
#: the legacy recursive enumerator and requires three-way agreement.
ENGINE_VARIANTS = ("planned", "legacy", "both")

#: Fact-store backends the harness can pit against each other, the
#: same shape as ``ENGINE_VARIANTS``: ``dict`` (tuple-at-a-time over
#: hash indexes), ``columnar`` (dictionary-encoded columns + batched
#: plan execution, promotion forced at threshold 1 so every relation
#: actually exercises the columnar code), or ``both`` — which first
#: requires columnar/dict agreement before any engine/oracle check.
BACKENDS = ("dict", "columnar", "both")

#: Execution modes for the parallel sharded chase: ``serial`` (the
#: default, worker pool disabled), ``parallel`` (every engine lane runs
#: with :data:`PARALLEL_WORKERS` workers), or ``both`` — which first
#: gates *bit-identical* parallel/serial agreement (facts, EGD
#: violations, chase rounds AND provenance insertion order) before any
#: engine/oracle comparison, so a scheduler bug is reported as
#: ``parallel-diverged`` rather than as an oracle mismatch.
PARALLELISM_MODES = ("serial", "parallel", "both")

#: Worker count used by the ``parallel``/``both`` modes.
PARALLEL_WORKERS = 4


def _provenance_sequence(result) -> Tuple:
    """The provenance log as a comparable sequence.

    Order matters: the parallel chase promises the *same insertion
    order* as serial, so two logs compare equal exactly when every
    derivation (fact, rule, premises) matches position by position."""
    return tuple(
        (
            str(d.fact),
            d.rule_label,
            tuple(str(p) for p in d.premises),
        )
        for d in result.provenance.derivations()
    )


def _run_engine(
    program: Program,
    max_rounds: int,
    max_facts: int,
    termination: str,
    use_plans: bool = True,
    backend: str = "dict",
    parallelism: int = 0,
    provenance: bool = False,
) -> _Run:
    columnar = backend == "columnar"
    try:
        result = program.run(
            provenance=provenance,
            max_rounds=max_rounds,
            max_facts=max_facts,
            termination=termination,
            use_plans=use_plans,
            use_columnar=columnar,
            columnar_threshold=1 if columnar else None,
            # Pin the worker count explicitly (1 = serial) so a
            # CHASE_PARALLELISM environment variable cannot silently
            # turn the harness's serial reference lanes parallel.
            parallelism=parallelism if parallelism else 1,
            # The harness runs the analyzer itself (run_one) and must
            # not let the pre-flight mask engine/oracle divergence.
            preflight=False,
        )
    except Exception as exc:  # noqa: BLE001 — crashes are findings too
        if "exceeded" in str(exc):
            return _Run("budget", error=exc)
        return _Run("error", error=exc)
    return _Run(
        "ok",
        facts=frozenset(result.facts()),
        violations=_violation_pairs(
            (violation.left, violation.right)
            for violation in result.egd_violations
        ),
        rounds=result.rounds,
        provenance=(
            _provenance_sequence(result) if provenance else None
        ),
    )


def _run_oracle(
    program: Program, max_rounds: int, max_facts: int, termination: str
) -> _Run:
    try:
        result = naive_chase(
            program.rules,
            facts=program.facts,
            egds=program.egds,
            max_rounds=max_rounds,
            max_facts=max_facts,
            termination=termination,
        )
    except Exception as exc:  # noqa: BLE001
        if "exceeded" in str(exc):
            return _Run("budget", error=exc)
        return _Run("error", error=exc)
    return _Run(
        "ok",
        facts=frozenset(result.facts()),
        violations=_violation_pairs(result.violations),
    )


@dataclass
class ConformanceOutcome:
    """Verdict for one generated pair."""

    status: str
    detail: str = ""
    seed: Optional[int] = None
    #: True when the static/dynamic leakage cross-check actually ran
    #: (the program carried sentinel identifiers and @output marks).
    flow_checked: bool = False

    AGREEMENT_STATUSES = (
        "equal",
        "isomorphic",
        "hom-equivalent",
        "error-match",
    )
    SKIP_STATUSES = ("budget", "budget-skew")

    @property
    def is_disagreement(self) -> bool:
        return self.status not in (
            self.AGREEMENT_STATUSES + self.SKIP_STATUSES
        )

    def __repr__(self):
        tag = f" seed={self.seed}" if self.seed is not None else ""
        return f"ConformanceOutcome({self.status}{tag})"


#: Exception types raised by the engine's own static machinery; when
#: one of these fires on an analyzer-clean program, the analyzer and
#: the engine disagree about the program's static legality.
STATIC_ERROR_TYPES = (
    "SafetyError",
    "StratificationError",
    "WardednessError",
    "StaticAnalysisError",
)


def _analyzer_errors(program: Program) -> Tuple[List[str], bool]:
    """Rendered error-level diagnostics for the program (post
    ``@lint_ignore`` suppression), split by kind.

    Returns ``(other_errors, static_leak)``: VDL070 findings are the
    static leakage verdict under cross-check — an expected product of
    sensitivity seeding, not a generator cleanliness violation — so
    they are reported as a flag, not as dirt."""
    from ..vadalog.analysis import analyze

    report = analyze(program)
    other = [
        d.render(report.source_name)
        for d in report.errors
        if d.code != "VDL070"
    ]
    static_leak = any(d.code == "VDL070" for d in report.errors)
    return other, static_leak


def _flow_cross_check(
    program: Program, facts, static_leak: bool
) -> Optional[List]:
    """Compare the static VDL070 verdict with the dynamic oracle.

    Returns ``None`` when the program has no cross-check substrate
    (no sentinel identifiers or no ``@output`` marks); otherwise the
    list of disclosures that *contradict* a clean static verdict —
    empty when the two views are consistent."""
    from ..attack.disclosure import find_disclosures, sentinel_values

    if not sentinel_values(program) or not program.outputs():
        return None
    if static_leak:
        # The static analysis over-approximates: it already flags a
        # flow, so any dynamic behaviour is consistent with it.
        return []
    return find_disclosures(program, facts)


def _classify(
    left: _Run,
    right: _Run,
    left_name: str = "engine",
    right_name: str = "oracle",
) -> ConformanceOutcome:
    """Classify one evaluator pairing (the table at the top of this
    module); names only flavour the diagnostics."""
    if left.kind == "budget" and right.kind == "budget":
        return ConformanceOutcome("budget")
    if left.kind == "budget" or right.kind == "budget":
        which = left_name if left.kind == "budget" else right_name
        return ConformanceOutcome(
            "budget-skew", f"only the {which} exhausted its budget"
        )
    if left.kind == "error" and right.kind == "error":
        if type(left.error).__name__ == type(right.error).__name__:
            name = type(left.error).__name__
            if name in STATIC_ERROR_TYPES:
                # The program passed the analyzer, yet the engine's own
                # static checks refused it — a genuine divergence
                # between the two static views, not an agreement.
                return ConformanceOutcome(
                    "analyzer-engine-disagree",
                    "analyzer found no errors but both evaluators "
                    f"raised {name}: {left.error}",
                )
            return ConformanceOutcome("error-match", name)
        return ConformanceOutcome(
            "disagree",
            f"different exceptions: {left_name} raised "
            f"{type(left.error).__name__} ({left.error}), {right_name} "
            f"raised {type(right.error).__name__} ({right.error})",
        )
    if left.kind == "error" or right.kind == "error":
        which, run = (
            (left_name, left) if left.kind == "error" else
            (right_name, right)
        )
        return ConformanceOutcome(
            "disagree",
            f"only the {which} raised "
            f"{type(run.error).__name__}: {run.error}",
        )

    comparison = compare_fact_sets(left.facts, right.facts)
    if not comparison.agree:
        return ConformanceOutcome(
            "disagree",
            f"models differ ({left_name} vs {right_name}):\n"
            + diff_summary(left.facts, right.facts),
        )
    if left.violations != right.violations:
        return ConformanceOutcome(
            "disagree",
            f"EGD violations differ: {left_name} "
            f"{sorted(map(sorted, left.violations))} vs {right_name} "
            f"{sorted(map(sorted, right.violations))}",
        )
    return ConformanceOutcome(comparison.verdict, comparison.detail)


def _parallel_gate(
    program: Program,
    max_rounds: int,
    max_facts: int,
    termination: str,
    use_plans: bool,
    backend: str,
) -> Optional[ConformanceOutcome]:
    """Bit-identical parallel/serial check for one engine lane.

    The parallel chase promises *exact* serial equivalence — same fact
    strings (null labels included), same EGD violations, same round
    count, same provenance insertion order.  Anything weaker than the
    ``equal`` verdict (isomorphic, hom-equivalent...) is therefore a
    finding here even though it would count as agreement in the
    engine/oracle comparison.  Returns ``None`` when the gate passes,
    the skip outcome on budget noise (the deterministic parallel
    budget guard may trip a hair apart from serial at the edge), and a
    ``parallel-diverged`` disagreement otherwise."""
    serial = _run_engine(
        program, max_rounds, max_facts, termination,
        use_plans=use_plans, backend=backend, provenance=True,
    )
    parallel = _run_engine(
        program, max_rounds, max_facts, termination,
        use_plans=use_plans, backend=backend,
        parallelism=PARALLEL_WORKERS, provenance=True,
    )
    cross = _classify(parallel, serial, "parallel", "serial")
    if cross.status in ConformanceOutcome.SKIP_STATUSES:
        return cross
    if cross.is_disagreement:
        return ConformanceOutcome(
            "parallel-diverged",
            f"parallel ({PARALLEL_WORKERS} workers) vs serial: "
            + cross.detail,
        )
    if cross.status == "error-match":
        return None  # same exception either way — agreement
    if cross.status != "equal":
        return ConformanceOutcome(
            "parallel-diverged",
            "parallel model only "
            f"{cross.status}-equivalent to serial; the contract is "
            "bit-identical facts: " + (cross.detail or ""),
        )
    if parallel.rounds != serial.rounds:
        return ConformanceOutcome(
            "parallel-diverged",
            f"round counts differ: parallel ran {parallel.rounds}, "
            f"serial ran {serial.rounds}",
        )
    if parallel.provenance != serial.provenance:
        return ConformanceOutcome(
            "parallel-diverged",
            "provenance logs differ (length "
            f"{len(parallel.provenance)} vs {len(serial.provenance)}"
            ") or disagree on derivation order",
        )
    return None


def run_one(
    program: Program,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    max_facts: int = DEFAULT_MAX_FACTS,
    termination: str = "restricted",
    engine_variant: str = "planned",
    backend: str = "dict",
    parallelism: str = "serial",
) -> ConformanceOutcome:
    """Execute the evaluators on one program and classify the pair.

    ``engine_variant`` picks the engine path(s) under test:
    ``"planned"`` (compiled join plans, the default), ``"legacy"``
    (recursive enumerator), or ``"both"`` — which additionally
    differentially tests planned against legacy before checking the
    engine against the naive reference, so one run asserts three-way
    agreement.

    ``backend`` picks the fact-store backend(s): ``"dict"`` (the
    default), ``"columnar"`` (promotion forced at threshold 1), or
    ``"both"`` — which gates columnar/dict agreement *before* any
    engine/oracle comparison, so a backend bug is reported as the
    backend diff rather than as an oracle mismatch.

    ``parallelism`` picks the chase execution mode(s): ``"serial"``
    (the default), ``"parallel"`` (every engine lane runs on
    :data:`PARALLEL_WORKERS` workers), or ``"both"`` — which first
    gates bit-identical parallel/serial agreement (facts, violations,
    rounds and provenance order) before the engine-vs-oracle diff; a
    divergence is reported as ``parallel-diverged``."""
    if engine_variant not in ENGINE_VARIANTS:
        raise ValueError(
            f"unknown engine_variant {engine_variant!r}; "
            f"use one of {ENGINE_VARIANTS}"
        )
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; use one of {BACKENDS}"
        )
    if parallelism not in PARALLELISM_MODES:
        raise ValueError(
            f"unknown parallelism {parallelism!r}; "
            f"use one of {PARALLELISM_MODES}"
        )
    analyzer_errors, static_leak = _analyzer_errors(program)
    if analyzer_errors:
        return ConformanceOutcome(
            "analyzer-dirty",
            "static analysis rejects the generated program: "
            + "; ".join(analyzer_errors),
        )
    use_plans = engine_variant != "legacy"
    primary_backend = "columnar" if backend == "both" else backend
    if parallelism == "both":
        gate = _parallel_gate(
            program, max_rounds, max_facts, termination,
            use_plans, primary_backend,
        )
        if gate is not None:
            return gate
    lane_workers = (
        PARALLEL_WORKERS if parallelism == "parallel" else 0
    )
    engine = _run_engine(
        program, max_rounds, max_facts, termination,
        use_plans=use_plans, backend=primary_backend,
        parallelism=lane_workers,
    )
    if backend == "both":
        dict_run = _run_engine(
            program, max_rounds, max_facts, termination,
            use_plans=use_plans, backend="dict",
            parallelism=lane_workers,
        )
        cross = _classify(engine, dict_run, "columnar", "dict")
        if cross.is_disagreement or cross.status in (
            ConformanceOutcome.SKIP_STATUSES
        ):
            return cross
    if engine_variant == "both":
        legacy = _run_engine(
            program, max_rounds, max_facts, termination,
            use_plans=False, backend=primary_backend,
            parallelism=lane_workers,
        )
        cross = _classify(engine, legacy, "planned", "legacy")
        if cross.is_disagreement or cross.status in (
            ConformanceOutcome.SKIP_STATUSES
        ):
            return cross
    oracle = _run_oracle(program, max_rounds, max_facts, termination)
    outcome = _classify(engine, oracle)
    if engine.kind == "ok" and not outcome.is_disagreement:
        disclosures = _flow_cross_check(
            program, engine.facts, static_leak
        )
        if disclosures is None:
            return outcome
        if disclosures:
            return ConformanceOutcome(
                "flow-disagree",
                "static leakage analysis called the program clean but "
                "sentinels surfaced dynamically: "
                + "; ".join(str(d) for d in disclosures),
                flow_checked=True,
            )
        outcome.flow_checked = True
    return outcome


# ---------------------------------------------------------------------------
# Failure minimization (greedy delta debugging).


def minimize_case(
    program: Program,
    still_failing: Callable[[Program], bool],
) -> Program:
    """Greedily drop rules, EGDs and facts while the failure persists."""
    current = program

    def variants(base: Program):
        # Annotations ride along unshrunk: sensitivity/output marks
        # are part of what makes a flow finding reproduce.
        for index in range(len(base.rules)):
            yield Program(
                rules=base.rules[:index] + base.rules[index + 1:],
                egds=base.egds,
                facts=base.facts,
                annotations=base.annotations,
            )
        for index in range(len(base.egds)):
            yield Program(
                rules=base.rules,
                egds=base.egds[:index] + base.egds[index + 1:],
                facts=base.facts,
                annotations=base.annotations,
            )
        for index in range(len(base.facts)):
            yield Program(
                rules=base.rules,
                egds=base.egds,
                facts=base.facts[:index] + base.facts[index + 1:],
                annotations=base.annotations,
            )

    shrunk = True
    while shrunk:
        shrunk = False
        for candidate in variants(current):
            try:
                if still_failing(candidate):
                    current = candidate
                    shrunk = True
                    break
            except Exception:  # pragma: no cover — defensive
                continue
    return current


# ---------------------------------------------------------------------------
# Batch running and seed artifacts.


@dataclass
class ConformanceReport:
    """Aggregate over a batch of generated pairs."""

    outcomes: List[ConformanceOutcome] = field(default_factory=list)
    artifacts: List[str] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for outcome in self.outcomes:
            tally[outcome.status] = tally.get(outcome.status, 0) + 1
        return tally

    @property
    def disagreements(self) -> List[ConformanceOutcome]:
        return [o for o in self.outcomes if o.is_disagreement]

    @property
    def executed(self) -> int:
        return len(self.outcomes)

    @property
    def flow_checked(self) -> int:
        """Pairs where the static/dynamic leakage cross-check ran."""
        return sum(1 for o in self.outcomes if o.flow_checked)

    def summary(self) -> str:
        parts = [f"{self.executed} pairs"]
        for status, count in sorted(self.counts.items()):
            parts.append(f"{status}={count}")
        parts.append(f"flow-checked={self.flow_checked}")
        if self.artifacts:
            parts.append(f"artifacts: {', '.join(self.artifacts)}")
        return "  ".join(parts)


def _render_or_repr(program: Program) -> str:
    try:
        return program.to_source()
    except Exception:  # pragma: no cover — renderer gap, keep going
        lines = [repr(rule) for rule in program.rules]
        lines += [repr(egd) for egd in program.egds]
        lines += [f"{fact}." for fact in program.facts]
        return "\n".join(lines)


def write_artifact(
    directory: str,
    seed: int,
    base_seed: int,
    config: GeneratorConfig,
    outcome: ConformanceOutcome,
    program: Program,
    minimized: Optional[Program],
    max_rounds: int,
    max_facts: int,
    termination: str,
    engine_variant: str = "planned",
    backend: str = "dict",
    parallelism: str = "serial",
) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"conformance_seed_{seed}.json")
    payload = {
        "seed": seed,
        "base_seed": base_seed,
        "config": config.to_dict(),
        "max_rounds": max_rounds,
        "max_facts": max_facts,
        "termination": termination,
        "engine_variant": engine_variant,
        "backend": backend,
        "parallelism": parallelism,
        "status": outcome.status,
        "detail": outcome.detail,
        "program": _render_or_repr(program),
        "minimized_program": (
            _render_or_repr(minimized) if minimized is not None else None
        ),
        "replay": (
            "PYTHONPATH=src python -m repro.testing.conformance "
            f"--replay {path}"
        ),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return path


def run_conformance(
    base_seed: int,
    examples: int,
    config: Optional[GeneratorConfig] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    max_facts: int = DEFAULT_MAX_FACTS,
    termination: str = "restricted",
    artifact_dir: Optional[str] = None,
    minimize: bool = True,
    progress: Optional[Callable[[int, ConformanceOutcome], None]] = None,
    engine_variant: str = "planned",
    backend: str = "dict",
    parallelism: str = "serial",
) -> ConformanceReport:
    """Run ``examples`` seeds starting at ``base_seed``; one outcome
    each.  Disagreements are minimized and written as artifacts when
    ``artifact_dir`` is given."""
    config = config or GeneratorConfig()
    report = ConformanceReport()
    for offset in range(examples):
        seed = base_seed + offset
        program = generate_program(random.Random(seed), config)
        outcome = run_one(
            program,
            max_rounds=max_rounds,
            max_facts=max_facts,
            termination=termination,
            engine_variant=engine_variant,
            backend=backend,
            parallelism=parallelism,
        )
        outcome.seed = seed
        report.outcomes.append(outcome)
        if progress is not None:
            progress(seed, outcome)
        if outcome.is_disagreement and artifact_dir is not None:
            minimized = None
            if minimize:
                minimized = minimize_case(
                    program,
                    lambda candidate: run_one(
                        candidate,
                        max_rounds=max_rounds,
                        max_facts=max_facts,
                        termination=termination,
                        engine_variant=engine_variant,
                        backend=backend,
                        parallelism=parallelism,
                    ).is_disagreement,
                )
            report.artifacts.append(
                write_artifact(
                    artifact_dir,
                    seed,
                    base_seed,
                    config,
                    outcome,
                    program,
                    minimized,
                    max_rounds,
                    max_facts,
                    termination,
                    engine_variant,
                    backend,
                    parallelism,
                )
            )
    return report


def replay_artifact(path: str) -> ConformanceOutcome:
    """Re-run a failure artifact.  Prefers the embedded minimized
    program; falls back to regenerating from the recorded seed."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    config = GeneratorConfig.from_dict(payload["config"])
    source = payload.get("minimized_program") or payload.get("program")
    if source:
        program = Program.parse(source)
    else:
        program = generate_program(
            random.Random(payload["seed"]), config
        )
    outcome = run_one(
        program,
        max_rounds=payload.get("max_rounds", DEFAULT_MAX_ROUNDS),
        max_facts=payload.get("max_facts", DEFAULT_MAX_FACTS),
        termination=payload.get("termination", "restricted"),
        engine_variant=payload.get("engine_variant", "planned"),
        backend=payload.get("backend", "dict"),
        parallelism=payload.get("parallelism", "serial"),
    )
    outcome.seed = payload.get("seed")
    return outcome


# ---------------------------------------------------------------------------
# CLI.


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.conformance",
        description="Differential conformance: chase engine vs naive "
        "oracle on random warded programs.",
    )
    parser.add_argument("--seed", type=int, default=20260805,
                        help="base seed (pair i uses seed+i)")
    parser.add_argument("--examples", type=int, default=300)
    parser.add_argument("--max-rounds", type=int,
                        default=DEFAULT_MAX_ROUNDS)
    parser.add_argument("--max-facts", type=int, default=DEFAULT_MAX_FACTS)
    parser.add_argument("--termination", default="restricted",
                        choices=("restricted", "isomorphic"))
    parser.add_argument("--engine-variant", default="both",
                        choices=ENGINE_VARIANTS,
                        help="engine path(s) under test: compiled "
                        "plans, the legacy enumerator, or both "
                        "(three-way planned/legacy/reference check)")
    parser.add_argument("--backend", default="both",
                        choices=BACKENDS,
                        help="fact-store backend(s) under test: dict, "
                        "columnar (promotion forced at threshold 1), "
                        "or both (columnar/dict agreement gated "
                        "before any engine/oracle comparison)")
    parser.add_argument("--parallelism", default="both",
                        choices=PARALLELISM_MODES,
                        help="chase execution mode(s) under test: "
                        "serial, parallel (4 workers), or both "
                        "(bit-identical parallel/serial agreement "
                        "gated before any engine/oracle comparison)")
    parser.add_argument("--artifact-dir", default="conformance-artifacts")
    parser.add_argument("--no-minimize", action="store_true")
    parser.add_argument("--replay", metavar="ARTIFACT",
                        help="re-run a failure artifact instead of "
                        "generating new pairs")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.replay:
        outcome = replay_artifact(args.replay)
        print(f"replay {args.replay}: {outcome.status}")
        if outcome.detail:
            print(outcome.detail)
        return 1 if outcome.is_disagreement else 0

    def progress(seed: int, outcome: ConformanceOutcome) -> None:
        if not args.quiet and outcome.is_disagreement:
            print(f"seed {seed}: DISAGREE — {outcome.detail}")

    report = run_conformance(
        args.seed,
        args.examples,
        max_rounds=args.max_rounds,
        max_facts=args.max_facts,
        termination=args.termination,
        artifact_dir=args.artifact_dir,
        minimize=not args.no_minimize,
        progress=progress,
        engine_variant=args.engine_variant,
        backend=args.backend,
        parallelism=args.parallelism,
    )
    print(report.summary())
    if report.disagreements:
        print(
            f"{len(report.disagreements)} disagreement(s); replay with: "
            "PYTHONPATH=src python -m repro.testing.conformance "
            "--replay <artifact>"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
