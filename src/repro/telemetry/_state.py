"""The process-wide telemetry switch and its registry/tracer pair.

Hot paths import the singleton ``state`` once and check
``state.enabled`` — a single attribute load — before touching any
instrument, which is what keeps the disabled mode effectively free.
"""

from __future__ import annotations

from typing import Optional

from .metrics import MetricsRegistry
from .tracing import Tracer


class TelemetryState:
    """Mutable holder so call sites can cache the object, not the flag."""

    __slots__ = ("enabled", "registry", "tracer", "events")

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        #: Structured event log (:class:`repro.telemetry.events.EventLog`)
        #: or None; call sites emit only when enabled AND attached.
        self.events = None


#: The singleton every instrumented module shares.
state = TelemetryState()
