"""Export the in-process telemetry in industry-standard shapes.

Two exporters, both dependency-free:

* **Prometheus text exposition** — :func:`to_prometheus_text` renders a
  :class:`MetricsRegistry` snapshot in the text format every Prometheus
  scraper accepts (counters as ``*_total``, gauges verbatim, histograms
  as summaries with ``quantile`` labels plus ``_sum``/``_count``).
  :func:`write_prometheus` drops it in a file (node-exporter textfile
  style); :class:`MetricsHTTPServer` serves ``GET /metrics`` from the
  live registry via the stdlib ``http.server``.
  :func:`validate_prometheus_text` is the line-format validator the
  tests and the CI export smoke run over every produced exposition.
* **OTLP-style JSON spans** — :func:`spans_to_otlp` re-encodes tracer
  span dicts as an OpenTelemetry OTLP/JSON ``resourceSpans`` document
  (hex trace/span ids, unix-nano timestamps, typed attributes) so a
  collector or any OTLP-aware viewer can ingest a chase trace.
"""

from __future__ import annotations

import http.server
import json
import re
import threading
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ._state import state
from .metrics import MetricsRegistry, PERCENTILES

#: Prefix prepended to every exported metric name.
DEFAULT_NAMESPACE = "repro"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_BAD_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def parse_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a registry key ``name{k1=v1,k2=v2}`` back into name and
    labels (inverse of :func:`repro.telemetry.metrics.metric_key` for
    label values without ``,`` or ``=``)."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: Dict[str, str] = {}
    for pair in rest.rstrip("}").split(","):
        if not pair:
            continue
        label, _, value = pair.partition("=")
        labels[label] = value
    return name, labels


def _sanitize_name(name: str, namespace: str) -> str:
    flat = _BAD_NAME_CHARS.sub("_", name.replace(".", "_"))
    if namespace:
        flat = f"{namespace}_{flat}"
    if not _NAME_OK.match(flat):
        flat = "_" + flat
    return flat


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_BAD_NAME_CHARS.sub("_", k)}="{_escape_label_value(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: Any) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def to_prometheus_text(
    snapshot: Optional[Mapping[str, Any]] = None,
    namespace: str = DEFAULT_NAMESPACE,
) -> str:
    """Render a registry snapshot (default: the active registry) in the
    Prometheus text exposition format, one metric family per HELP/TYPE
    block, families sorted by name."""
    if snapshot is None:
        snapshot = state.registry.snapshot()
    families: Dict[str, Dict[str, Any]] = {}

    def family(name: str, kind: str, help_text: str) -> Dict[str, Any]:
        return families.setdefault(
            name, {"kind": kind, "help": help_text, "samples": []}
        )

    for key, value in snapshot.get("counters", {}).items():
        raw_name, labels = parse_metric_key(key)
        name = _sanitize_name(raw_name, namespace) + "_total"
        fam = family(name, "counter", f"Counter {raw_name}.")
        fam["samples"].append((name, labels, value))

    for key, value in snapshot.get("gauges", {}).items():
        raw_name, labels = parse_metric_key(key)
        name = _sanitize_name(raw_name, namespace)
        fam = family(name, "gauge", f"Gauge {raw_name}.")
        fam["samples"].append((name, labels, value))

    for key, data in snapshot.get("histograms", {}).items():
        raw_name, labels = parse_metric_key(key)
        name = _sanitize_name(raw_name, namespace)
        fam = family(name, "summary", f"Histogram {raw_name}.")
        for p in PERCENTILES:
            quantile_labels = dict(labels)
            quantile_labels["quantile"] = f"{p / 100:g}"
            fam["samples"].append(
                (name, quantile_labels, data.get(f"p{p}", 0.0))
            )
        fam["samples"].append((name + "_sum", labels, data.get("sum", 0.0)))
        fam["samples"].append(
            (name + "_count", labels, data.get("count", 0))
        )

    lines: List[str] = []
    for name in sorted(families):
        fam = families[name]
        lines.append(f"# HELP {name} {fam['help']}")
        lines.append(f"# TYPE {name} {fam['kind']}")
        for sample_name, labels, value in fam["samples"]:
            lines.append(
                f"{sample_name}{_render_labels(labels)} "
                f"{_format_value(value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR = re.compile(
    r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"'
)
_COMMENT_LINE = re.compile(
    r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$"
)


def validate_prometheus_text(text: str) -> int:
    """Line-format check of a text exposition; returns the number of
    sample lines, raises ``ValueError`` listing every malformed line.

    Checks each comment line is a well-formed HELP/TYPE, each sample
    line has a legal metric name, balanced properly-quoted labels, and
    a float-parseable value, and that every TYPE'd family has at least
    one sample.
    """
    errors: List[str] = []
    samples = 0
    typed_families: Dict[str, int] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if not _COMMENT_LINE.match(line):
                errors.append(f"line {number}: malformed comment: {line!r}")
            elif line.startswith("# TYPE "):
                typed_families.setdefault(line.split()[2], 0)
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            errors.append(f"line {number}: malformed sample: {line!r}")
            continue
        labels = match.group("labels")
        if labels is not None:
            inner = labels[1:-1]
            if inner:
                pairs = inner.split(",")
                for pair in pairs:
                    if not _LABEL_PAIR.match(pair.strip()):
                        errors.append(
                            f"line {number}: malformed label {pair!r}"
                        )
        try:
            float(match.group("value"))
        except ValueError:
            errors.append(
                f"line {number}: non-numeric value "
                f"{match.group('value')!r}"
            )
            continue
        samples += 1
        name = match.group("name")
        for family in typed_families:
            if name == family or name.startswith(family + "_"):
                typed_families[family] += 1
    empty = [f for f, count in typed_families.items() if count == 0]
    for family in empty:
        errors.append(f"family {family}: TYPE declared but no samples")
    if errors:
        raise ValueError(
            "invalid Prometheus exposition:\n  " + "\n  ".join(errors)
        )
    return samples


def write_prometheus(
    path: str,
    snapshot: Optional[Mapping[str, Any]] = None,
    namespace: str = DEFAULT_NAMESPACE,
) -> str:
    """Write the exposition to ``path`` (validated first) and return
    the rendered text."""
    text = to_prometheus_text(snapshot, namespace=namespace)
    validate_prometheus_text(text)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text


class MetricsHTTPServer:
    """A minimal Prometheus scrape endpoint over ``http.server``.

    Serves ``GET /metrics`` (text exposition of the given registry —
    default: the process-wide one, read at scrape time) and ``GET
    /healthz`` (the liveness probe: 200 and a one-line body while the
    thread serves).  With an ``audit`` ledger attached
    (:class:`repro.audit.AuditLedger`, typically observing the live
    event log) it additionally serves ``GET /audit`` (the JSON ledger
    summary) and ``GET /audit/timeline`` (the per-iteration
    risk/utility points) — the cycle's trajectory is scrapeable
    mid-run, like the chase heartbeat gauges.  ``port=0`` picks a free
    port; :meth:`start` returns the bound port.  The server runs in a
    daemon thread.
    """

    content_type = "text/plain; version=0.0.4; charset=utf-8"

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        namespace: str = DEFAULT_NAMESPACE,
        audit: Optional[Any] = None,
    ):
        self._registry = registry
        self.namespace = namespace
        self.host = host
        self.port = port
        self.audit = audit
        self._httpd: Optional[http.server.ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def _snapshot(self) -> Dict[str, Any]:
        registry = self._registry if self._registry is not None \
            else state.registry
        return registry.snapshot()

    def start(self) -> int:
        exporter = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (stdlib handler API)
                if self.path.split("?")[0] == "/metrics":
                    body = to_prometheus_text(
                        exporter._snapshot(),
                        namespace=exporter.namespace,
                    ).encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type",
                                     exporter.content_type)
                elif self.path == "/healthz":
                    body = b"ok\n"
                    self.send_response(200)
                    self.send_header("Content-Type", "text/plain")
                elif (
                    self.path.split("?")[0] in ("/audit",
                                                "/audit/timeline")
                    and exporter.audit is not None
                ):
                    ledger = exporter.audit
                    document = (
                        ledger.timeline()
                        if self.path.startswith("/audit/timeline")
                        else ledger.summary()
                    )
                    body = (
                        json.dumps(document, sort_keys=True) + "\n"
                    ).encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type",
                                     "application/json")
                else:
                    body = b"not found\n"
                    self.send_response(404)
                    self.send_header("Content-Type", "text/plain")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # quiet scrapes
                pass

        self._httpd = http.server.ThreadingHTTPServer(
            (self.host, self.port), Handler
        )
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.stop()
        return False


# -- OTLP-style span export ------------------------------------------------


def _otlp_value(value: Any) -> Dict[str, Any]:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _hex_id(number: int, width: int) -> str:
    return format(number & (16 ** width - 1) or 1, f"0{width}x")


def spans_to_otlp(
    spans: Optional[Iterable[Dict[str, Any]]] = None,
    service_name: str = "repro",
) -> Dict[str, Any]:
    """Re-encode tracer span dicts as one OTLP/JSON ``resourceSpans``
    document.

    Each span tree (root = span without a parent in the export set)
    becomes one trace; trace ids are derived from the root span id.
    ``start_ns`` values are monotonic-clock readings, so they are
    re-anchored to the wall clock at export time (the usual textfile
    compromise — offsets within a trace stay exact).
    """
    if spans is None:
        spans = state.tracer.spans()
    spans = list(spans)
    parent_of = {
        s["span_id"]: s.get("parent_id") for s in spans
    }

    def root_of(span_id: int) -> int:
        seen = set()
        current = span_id
        while True:
            parent = parent_of.get(current)
            if parent is None or parent not in parent_of \
                    or current in seen:
                return current
            seen.add(current)
            current = parent

    anchor = time.time_ns() - time.perf_counter_ns()
    otlp_spans = []
    for span in spans:
        start = span.get("start_ns", 0) + anchor
        end = start + span.get("duration_ns", 0)
        attributes = [
            {"key": str(key), "value": _otlp_value(value)}
            for key, value in span.get("attributes", {}).items()
        ]
        parent = span.get("parent_id")
        otlp_spans.append({
            "traceId": _hex_id(root_of(span["span_id"]), 32),
            "spanId": _hex_id(span["span_id"], 16),
            "parentSpanId": (
                _hex_id(parent, 16) if parent is not None else ""
            ),
            "name": span.get("name", "?"),
            "kind": 1,  # SPAN_KIND_INTERNAL
            "startTimeUnixNano": str(start),
            "endTimeUnixNano": str(end),
            "attributes": attributes,
        })
    return {
        "resourceSpans": [{
            "resource": {
                "attributes": [{
                    "key": "service.name",
                    "value": {"stringValue": service_name},
                }],
            },
            "scopeSpans": [{
                "scope": {"name": "repro.telemetry"},
                "spans": otlp_spans,
            }],
        }],
    }


def write_otlp_spans(
    path: str,
    spans: Optional[Iterable[Dict[str, Any]]] = None,
    service_name: str = "repro",
) -> Dict[str, Any]:
    """Write the OTLP/JSON document for the given (default: ring
    buffer) spans and return it."""
    document = spans_to_otlp(spans, service_name=service_name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document
