"""Runtime inspection: EXPLAIN/ANALYZE, memory accounting, progress.

The PR-5 join plans made the chase fast and opaque at the same time:
per-rule attribution says *that* a rule is hot, but not *why* (join
order, step selectivity, probe hit rates).  This module is the
engine's operator-level truth, three instruments in one place:

* **EXPLAIN / ANALYZE** — the chase engine produces a structured
  *explain document* (plain dicts, JSON-serialisable) describing every
  compiled :class:`~repro.vadalog.plans.JoinPlan`; in ANALYZE mode
  each step additionally carries a :class:`StepStats` record of actual
  rows in/out, probe hits/misses and per-step wall time.
  :func:`render_explain` turns the document into the annotated plan
  tree printed by ``python -m repro explain``.
* **Memory accounting** — :func:`render_memory` renders the
  per-predicate cardinality / estimated-bytes report produced by
  :meth:`~repro.vadalog.database.FactStore.memory_stats`, and
  :class:`PeakRSSSampler` tracks the process peak resident-set size
  (``max_rss_bytes``) over a code region — the gauge
  ``benchmarks/regress.py`` records next to latency.
* **Live progress** — :class:`ChaseProgress` tracks the chase's
  current stratum/round, delta-frontier size, fire rate and stall
  state; the engine publishes it as ``chase.heartbeat.*`` gauges (the
  ``/metrics`` ops surface) and ``heartbeat`` / ``stall`` events.

Nothing here imports the engine: the engine hands *data* (dicts,
stats objects) to this module, never the other way around, so the
telemetry package stays import-cycle free and the hot paths pay
nothing while inspection is off.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "ChaseProgress",
    "PeakRSSSampler",
    "PlanAnalysis",
    "StepStats",
    "current_rss_bytes",
    "render_explain",
    "render_memory",
]


# -- ANALYZE instrumentation -------------------------------------------------


class StepStats:
    """Actuals for one plan step across a run.

    ``invocations`` counts rows *arriving* from the upstream step (how
    often the step's iterator was opened), ``rows_out`` rows it passed
    downstream, so ``rows_out / invocations`` is the step's observed
    selectivity.  Scan and negation steps additionally count index
    probes (``probe_hits`` = probes returning at least one fact) and
    ``rows_scanned`` (facts the probe returned before repeat-variable
    filtering).  ``wall_ns`` is time spent inside the step's own
    iterator, excluding downstream steps.
    """

    __slots__ = (
        "invocations", "rows_out", "probe_calls", "probe_hits",
        "rows_scanned", "wall_ns",
    )

    def __init__(self) -> None:
        self.invocations = 0
        self.rows_out = 0
        self.probe_calls = 0
        self.probe_hits = 0
        self.rows_scanned = 0
        self.wall_ns = 0

    @property
    def probe_misses(self) -> int:
        return self.probe_calls - self.probe_hits

    def to_json(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "invocations": self.invocations,
            "rows_out": self.rows_out,
            "wall_ns": self.wall_ns,
        }
        if self.probe_calls:
            data["probe_calls"] = self.probe_calls
            data["probe_hits"] = self.probe_hits
            data["probe_misses"] = self.probe_misses
            data["rows_scanned"] = self.rows_scanned
        return data

    def __repr__(self) -> str:
        return (
            f"StepStats(in={self.invocations} out={self.rows_out} "
            f"probes={self.probe_hits}/{self.probe_calls} "
            f"wall={self.wall_ns}ns)"
        )


class PlanAnalysis:
    """ANALYZE state for one :class:`JoinPlan`: per-step stats plus
    plan-level execution/match counts."""

    __slots__ = ("steps", "executions", "matches")

    def __init__(self, step_count: int):
        self.steps: List[StepStats] = [
            StepStats() for _ in range(step_count)
        ]
        self.executions = 0
        self.matches = 0

    def to_json(self) -> Dict[str, Any]:
        return {
            "executions": self.executions,
            "matches": self.matches,
            "steps": [stats.to_json() for stats in self.steps],
        }


# -- explain rendering -------------------------------------------------------


def _format_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{int(ns)}ns"


def _format_bytes(count: float) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" \
                else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.1f} GiB"  # pragma: no cover — loop always returns


def _render_actual(actual: Dict[str, Any]) -> str:
    parts = [
        f"rows in={actual.get('invocations', 0)} "
        f"out={actual.get('rows_out', 0)}"
    ]
    calls = actual.get("probe_calls", 0)
    if calls:
        hits = actual.get("probe_hits", 0)
        parts.append(
            f"probes={hits}/{calls} "
            f"({100.0 * hits / calls:.0f}% hit) "
            f"scanned={actual.get('rows_scanned', 0)}"
        )
    parts.append(_format_ns(actual.get("wall_ns", 0)))
    return "  [" + ", ".join(parts) + "]"


def render_explain(doc: Dict[str, Any]) -> str:
    """Render an engine explain document as an annotated plan tree.

    Static documents show the compiled step order, probe layouts and
    pushed-down expressions; ANALYZE documents additionally annotate
    every step with its actuals and append the memory report when the
    document carries one.
    """
    analyze = bool(doc.get("analyze"))
    rules = doc.get("rules", [])
    lines = [
        ("EXPLAIN ANALYZE" if analyze else "EXPLAIN")
        + f": {len(rules)} rule(s)"
    ]
    if not rules:
        lines.append("  (no rules — nothing to plan)")
    for rule in rules:
        tags = []
        stratum = rule.get("stratum")
        if stratum is not None:
            tags.append(f"stratum {stratum}")
        if rule.get("streamable"):
            tags.append("streamable")
        suffix = f"  [{', '.join(tags)}]" if tags else ""
        if rule.get("unplannable"):
            lines.append(
                f"rule {rule.get('rule', '?')}: UNPLANNABLE — "
                f"{rule.get('reason', '?')} (legacy enumeration)"
            )
            continue
        lines.append(f"rule {rule.get('rule', '?')}{suffix}")
        for plan in rule.get("plans", []):
            head = f"  plan {plan.get('name', '?')}"
            if "executions" in plan:
                head += (
                    f"  ({plan['executions']} execution(s), "
                    f"{plan.get('matches', 0)} match(es))"
                )
            lines.append(head)
            steps = plan.get("steps", [])
            if not steps:
                lines.append("    (empty plan — fires unconditionally)")
            for number, step in enumerate(steps, start=1):
                line = f"    {number}. {step.get('detail', '?')}"
                actual = step.get("actual")
                if actual is not None:
                    line += _render_actual(actual)
                lines.append(line)
    memory = doc.get("memory")
    if memory:
        lines.append("")
        lines.append(render_memory(memory))
    return "\n".join(lines)


def render_memory(memory: Dict[str, Any]) -> str:
    """Render the memory report (``FactStore.memory_stats`` plus an
    optional ``provenance`` section) as a compact table."""
    store = memory.get("store", memory)
    lines = ["memory:"]
    predicates = store.get("predicates", {})
    for name in sorted(predicates):
        info = predicates[name]
        line = (
            f"  {name}: {info.get('facts', 0)} fact(s), "
            f"~{_format_bytes(info.get('estimated_bytes', 0))}, "
            f"{info.get('index_entries', 0)} index entr(ies), "
            f"frontier {info.get('delta', 0)}"
        )
        # Dict-backed predicates keep the historical line verbatim;
        # columnar ones append their exact column-array footprint and
        # probe hit rate (real bytes, not the sampled estimate).
        if info.get("backend") == "columnar":
            line += (
                f", columnar {_format_bytes(info.get('column_bytes', 0))}"
                f" in columns, {info.get('dictionary_terms', 0)} "
                f"dict term(s), probes "
                f"{info.get('probe_hits', 0)}/{info.get('probes', 0)} hit"
            )
        lines.append(line)
    lines.append(
        f"  total: {store.get('facts', 0)} fact(s), "
        f"~{_format_bytes(store.get('estimated_bytes', 0))}, "
        f"{store.get('index_entries', 0)} index entr(ies)"
    )
    provenance = memory.get("provenance")
    if provenance:
        lines.append(
            f"  provenance: {provenance.get('derivations', 0)} "
            f"derivation(s), "
            f"~{_format_bytes(provenance.get('estimated_bytes', 0))}"
        )
    return "\n".join(lines)


# -- peak-RSS sampling -------------------------------------------------------


def current_rss_bytes() -> int:
    """The process's current resident-set size in bytes.

    Reads ``/proc/self/status`` (Linux); falls back to the
    ``resource`` ru_maxrss *peak* (kilobytes on Linux, bytes on
    macOS), and to 0 where neither source exists — callers treat 0 as
    "unknown", never as a measurement.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return peak if sys.platform == "darwin" else peak * 1024
    except Exception:  # pragma: no cover — exotic platforms only
        return 0


class PeakRSSSampler:
    """Track peak resident-set size over a code region.

    A daemon thread samples :func:`current_rss_bytes` every
    ``interval`` seconds between :meth:`start` and :meth:`stop`
    (synchronous samples are also taken at both edges, so even an
    instant region gets a real reading)::

        with PeakRSSSampler() as rss:
            run_workload()
        print(rss.max_rss_bytes)

    This is the ``max_rss_bytes`` metric ``benchmarks/regress.py``
    records into ``BENCH_history.json`` next to wall-clock seconds.
    """

    def __init__(self, interval: float = 0.01):
        self.interval = interval
        self.max_rss_bytes = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def sample(self) -> int:
        """Take one synchronous sample; returns the current reading."""
        rss = current_rss_bytes()
        if rss > self.max_rss_bytes:
            self.max_rss_bytes = rss
        return rss

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def start(self) -> "PeakRSSSampler":
        self._stop.clear()
        self.sample()
        self._thread = threading.Thread(
            target=self._run, name="repro-rss-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> int:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.sample()
        return self.max_rss_bytes

    def __enter__(self) -> "PeakRSSSampler":
        return self.start()

    def __exit__(self, *exc_info) -> bool:
        self.stop()
        return False


# -- live chase progress -----------------------------------------------------


class ChaseProgress:
    """Heartbeat and stall state for one chase run.

    The engine calls :meth:`progressed` whenever a rule fires,
    :meth:`check_stall` after every rule application, and
    :meth:`heartbeat` at the end of every round.  All decisions are
    made against an injectable monotonic ``clock`` so stall semantics
    are unit-testable without sleeping.

    * A **stall** begins when no rule has fired for
      ``stall_threshold`` seconds; :meth:`check_stall` reports it
      exactly once per episode, and the next firing ends the episode.
    * **Heartbeat events** are rate-limited to one per
      ``heartbeat_interval`` seconds (0 = every round); heartbeat
      *gauges* are refreshed every round regardless.
    """

    def __init__(
        self,
        stall_threshold: float = 30.0,
        heartbeat_interval: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.stall_threshold = stall_threshold
        self.heartbeat_interval = heartbeat_interval
        self._clock = clock
        now = clock()
        self._last_progress = now
        self._last_event: Optional[float] = None
        self.stalled = False
        self.rounds = 0
        self.facts_derived = 0
        self.stalls = 0

    def progressed(self) -> bool:
        """A rule fired: progress.  Returns True when this ends a
        stall episode (the caller resets the stalled gauge)."""
        self._last_progress = self._clock()
        recovered = self.stalled
        self.stalled = False
        return recovered

    def idle_seconds(self) -> float:
        return self._clock() - self._last_progress

    def check_stall(self) -> Optional[Dict[str, Any]]:
        """Report a *new* stall episode, or None.  Subsequent checks
        during the same episode stay quiet."""
        if self.stalled:
            return None
        idle = self.idle_seconds()
        if idle < self.stall_threshold:
            return None
        self.stalled = True
        self.stalls += 1
        return {
            "idle_seconds": idle,
            "threshold": self.stall_threshold,
        }

    def heartbeat(
        self,
        stratum: int,
        round_: int,
        new_facts: int,
        frontier: int,
        seconds: float,
        total_facts: int,
    ) -> Dict[str, Any]:
        """Fold one finished round in and return the heartbeat
        payload (fire rate guards the zero-duration round)."""
        self.rounds += 1
        self.facts_derived += new_facts
        return {
            "stratum": stratum,
            "round": round_,
            "new_facts": new_facts,
            "frontier": frontier,
            "fire_rate": new_facts / seconds if seconds > 0 else 0.0,
            "total_facts": total_facts,
            "stalled": self.stalled,
        }

    def event_due(self) -> bool:
        """Rate limiter for heartbeat *events* (gauges always update)."""
        now = self._clock()
        if (
            self._last_event is not None
            and now - self._last_event < self.heartbeat_interval
        ):
            return False
        self._last_event = now
        return True
