"""Schema-versioned structured event stream (the unified audit log).

One replayable JSONL stream unifies the three things an auditor asks
for after an exchange: *what happened* (decision events — "cell
(row, attr) suppressed by rule R in iteration N"), *where time went*
(finished spans, forwarded from the tracer), and *how much work it was*
(metrics snapshots).  Every record has the same envelope::

    {"v": 1, "seq": 17, "ts": 1754380800.123, "type": "decision",
     "payload": {"kind": "suppress", "db": "R25A4U", "row": 3, ...}}

``v`` is :data:`EVENT_SCHEMA_VERSION`, ``seq`` a per-log monotonically
increasing sequence number (gap-free, so truncated files are
detectable), ``ts`` wall-clock seconds.

The log keeps an incremental :meth:`EventLog.summary` while it writes,
and :func:`replay` folds a written file back into the same summary with
the same :func:`fold` function — so ``replay(path) ==
log.summary()`` is the integrity check that the stream on disk tells
the whole story (exercised by the tests and the CI export smoke).

Event types emitted by the instrumented call sites:

* ``decision`` — anonymization-cycle actions (suppress/recode, with
  row, attribute, method, measure, iteration and the motivating risk
  evidence) and chase derivations (rule label, stratum, round, facts
  added, nulls invented);
* ``span`` — every finished tracer span (attached via
  :class:`EventSpanSink` when :func:`repro.telemetry.enable` is given
  an ``events_path``);
* ``metrics`` — a full registry snapshot (emitted at ``disable()`` and
  on demand);
* ``lifecycle`` — framework-level milestones (``assess`` /
  ``anonymize`` / ``share`` completed, with their headline outcomes);
* ``plan_fallback`` — a compiled join plan handed a rule back to the
  legacy enumerator mid-round (rule label, exception class, reason),
  so an audit can see which rules silently left the fast path;
* ``heartbeat`` / ``stall`` — live chase progress (stratum, round,
  frontier size, fire rate) and no-progress episodes, see
  ``docs/observability.md``;
* ``cycle_iteration`` / ``cycle_summary`` — the anonymization cycle's
  per-pass risk/utility gauges and its end-of-run outcome, the time
  series the confidentiality audit ledger
  (:mod:`repro.audit`) folds into risk-vs-utility trajectories.

The :class:`repro.audit.AuditLedger` consumes this stream twice over:
live, as an :meth:`EventLog.add_observer` callback receiving every
envelope as it is emitted, and offline, by folding a written file —
both paths see byte-identical records, which is what makes
``AuditLedger.replay(path)`` reconstruct the live ledger exactly.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

#: Bump when the envelope or the summary fold changes incompatibly.
EVENT_SCHEMA_VERSION = 1

_SCALARS = (str, int, float, bool, type(None))


def _normalize(value: Any) -> Any:
    """JSON-normalize a payload value so the live event and its
    re-parsed form are indistinguishable (LabelledNulls and other
    domain objects become their string rendering)."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, dict):
        return {str(k): _normalize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalize(v) for v in value]
    return str(value)


#: Decision kinds that are confidentiality actions on microdata cells
#: (as opposed to chase derivations); the audit section counts these.
AUDIT_ACTIONS = ("suppress", "recode", "keep")


def new_summary() -> Dict[str, Any]:
    """The empty summary every fold starts from."""
    return {
        "schema": EVENT_SCHEMA_VERSION,
        "events": 0,
        "by_type": {},
        "decisions": {"total": 0, "by_kind": {}, "by_rule": {}},
        "spans": {"total": 0, "by_name": {}},
        "lifecycle": {},
        "counters": {},
        "plan_fallbacks": {"total": 0, "by_rule": {}},
        "audit": {
            "cells": {action: 0 for action in AUDIT_ACTIONS},
            "iterations": 0,
            "by_measure": {},
            "outcome": {},
        },
    }


def fold(summary: Dict[str, Any], event: Dict[str, Any]) -> Dict[str, Any]:
    """Fold one event into a summary (shared by the live log and
    :func:`replay`, which is what makes the stream replayable)."""
    summary["events"] += 1
    event_type = event.get("type", "?")
    by_type = summary["by_type"]
    by_type[event_type] = by_type.get(event_type, 0) + 1
    payload = event.get("payload", {})
    if event_type == "decision":
        decisions = summary["decisions"]
        decisions["total"] += 1
        kind = str(payload.get("kind", "?"))
        decisions["by_kind"][kind] = decisions["by_kind"].get(kind, 0) + 1
        rule = payload.get("rule") or payload.get("method")
        if rule is not None:
            rule = str(rule)
            decisions["by_rule"][rule] = (
                decisions["by_rule"].get(rule, 0) + 1
            )
        if kind in AUDIT_ACTIONS:
            audit = summary.setdefault(
                "audit", new_summary()["audit"]
            )
            audit["cells"][kind] = audit["cells"].get(kind, 0) + 1
            iteration = payload.get("iteration")
            if isinstance(iteration, int):
                audit["iterations"] = max(audit["iterations"], iteration)
            measure = payload.get("measure")
            if measure is not None:
                measure = str(measure)
                audit["by_measure"][measure] = (
                    audit["by_measure"].get(measure, 0) + 1
                )
    elif event_type == "cycle_iteration":
        audit = summary.setdefault("audit", new_summary()["audit"])
        iteration = payload.get("iteration")
        if isinstance(iteration, int):
            audit["iterations"] = max(audit["iterations"], iteration)
    elif event_type == "cycle_summary":
        # Last cycle wins, mirroring the metrics-snapshot semantics:
        # the outcome is cumulative state, not an increment.
        audit = summary.setdefault("audit", new_summary()["audit"])
        audit["outcome"] = dict(payload)
    elif event_type == "span":
        spans = summary["spans"]
        spans["total"] += 1
        name = str(payload.get("name", "?"))
        spans["by_name"][name] = spans["by_name"].get(name, 0) + 1
    elif event_type == "lifecycle":
        stage = str(payload.get("stage", "?"))
        lifecycle = summary["lifecycle"]
        lifecycle[stage] = lifecycle.get(stage, 0) + 1
    elif event_type == "plan_fallback":
        fallbacks = summary.setdefault(
            "plan_fallbacks", {"total": 0, "by_rule": {}}
        )
        fallbacks["total"] += 1
        rule = str(payload.get("rule", "?"))
        fallbacks["by_rule"][rule] = (
            fallbacks["by_rule"].get(rule, 0) + 1
        )
    elif event_type == "metrics":
        # Last snapshot wins; counters are cumulative already.
        summary["counters"] = dict(payload.get("counters", {}))
    return summary


class EventLog:
    """Append-only structured event log with an incremental summary.

    With a ``path`` every event is written as one JSON line; without
    one the log still folds its summary (useful in tests and when only
    the in-memory tail matters).  ``keep`` bounds the in-memory tail
    returned by :meth:`tail`.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        keep: int = 1024,
        clock: Callable[[], float] = time.time,
    ):
        self.path = path
        self._clock = clock
        self._lock = threading.Lock()
        self._seq = 0
        self._summary = new_summary()
        self._keep = keep
        self._tail: List[Dict[str, Any]] = []
        self._observers: List[Callable[[Dict[str, Any]], Any]] = []
        self._handle = (
            open(path, "a", encoding="utf-8") if path is not None else None
        )
        self._closed = False

    def add_observer(
        self, observer: Callable[[Dict[str, Any]], Any]
    ) -> None:
        """Register a callback receiving every emitted envelope (after
        normalization, i.e. exactly what lands on disk) — the live
        counterpart of folding a written file, so an observer such as
        :class:`repro.audit.AuditLedger` sees the same records a later
        replay will."""
        with self._lock:
            self._observers.append(observer)

    def remove_observer(
        self, observer: Callable[[Dict[str, Any]], Any]
    ) -> None:
        with self._lock:
            self._observers = [
                o for o in self._observers if o is not observer
            ]

    # -- emission ---------------------------------------------------------

    def emit(self, event_type: str, **payload: Any) -> Optional[Dict]:
        """Record one event; returns the envelope (None once closed)."""
        if self._closed:
            return None
        record = {
            "v": EVENT_SCHEMA_VERSION,
            "type": event_type,
            "payload": _normalize(payload),
        }
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            record["ts"] = self._clock()
            fold(self._summary, record)
            self._tail.append(record)
            if len(self._tail) > self._keep:
                del self._tail[: len(self._tail) - self._keep]
            if self._handle is not None:
                self._handle.write(json.dumps(record) + "\n")
            observers = list(self._observers)
        for observer in observers:
            observer(record)
        return record

    def emit_span(self, span: Dict[str, Any]) -> None:
        self.emit("span", **span)

    def emit_metrics(self, snapshot: Dict[str, Any]) -> None:
        self.emit("metrics", **snapshot)

    # -- views ------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """A deep-ish copy of the running summary (safe to mutate)."""
        with self._lock:
            return json.loads(json.dumps(self._summary))

    def tail(self, event_type: Optional[str] = None) -> List[Dict]:
        with self._lock:
            events = list(self._tail)
        if event_type is None:
            return events
        return [e for e in events if e["type"] == event_type]

    def __len__(self) -> int:
        return self._seq

    # -- lifecycle ---------------------------------------------------------

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._handle is not None and not self._handle.closed:
                self._handle.flush()
                self._handle.close()

    def __repr__(self) -> str:
        return f"EventLog({self._seq} events, path={self.path!r})"


class EventSpanSink:
    """Tracer sink forwarding finished spans into an event log, which
    is how the span stream and the decision stream end up interleaved
    in one file."""

    def __init__(self, log: EventLog):
        self.log = log

    def emit(self, span: Dict[str, Any]) -> None:
        self.log.emit_span(span)

    def close(self) -> None:
        pass


def read_events(path: str) -> Iterator[Dict[str, Any]]:
    """Iterate the events of a JSONL file, validating the envelope."""
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError as error:
                raise ValueError(
                    f"{path}:{number}: not valid JSON: {error}"
                ) from None
            if not isinstance(event, dict) or "type" not in event:
                raise ValueError(
                    f"{path}:{number}: not an event envelope"
                )
            version = event.get("v")
            if version != EVENT_SCHEMA_VERSION:
                raise ValueError(
                    f"{path}:{number}: schema version {version!r}, "
                    f"expected {EVENT_SCHEMA_VERSION}"
                )
            yield event


def iter_session_events(
    path: str, strict_sequence: bool = True
) -> Iterator[Dict[str, Any]]:
    """Iterate a written event file with gap detection.

    With ``strict_sequence`` (default) the per-log ``seq`` numbers must
    be gap-free within a log session — a truncated or interleaved file
    fails loudly instead of producing a silently partial stream.  A
    ``seq`` of 1 starts a new session (the file is opened in append
    mode, so several runs may share it).  Both :func:`replay` and
    :meth:`repro.audit.AuditLedger.replay` fold over this iterator, so
    they enforce the same integrity contract.
    """
    expected = None
    for event in read_events(path):
        if strict_sequence:
            seq = event.get("seq")
            if seq != 1 and seq != expected:
                raise ValueError(
                    f"{path}: sequence gap: expected seq "
                    f"{expected if expected is not None else 1}, "
                    f"got {seq!r}"
                )
            expected = (seq or 0) + 1
        yield event


def replay(path: str, strict_sequence: bool = True) -> Dict[str, Any]:
    """Fold a written event file back into a summary (see
    :func:`iter_session_events` for the sequence contract)."""
    summary = new_summary()
    for event in iter_session_events(path, strict_sequence):
        fold(summary, event)
    return summary
