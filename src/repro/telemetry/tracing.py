"""Span-based tracing with pluggable sinks.

A :class:`Span` is a named, timed region of execution with attributes
and (via the tracer's per-thread stack) a parent — so a chase run
produces a tree like::

    chase.run
    ├── chase.stratum[0]
    │   ├── chase.round        {round: 1, new_facts: 12}
    │   └── chase.round        {round: 2, new_facts: 0}
    └── chase.stratum[1] ...

Finished spans are emitted to every registered sink as flat dicts
(``span_id``/``parent_id`` re-encode the tree), which is the usual
JSONL trace shape.  Two sinks ship:

* :class:`RingBufferSink` — keeps the last N spans in memory (default
  sink; what :func:`ChaseResult.stats` and the tests read back);
* :class:`JSONLFileSink` — appends one JSON object per line (the CLI
  ``--trace-out FILE.jsonl`` flag).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional


class Span:
    """One timed region; durations are integer nanoseconds."""

    __slots__ = (
        "name", "span_id", "parent_id", "start_ns", "end_ns", "attributes",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attributes: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ns = time.perf_counter_ns()
        self.end_ns: Optional[int] = None
        self.attributes: Dict[str, Any] = dict(attributes or {})

    def set(self, **attributes: Any) -> None:
        """Attach (or update) attributes on the open span."""
        self.attributes.update(attributes)

    @property
    def duration_ns(self) -> int:
        end = self.end_ns if self.end_ns is not None else (
            time.perf_counter_ns()
        )
        return end - self.start_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "attributes": self.attributes,
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration_ns}ns)"


class _NullSpan:
    """Shared no-op stand-in returned while telemetry is disabled, so
    call sites can unconditionally do ``span.set(...)``."""

    __slots__ = ()

    def set(self, **attributes: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_SPAN = _NullSpan()


class RingBufferSink:
    """Keeps the most recent ``capacity`` finished spans in memory."""

    def __init__(self, capacity: int = 10_000):
        self._buffer: Deque[Dict[str, Any]] = deque(maxlen=capacity)

    def emit(self, span: Dict[str, Any]) -> None:
        self._buffer.append(span)

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        if name is None:
            return list(self._buffer)
        return [s for s in self._buffer if s["name"] == name]

    def clear(self) -> None:
        self._buffer.clear()

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self._buffer)


class JSONLFileSink:
    """Appends each finished span as one JSON line."""

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def emit(self, span: Dict[str, Any]) -> None:
        line = json.dumps(span, default=str)
        with self._lock:
            self._handle.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()


class _SpanContext:
    """Context manager binding a live span to the tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._finish(self._span)
        return False


class Tracer:
    """Creates nested spans and fans finished ones out to sinks."""

    def __init__(self, sinks: Optional[List[Any]] = None):
        self.sinks: List[Any] = (
            list(sinks) if sinks is not None else [RingBufferSink()]
        )
        self._local = threading.local()
        self._id_lock = threading.Lock()
        self._next_id = 1

    # -- span lifecycle -----------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a span as a context manager; nests under the thread's
        currently open span."""
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        with self._id_lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(name, span_id, parent_id, attributes)
        stack.append(span)
        return _SpanContext(self, span)

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def _finish(self, span: Span) -> None:
        span.end_ns = time.perf_counter_ns()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # out-of-order exit; drop it from wherever it is
            try:
                stack.remove(span)
            except ValueError:
                pass
        record = span.to_dict()
        for sink in self.sinks:
            sink.emit(record)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # -- sink management -----------------------------------------------------

    def add_sink(self, sink: Any) -> None:
        self.sinks.append(sink)

    def ring_buffer(self) -> Optional[RingBufferSink]:
        """The first ring-buffer sink, if any (the default setup has
        exactly one)."""
        for sink in self.sinks:
            if isinstance(sink, RingBufferSink):
                return sink
        return None

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Finished spans from the ring buffer (empty when no ring
        buffer is attached)."""
        buffer = self.ring_buffer()
        return buffer.spans(name) if buffer is not None else []

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def __repr__(self) -> str:
        return f"Tracer({len(self.sinks)} sink(s))"
