"""Dependency-free observability for the engine and framework.

Three layers, all off by default and effectively free while off:

* **Metrics** — a process-wide :class:`MetricsRegistry` of counters,
  gauges and timing histograms (``p50/p95/p99``), snapshot-able to
  plain dicts and mergeable across registries.
* **Tracing** — span trees via ``telemetry.span("chase.run")`` context
  managers, emitted to pluggable sinks (in-memory ring buffer by
  default, JSONL file via :class:`JSONLFileSink`).
* **Profiling** — the :func:`profiled` decorator and
  :func:`profile_block` helper, both backed by
  ``time.perf_counter_ns``.

Typical use::

    from repro import telemetry

    telemetry.enable(trace_path="run.jsonl")
    result = program.run()
    print(telemetry.format_snapshot(telemetry.snapshot()))
    telemetry.disable()

Instrumented call sites follow one pattern::

    from ..telemetry import state as _telemetry

    if _telemetry.enabled:
        _telemetry.registry.counter("store.adds").inc()

so the disabled cost is a single attribute check.  The ``enabled``
switch, registry and tracer live on the shared :data:`state` singleton;
:func:`enable`/:func:`disable`/:func:`reset` manage it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ._state import TelemetryState, state
from .attribution import RuleCost, RuleProfile
from .events import (
    EVENT_SCHEMA_VERSION,
    EventLog,
    EventSpanSink,
    read_events,
    replay,
)
from .inspect import (
    ChaseProgress,
    PeakRSSSampler,
    PlanAnalysis,
    StepStats,
    current_rss_bytes,
    render_explain,
    render_memory,
)
from .exporters import (
    MetricsHTTPServer,
    parse_metric_key,
    spans_to_otlp,
    to_prometheus_text,
    validate_prometheus_text,
    write_otlp_spans,
    write_prometheus,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_snapshot,
    metric_key,
)
from .profiling import profile_block, profiled
from .tracing import (
    JSONLFileSink,
    NULL_SPAN,
    RingBufferSink,
    Span,
    Tracer,
)

__all__ = [
    "ChaseProgress",
    "Counter",
    "EVENT_SCHEMA_VERSION",
    "EventLog",
    "EventSpanSink",
    "Gauge",
    "Histogram",
    "JSONLFileSink",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "PeakRSSSampler",
    "PlanAnalysis",
    "RingBufferSink",
    "RuleCost",
    "RuleProfile",
    "Span",
    "StepStats",
    "TelemetryState",
    "Tracer",
    "counter",
    "current_rss_bytes",
    "disable",
    "enable",
    "enabled",
    "events",
    "format_snapshot",
    "gauge",
    "histogram",
    "metric_key",
    "parse_metric_key",
    "profile_block",
    "profiled",
    "read_events",
    "registry",
    "render_explain",
    "render_memory",
    "replay",
    "reset",
    "rule_profile",
    "snapshot",
    "span",
    "spans_to_otlp",
    "state",
    "to_prometheus_text",
    "tracer",
    "validate_prometheus_text",
    "write_otlp_spans",
    "write_prometheus",
]


def enable(
    trace_path: Optional[str] = None,
    events_path: Optional[str] = None,
    events: bool = False,
) -> TelemetryState:
    """Turn telemetry on.

    ``trace_path`` additionally attaches a :class:`JSONLFileSink` so
    every finished span lands in that file.  ``events_path`` (or
    ``events=True`` for an in-memory log) attaches an
    :class:`EventLog`: decision events, lifecycle events, finished
    spans and metric snapshots all land in one replayable JSONL
    stream.
    """
    state.enabled = True
    if trace_path is not None:
        state.tracer.add_sink(JSONLFileSink(trace_path))
    if (events_path is not None or events) and state.events is None:
        log = EventLog(path=events_path)
        state.events = log
        state.tracer.add_sink(EventSpanSink(log))
    return state


def disable() -> None:
    """Turn telemetry off and flush/close any file sinks.  An attached
    event log receives a final ``metrics`` snapshot event (so a replay
    sees the end-of-run counters) and is closed and detached."""
    state.enabled = False
    log = state.events
    if log is not None:
        log.emit_metrics(state.registry.snapshot())
        log.close()
        state.events = None
        state.tracer.sinks = [
            sink for sink in state.tracer.sinks
            if not (isinstance(sink, EventSpanSink) and sink.log is log)
        ]
    state.tracer.close()


def enabled() -> bool:
    return state.enabled


def reset() -> None:
    """Clear all recorded metrics, spans and events (fresh
    registry/tracer); keeps the current on/off state."""
    state.registry = MetricsRegistry()
    state.tracer.close()
    state.tracer = Tracer()
    if state.events is not None:
        state.events.close()
        state.events = None


def registry() -> MetricsRegistry:
    return state.registry


def tracer() -> Tracer:
    return state.tracer


def events() -> Optional[EventLog]:
    """The attached event log, if any."""
    return state.events


def rule_profile() -> RuleProfile:
    """Per-rule cost attribution over the process-wide registry."""
    return RuleProfile.from_registry(state.registry)


def span(name: str, **attributes: Any):
    """Open a span when enabled; a shared no-op otherwise."""
    if not state.enabled:
        return NULL_SPAN
    return state.tracer.span(name, **attributes)


def counter(name: str, **labels: Any) -> Counter:
    return state.registry.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    return state.registry.gauge(name, **labels)


def histogram(name: str, **labels: Any) -> Histogram:
    return state.registry.histogram(name, **labels)


def snapshot() -> Dict[str, Dict[str, Any]]:
    return state.registry.snapshot()
