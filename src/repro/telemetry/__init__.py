"""Dependency-free observability for the engine and framework.

Three layers, all off by default and effectively free while off:

* **Metrics** — a process-wide :class:`MetricsRegistry` of counters,
  gauges and timing histograms (``p50/p95/p99``), snapshot-able to
  plain dicts and mergeable across registries.
* **Tracing** — span trees via ``telemetry.span("chase.run")`` context
  managers, emitted to pluggable sinks (in-memory ring buffer by
  default, JSONL file via :class:`JSONLFileSink`).
* **Profiling** — the :func:`profiled` decorator and
  :func:`profile_block` helper, both backed by
  ``time.perf_counter_ns``.

Typical use::

    from repro import telemetry

    telemetry.enable(trace_path="run.jsonl")
    result = program.run()
    print(telemetry.format_snapshot(telemetry.snapshot()))
    telemetry.disable()

Instrumented call sites follow one pattern::

    from ..telemetry import state as _telemetry

    if _telemetry.enabled:
        _telemetry.registry.counter("store.adds").inc()

so the disabled cost is a single attribute check.  The ``enabled``
switch, registry and tracer live on the shared :data:`state` singleton;
:func:`enable`/:func:`disable`/:func:`reset` manage it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ._state import TelemetryState, state
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_snapshot,
    metric_key,
)
from .profiling import profile_block, profiled
from .tracing import (
    JSONLFileSink,
    NULL_SPAN,
    RingBufferSink,
    Span,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JSONLFileSink",
    "MetricsRegistry",
    "RingBufferSink",
    "Span",
    "TelemetryState",
    "Tracer",
    "counter",
    "disable",
    "enable",
    "enabled",
    "format_snapshot",
    "gauge",
    "histogram",
    "metric_key",
    "profile_block",
    "profiled",
    "registry",
    "reset",
    "snapshot",
    "span",
    "state",
    "tracer",
]


def enable(trace_path: Optional[str] = None) -> TelemetryState:
    """Turn telemetry on.  ``trace_path`` additionally attaches a
    :class:`JSONLFileSink` so every finished span lands in that file."""
    state.enabled = True
    if trace_path is not None:
        state.tracer.add_sink(JSONLFileSink(trace_path))
    return state


def disable() -> None:
    """Turn telemetry off and flush/close any file sinks."""
    state.enabled = False
    state.tracer.close()


def enabled() -> bool:
    return state.enabled


def reset() -> None:
    """Clear all recorded metrics and spans (fresh registry/tracer);
    keeps the current on/off state."""
    state.registry = MetricsRegistry()
    state.tracer.close()
    state.tracer = Tracer()


def registry() -> MetricsRegistry:
    return state.registry


def tracer() -> Tracer:
    return state.tracer


def span(name: str, **attributes: Any):
    """Open a span when enabled; a shared no-op otherwise."""
    if not state.enabled:
        return NULL_SPAN
    return state.tracer.span(name, **attributes)


def counter(name: str, **labels: Any) -> Counter:
    return state.registry.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    return state.registry.gauge(name, **labels)


def histogram(name: str, **labels: Any) -> Histogram:
    return state.registry.histogram(name, **labels)


def snapshot() -> Dict[str, Dict[str, Any]]:
    return state.registry.snapshot()
