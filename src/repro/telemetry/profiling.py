"""Profiling hooks: ``@profiled`` and ``profile_block``.

Both are thin wrappers over ``time.perf_counter_ns`` that record into a
timing histogram (``<name>_ns``) in the active registry, and both are
near-free while telemetry is disabled: the decorator's wrapper does one
attribute check before calling through, and ``profile_block`` returns a
shared no-op context manager.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Optional, TypeVar

from ._state import state
from .tracing import NULL_SPAN

F = TypeVar("F", bound=Callable[..., Any])


def profiled(
    name: Optional[str] = None, **labels: Any
) -> Callable[[F], F]:
    """Decorator recording each call's wall time into the histogram
    ``<name>_ns`` (default: ``module.qualname`` of the function)::

        @profiled("risk.assess")
        def assess(...): ...
    """

    def decorate(function: F) -> F:
        metric = name or (
            f"{function.__module__.rsplit('.', 1)[-1]}."
            f"{function.__qualname__}"
        )

        @functools.wraps(function)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not state.enabled:
                return function(*args, **kwargs)
            start = time.perf_counter_ns()
            try:
                return function(*args, **kwargs)
            finally:
                state.registry.histogram(
                    metric + "_ns", **labels
                ).observe(time.perf_counter_ns() - start)

        return wrapper  # type: ignore[return-value]

    return decorate


class _ProfileBlock:
    """Times a ``with`` block into ``<name>_ns``."""

    __slots__ = ("_name", "_labels", "_start")

    def __init__(self, name: str, labels: dict):
        self._name = name
        self._labels = labels
        self._start = 0

    def __enter__(self) -> "_ProfileBlock":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        state.registry.histogram(
            self._name + "_ns", **self._labels
        ).observe(time.perf_counter_ns() - self._start)
        return False


def profile_block(name: str, **labels: Any):
    """Context manager twin of :func:`profiled`::

        with profile_block("chase.enumerate_bindings", rule="r2"):
            ...
    """
    if not state.enabled:
        return NULL_SPAN
    return _ProfileBlock(name, labels)
