"""Per-rule cost attribution: where did the reasoning time go?

The chase engine records, per rule label, the wall time it spent
*matching* the rule's body (``chase.match_ns{rule=}``) and *firing*
matched bindings (``chase.fire_ns{rule=}``), next to the work counters
it already kept (bindings enumerated, facts produced, labelled nulls
invented) and the rule's stratum (``chase.rule_stratum{rule=}``).
This module folds those instruments into one profile:

    profile = RuleProfile.from_snapshot(result.stats["telemetry"])
    print(profile.render(top=5))          # "hot rules" text report
    json.dumps(profile.to_json())         # machine-readable twin

A profile row answers the data officer's question directly: rule
``r2`` spent 120 ms matching and 3 ms firing, produced 40 facts and
12 nulls in stratum 1 — so optimizing ``r2``'s join order matters and
its head does not.  :meth:`RuleProfile.strata` rolls the same numbers
up per stratum.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional

from ._state import state
from .exporters import parse_metric_key


class RuleCost:
    """Aggregated cost of one rule across a snapshot."""

    __slots__ = (
        "rule", "stratum", "match_ns", "fire_ns", "match_calls",
        "bindings", "firings", "facts", "nulls", "derivations",
    )

    def __init__(self, rule: str):
        self.rule = rule
        self.stratum: Optional[int] = None
        self.match_ns = 0.0
        self.fire_ns = 0.0
        self.match_calls = 0
        self.bindings = 0
        self.firings = 0
        self.facts = 0
        self.nulls = 0
        self.derivations = 0

    @property
    def total_ns(self) -> float:
        return self.match_ns + self.fire_ns

    def to_json(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "stratum": self.stratum,
            "match_ns": self.match_ns,
            "fire_ns": self.fire_ns,
            "total_ns": self.total_ns,
            "match_calls": self.match_calls,
            "bindings": self.bindings,
            "firings": self.firings,
            "facts": self.facts,
            "nulls": self.nulls,
            "derivations": self.derivations,
        }


#: (snapshot section, metric name) -> RuleCost attribute fed by it.
_COUNTER_FIELDS = {
    "chase.bindings": "bindings",
    "chase.rule_firings": "firings",
    "chase.new_facts": "facts",
    "chase.nulls_introduced_by_rule": "nulls",
    "provenance.derivations": "derivations",
}


class RuleProfile:
    """Per-rule cost rows plus per-stratum rollups."""

    def __init__(self, rules: Dict[str, RuleCost]):
        self._rules = rules

    @classmethod
    def from_snapshot(
        cls, snapshot: Mapping[str, Any]
    ) -> "RuleProfile":
        """Build a profile from a registry snapshot (per-run —
        ``ChaseResult.stats["telemetry"]`` — or the global one)."""
        rules: Dict[str, RuleCost] = {}

        def cost(rule: str) -> RuleCost:
            entry = rules.get(rule)
            if entry is None:
                entry = rules[rule] = RuleCost(rule)
            return entry

        for key, data in snapshot.get("histograms", {}).items():
            name, labels = parse_metric_key(key)
            rule = labels.get("rule")
            if rule is None:
                continue
            if name == "chase.match_ns":
                entry = cost(rule)
                entry.match_ns += data.get("sum", 0.0)
                entry.match_calls += int(data.get("count", 0))
            elif name == "chase.fire_ns":
                cost(rule).fire_ns += data.get("sum", 0.0)
        for key, value in snapshot.get("counters", {}).items():
            name, labels = parse_metric_key(key)
            rule = labels.get("rule")
            if rule is None or name not in _COUNTER_FIELDS:
                continue
            field = _COUNTER_FIELDS[name]
            entry = cost(rule)
            setattr(entry, field, getattr(entry, field) + int(value))
        for key, value in snapshot.get("gauges", {}).items():
            name, labels = parse_metric_key(key)
            if name != "chase.rule_stratum":
                continue
            rule = labels.get("rule")
            if rule is not None:
                cost(rule).stratum = int(value)
        return cls(rules)

    @classmethod
    def from_registry(cls, registry=None) -> "RuleProfile":
        """Profile the active (default: process-wide) registry."""
        registry = registry if registry is not None else state.registry
        return cls.from_snapshot(registry.snapshot())

    # -- views ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rules)

    def __bool__(self) -> bool:
        return bool(self._rules)

    def rows(self, top: Optional[int] = None) -> List[RuleCost]:
        """Rule costs, hottest (total wall time, then facts) first."""
        ordered = sorted(
            self._rules.values(),
            key=lambda c: (-c.total_ns, -c.facts, c.rule),
        )
        return ordered[:top] if top is not None else ordered

    def rule(self, name: str) -> Optional[RuleCost]:
        return self._rules.get(name)

    @property
    def total_ns(self) -> float:
        return sum(c.total_ns for c in self._rules.values())

    def strata(self) -> Dict[int, Dict[str, Any]]:
        """Per-stratum rollup (rules without a recorded stratum land
        in -1): time, facts, nulls and the member rules."""
        rollup: Dict[int, Dict[str, Any]] = {}
        for cost in self._rules.values():
            stratum = cost.stratum if cost.stratum is not None else -1
            entry = rollup.setdefault(stratum, {
                "stratum": stratum, "match_ns": 0.0, "fire_ns": 0.0,
                "total_ns": 0.0, "facts": 0, "nulls": 0, "rules": [],
            })
            entry["match_ns"] += cost.match_ns
            entry["fire_ns"] += cost.fire_ns
            entry["total_ns"] += cost.total_ns
            entry["facts"] += cost.facts
            entry["nulls"] += cost.nulls
            entry["rules"].append(cost.rule)
        for entry in rollup.values():
            entry["rules"].sort()
        return dict(sorted(rollup.items()))

    def to_json(self) -> Dict[str, Any]:
        return {
            "total_ns": self.total_ns,
            "rules": [cost.to_json() for cost in self.rows()],
            "strata": list(self.strata().values()),
        }

    def to_json_text(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent)

    def render(self, top: int = 10) -> str:
        """The top-k "hot rules" text report."""
        rows = self.rows(top)
        if not rows:
            return "(no per-rule cost recorded — run with telemetry " \
                   "enabled)"
        total = self.total_ns or 1.0
        header = (
            f"{'rule':<20} {'strat':>5} {'total':>9} {'%':>6} "
            f"{'match':>9} {'fire':>9} {'bind':>8} {'fire#':>7} "
            f"{'facts':>7} {'nulls':>6}"
        )
        lines = [
            f"hot rules (top {len(rows)} of {len(self)}, "
            f"total {total / 1e6:.2f} ms):",
            header,
            "-" * len(header),
        ]
        for cost in rows:
            stratum = "-" if cost.stratum is None else str(cost.stratum)
            lines.append(
                f"{cost.rule:<20.20} {stratum:>5} "
                f"{cost.total_ns / 1e6:>7.2f}ms "
                f"{100 * cost.total_ns / total:>5.1f}% "
                f"{cost.match_ns / 1e6:>7.2f}ms "
                f"{cost.fire_ns / 1e6:>7.2f}ms "
                f"{cost.bindings:>8} {cost.firings:>7} "
                f"{cost.facts:>7} {cost.nulls:>6}"
            )
        strata = self.strata()
        if len(strata) > 1 or -1 not in strata:
            lines.append("")
            lines.append("per-stratum rollup:")
            for stratum, entry in strata.items():
                label = "?" if stratum == -1 else str(stratum)
                lines.append(
                    f"  stratum {label}: {entry['total_ns'] / 1e6:.2f} ms "
                    f"({entry['match_ns'] / 1e6:.2f} match / "
                    f"{entry['fire_ns'] / 1e6:.2f} fire), "
                    f"{entry['facts']} facts, {entry['nulls']} nulls, "
                    f"{len(entry['rules'])} rule(s)"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"RuleProfile({len(self)} rule(s), "
            f"{self.total_ns / 1e6:.2f} ms attributed)"
        )
