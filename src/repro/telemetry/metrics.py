"""Metric primitives and the process-wide registry.

Three instrument kinds, mirroring the usual monitoring vocabulary:

* :class:`Counter` — monotonically increasing integer (rule firings,
  facts added, nulls introduced);
* :class:`Gauge` — last-written value (frontier size, store size);
* :class:`Histogram` — distribution of observations with exact
  count/sum/min/max and approximate p50/p95/p99 over a bounded
  reservoir (wall-time of a span, bindings per rule application).

The :class:`MetricsRegistry` hands out instruments keyed by name plus
optional labels (``registry.counter("chase.rule_firings", rule="r2")``),
snapshots everything to plain dicts (JSON-serialisable, used by the
CLI ``--profile`` flag and the bench trajectory), and merges snapshots
from other registries (used when worker registries are folded into a
session-level one).

Everything here is dependency-free and safe to import from hot paths;
instrument handles are plain objects whose ``inc``/``set``/``observe``
methods do a few dict/list operations.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: Histograms keep at most this many samples for percentile estimation;
#: beyond it, samples are overwritten round-robin (count/sum/min/max
#: stay exact).
RESERVOIR_SIZE = 4096

#: Percentiles reported by every histogram snapshot.
PERCENTILES = (50, 95, 99)


def metric_key(name: str, labels: Mapping[str, Any]) -> str:
    """Canonical string key for a (name, labels) pair:
    ``name{k1=v1,k2=v2}`` with labels sorted by key."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count.

    ``+=`` on a Python int is read-modify-write, so concurrent
    emitters (the parallel chase's worker threads) would lose
    increments without the lock.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A last-write-wins numeric value."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """A distribution with exact totals and reservoir percentiles.

    ``observe`` updates five fields; the lock keeps count/sum/min/max
    exact under concurrent observers.  ``merge_from`` replays inline
    under the same lock (never via :meth:`observe`, which would
    deadlock on the non-reentrant lock).
    """

    __slots__ = ("count", "total", "min", "max", "_samples", "_cursor",
                 "_lock")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._cursor = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._observe(value)

    def _observe(self, value: float) -> None:
        """Unlocked core of :meth:`observe`; callers hold ``_lock``."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._samples) < RESERVOIR_SIZE:
            self._samples.append(value)
        else:
            # Round-robin overwrite: cheap, deterministic, and good
            # enough for the tail percentiles we report.
            self._samples[self._cursor] = value
            self._cursor = (self._cursor + 1) % RESERVOIR_SIZE

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the retained samples.

        Well-defined on every input: an empty series yields ``0.0``, a
        single-sample series yields that sample for any ``p``, and
        ``p`` outside ``[0, 100]`` is clamped rather than raising —
        percentile queries are read paths and must never take the
        exporter down.
        """
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
        p = max(0.0, min(100.0, p))
        rank = max(0, min(len(ordered) - 1,
                          int(round(p / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def extend(self, samples: Iterable[float]) -> None:
        with self._lock:
            for sample in samples:
                self._observe(sample)

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram in, keeping count/sum/min/max exact
        even when the other's reservoir already truncated (its min/max
        may live outside the retained samples), so merging is
        associative on every exact aggregate."""
        with other._lock:
            samples = list(other._samples)
            other_count = other.count
            other_total = other.total
            other_min = other.min
            other_max = other.max
        with self._lock:
            for sample in samples:
                self._observe(sample)
            # The sample replay above double-counts nothing but only
            # saw the retained reservoir: patch the exact aggregates.
            self.count += other_count - len(samples)
            self.total += other_total - sum(samples)
            if other_min is not None and (
                self.min is None or other_min < self.min
            ):
                self.min = other_min
            if other_max is not None and (
                self.max is None or other_max > self.max
            ):
                self.max = other_max

    def to_dict(self) -> Dict[str, float]:
        with self._lock:
            data: Dict[str, float] = {
                "count": self.count,
                "sum": self.total,
                "mean": self.mean,
                "min": self.min if self.min is not None else 0.0,
                "max": self.max if self.max is not None else 0.0,
            }
            ordered = sorted(self._samples)
        for p in PERCENTILES:
            if ordered:
                rank = max(0, min(len(ordered) - 1,
                                  int(round(p / 100.0 * (len(ordered) - 1)))))
                data[f"p{p}"] = ordered[rank]
            else:
                data[f"p{p}"] = 0.0
        return data


class MetricsRegistry:
    """Named instruments with label support, snapshot and merge."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (create on first use) ----------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = metric_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(key, Counter())
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = metric_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge())
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = metric_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(key, Histogram())
        return instrument

    # -- views ------------------------------------------------------------

    def counters(self, prefix: str = "") -> Dict[str, int]:
        return {
            key: counter.value
            for key, counter in sorted(self._counters.items())
            if key.startswith(prefix)
        }

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Everything as a plain JSON-serialisable dict."""
        return {
            "counters": {
                key: counter.value
                for key, counter in sorted(self._counters.items())
            },
            "gauges": {
                key: gauge.value
                for key, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                key: histogram.to_dict()
                for key, histogram in sorted(self._histograms.items())
            },
        }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one: counters add, gauges
        take the other's value, histogram samples are appended."""
        for key, counter in other._counters.items():
            self._raw_counter(key).inc(counter.value)
        for key, gauge in other._gauges.items():
            self._raw_gauge(key).set(gauge.value)
        for key, histogram in other._histograms.items():
            self._raw_histogram(key).merge_from(histogram)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- helpers -----------------------------------------------------------

    def _raw_counter(self, key: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(key, Counter())

    def _raw_gauge(self, key: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(key, Gauge())

    def _raw_histogram(self, key: str) -> Histogram:
        with self._lock:
            return self._histograms.setdefault(key, Histogram())

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, "
            f"{len(self._histograms)} histograms)"
        )


def format_snapshot(snapshot: Mapping[str, Any], indent: str = "  ") -> str:
    """Human-readable rendering of a registry snapshot (the CLI
    ``--profile`` report)."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        for key, value in counters.items():
            lines.append(f"{indent}{key} = {value}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for key, value in gauges.items():
            lines.append(f"{indent}{key} = {value:g}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for key, data in histograms.items():
            lines.append(
                f"{indent}{key}: n={data['count']} mean={data['mean']:.4g} "
                f"p50={data['p50']:.4g} p95={data['p95']:.4g} "
                f"p99={data['p99']:.4g} max={data['max']:.4g}"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"
