"""Atoms, facts and body literals.

An *atom* is ``R(t1, ..., tn)`` for a predicate ``R`` and terms ``ti``.
A ground atom is a *fact*.  Rule bodies additionally contain negated
literals (``not R(...)``, under stratified negation), boolean conditions
and assignments over expressions, and calls to ``#``-prefixed external
predicates (the plug-in mechanism behind ``#risk`` / ``#anonymize``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

from .expressions import Expression
from .terms import Term, Variable, wrap_tuple


class Atom:
    """A relational atom ``predicate(terms...)``.

    Predicates whose name starts with ``#`` are external: they are not
    stored in the fact store but resolved through the external-predicate
    registry at evaluation time.
    """

    __slots__ = ("predicate", "terms", "_hash", "_ground", "line", "column")

    def __init__(
        self,
        predicate: str,
        terms: Iterable[Term],
        line: Optional[int] = None,
        column: Optional[int] = None,
    ):
        self.predicate = predicate
        self.terms = tuple(terms)
        self._hash = hash((self.predicate, self.terms))
        self._ground = None
        #: 1-based source location of the predicate token when the atom
        #: came from the parser; ``None`` for programmatic atoms.
        #: Excluded from equality/hashing — two occurrences of the same
        #: fact are the same fact wherever they were written.
        self.line = line
        self.column = column

    @classmethod
    def of(cls, predicate: str, *values) -> "Atom":
        """Build an atom wrapping plain Python values into constants."""
        return cls(predicate, wrap_tuple(values))

    @property
    def arity(self) -> int:
        return len(self.terms)

    @property
    def is_external(self) -> bool:
        return self.predicate.startswith("#")

    @property
    def is_ground(self) -> bool:
        cached = self._ground
        if cached is None:
            cached = self._ground = all(t.is_ground for t in self.terms)
        return cached

    def variables(self) -> Iterator[Variable]:
        for term in self.terms:
            if isinstance(term, Variable):
                yield term

    def substitute(self, bindings) -> "Atom":
        """Apply a substitution, leaving unbound variables in place."""
        new_terms = tuple(
            bindings.get(t, t) if isinstance(t, Variable) else t
            for t in self.terms
        )
        return Atom(self.predicate, new_terms)

    def __eq__(self, other):
        return (
            isinstance(other, Atom)
            and self.predicate == other.predicate
            and self.terms == other.terms
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"Atom({self.predicate!r}, {list(self.terms)!r})"

    def __str__(self):
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate}({args})"


#: A fact is simply a ground atom; the alias documents intent.
Fact = Atom


class Literal:
    """A body literal: an atom, possibly negated."""

    __slots__ = ("atom", "negated")

    def __init__(self, atom: Atom, negated: bool = False):
        self.atom = atom
        self.negated = negated

    def variables(self) -> Iterator[Variable]:
        return self.atom.variables()

    def __eq__(self, other):
        return (
            isinstance(other, Literal)
            and self.atom == other.atom
            and self.negated == other.negated
        )

    def __hash__(self):
        return hash((self.atom, self.negated))

    def __repr__(self):
        prefix = "not " if self.negated else ""
        return f"Literal({prefix}{self.atom})"

    def __str__(self):
        prefix = "not " if self.negated else ""
        return f"{prefix}{self.atom}"


class Condition:
    """A boolean expression that filters body bindings (``R > T``)."""

    __slots__ = ("expression", "line", "column")

    def __init__(
        self,
        expression: Expression,
        line: Optional[int] = None,
        column: Optional[int] = None,
    ):
        self.expression = expression
        self.line = line
        self.column = column

    def variables(self) -> Iterator[Variable]:
        return self.expression.variables()

    def holds(self, bindings) -> bool:
        return bool(self.expression.evaluate(bindings))

    def __repr__(self):
        return f"Condition({self.expression!r})"


class Assignment:
    """An assignment ``X = <expr>`` binding a new variable from bound
    ones.  Distinct from a :class:`Condition` on equality: the target
    variable must be unbound when the assignment is reached."""

    __slots__ = ("target", "expression", "line", "column")

    def __init__(
        self,
        target: Variable,
        expression: Expression,
        line: Optional[int] = None,
        column: Optional[int] = None,
    ):
        self.target = target
        self.expression = expression
        self.line = line
        self.column = column

    def variables(self) -> Iterator[Variable]:
        yield self.target
        yield from self.expression.variables()

    def input_variables(self) -> Iterator[Variable]:
        return self.expression.variables()

    def __repr__(self):
        return f"Assignment({self.target.name} = {self.expression!r})"


class Annotation(tuple):
    """A program annotation ``@name(args...).`` with its source span.

    Subclasses ``tuple`` so existing consumers that unpack annotations
    as ``(name, args)`` pairs keep working unchanged, while span-aware
    code (the flow analysis, SARIF output) reads ``.line``/``.column``.
    Programmatically built annotations may omit the span.
    """

    def __new__(
        cls,
        name: str,
        args: Iterable = (),
        line: Optional[int] = None,
        column: Optional[int] = None,
    ):
        self = super().__new__(cls, (name, tuple(args)))
        self.line = line
        self.column = column
        return self

    @property
    def name(self) -> str:
        return self[0]

    @property
    def args(self) -> Tuple:
        return self[1]

    def __repr__(self):
        rendered = ", ".join(repr(arg) for arg in self.args)
        return f"Annotation(@{self.name}({rendered}))"


def project(atom: Atom, positions: Iterable[int]) -> Tuple[Term, ...]:
    """Project an atom's terms onto the given positions."""
    return tuple(atom.terms[i] for i in positions)


def rename_apart(atom: Atom, suffix: str) -> Atom:
    """Rename every variable in the atom by appending ``suffix`` —
    used to keep rules variable-disjoint when composing programs."""
    renamed = tuple(
        Variable(t.name + suffix) if isinstance(t, Variable) else t
        for t in atom.terms
    )
    return Atom(atom.predicate, renamed)
