"""Compiled join plans: the chase engine's query-plan layer.

The legacy enumerator (:meth:`ChaseEngine._extend_binding`) re-derives
its join order *per partial binding* — every extension step scans the
remaining literals, counts bound positions against the current
substitution and sizes relations, then recurses.  That work is
identical across the thousands of bindings a round enumerates, so this
module hoists it to rule-compilation time, the way the Vadalog system
compiles rules into reusable execution pipelines instead of
interpreting them tuple by tuple.

For every rule the compiler produces one :class:`JoinPlan` per
semi-naive delta literal plus a first-round plan.  A plan is a flat
sequence of steps executed by an iterative matcher (no recursion, one
shared mutable substitution):

* :class:`ScanStep` — probe one positive literal through a composite
  (multi-position) index; the probe layout (which positions form the
  key, which bind new variables, which check repeated variables) is
  fixed at compile time by :func:`~.unification.probe_layout`.
* :class:`AssignStep` / :class:`FilterStep` — assignments and boolean
  conditions *pushed down* to the earliest point where their inputs
  are bound.  This is the plan layer's big win: an assignment target
  that feeds a later literal (``Q = project(VSet, ASet)`` feeding
  ``tupleFreq(Q, F)``) turns that literal's enumeration from a cross
  product filtered afterwards into a single hash probe.
* :class:`NegationStep` — a stratified negation check, scheduled once
  every positively-bindable variable of the negated atom is bound.
  Its layout deliberately ignores assignment-bound variables so the
  check matches the legacy enumerator's semantics exactly (the legacy
  path checks negation before assignments run).

Literal order is fixed up front by a greedy bound-position /
shared-variable / arity heuristic; the delta literal always leads.

**Fidelity contract.** Planned evaluation must be indistinguishable
from the legacy enumerator (it is differentially tested against it in
CI).  Pushed-down expressions are the one place the paths could
diverge: a pushed expression may raise on a partial binding that the
legacy path would never fully join.  Steps therefore raise
:class:`PlanFallback` instead of letting the error escape, and the
engine re-enumerates that rule with the legacy path — reproducing the
legacy outcome bit for bit, error or not.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, \
    Tuple

from ..telemetry.inspect import PlanAnalysis, StepStats
from .atoms import Assignment, Atom, Condition, Fact, Literal
from .database import FactStore
from .expressions import evaluate_to_term
from .rules import Rule
from .terms import Term, Variable
from .unification import Substitution, probe_layout


class PlanFallback(Exception):
    """A compiled step cannot decide the current partial binding (a
    pushed-down expression raised).  The engine catches this and
    re-enumerates the rule with the legacy recursive path, which
    reproduces the legacy semantics exactly — including whether the
    original error surfaces at all."""


_SENTINEL = object()


def _timed(iterator: Iterator[bool], stats: StepStats) -> Iterator[bool]:
    """Wrap a step iterator with per-step actuals: one invocation per
    upstream row, one row_out per yield, wall time charged to the time
    spent *inside* this iterator (downstream steps excluded).  Uses the
    two-argument ``next`` so a :class:`PlanFallback` raised by the step
    propagates unchanged."""
    stats.invocations += 1
    while True:
        start = perf_counter_ns()
        item = next(iterator, _SENTINEL)
        stats.wall_ns += perf_counter_ns() - start
        if item is _SENTINEL:
            return
        stats.rows_out += 1
        yield item


class _Step:
    """One plan step: ``iterate`` yields once per way of extending the
    shared substitution, restoring its bindings between yields."""

    __slots__ = ()

    def iterate(self, store: FactStore, subst: Substitution,
                premises: List[Fact],
                stats: Optional[StepStats] = None) -> Iterator[bool]:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def explain(self) -> Dict[str, Any]:
        """Static, JSON-serialisable description of this step — the
        shape :func:`repro.telemetry.inspect.render_explain` consumes."""
        return {"op": type(self).__name__, "detail": self.describe()}


class ScanStep(_Step):
    """Probe one positive literal via a composite index."""

    __slots__ = (
        "atom", "predicate", "delta_only",
        "key_positions", "key_consts", "key_vars", "outputs", "repeats",
    )

    def __init__(self, atom: Atom, known: Set[Variable],
                 delta_only: bool = False):
        self.atom = atom
        self.predicate = atom.predicate
        self.delta_only = delta_only
        positions, sources, outputs, repeats = probe_layout(atom, known)
        self.key_positions = positions
        # Split constants from runtime-bound variables once: the probe
        # key template carries constants in place and None where a
        # variable's current value is patched in per call.
        self.key_consts: Tuple = tuple(
            None if isinstance(source, Variable) else source
            for source in sources
        )
        self.key_vars: Tuple[Tuple[int, Variable], ...] = tuple(
            (slot, source)
            for slot, source in enumerate(sources)
            if isinstance(source, Variable)
        )
        self.outputs = outputs
        self.repeats = repeats

    def iterate(self, store, subst, premises, stats=None):
        if self.key_vars:
            key = list(self.key_consts)
            for slot, variable in self.key_vars:
                key[slot] = subst[variable]
            key = tuple(key)
        else:
            key = self.key_consts
        outputs = self.outputs
        repeats = self.repeats
        facts = store.probe(
            self.predicate, self.key_positions, key, self.delta_only
        )
        if stats is not None:
            stats.probe_calls += 1
            if facts:
                stats.probe_hits += 1
                stats.rows_scanned += len(facts)
        for fact in facts:
            terms = fact.terms
            for position, variable in outputs:
                subst[variable] = terms[position]
            ok = True
            for position, variable in repeats:
                if terms[position] != subst[variable]:
                    ok = False
                    break
            if ok:
                premises.append(fact)
                yield True
                premises.pop()
            for _, variable in outputs:
                del subst[variable]

    def describe(self) -> str:
        tag = "delta-scan" if self.delta_only else "scan"
        if self.key_positions:
            tag = "delta-probe" if self.delta_only else "probe"
            keys = ",".join(str(p) for p in self.key_positions)
            return f"{tag} {self.atom} [key positions {keys}]"
        return f"{tag} {self.atom}"

    def explain(self) -> Dict[str, Any]:
        return {
            "op": "scan",
            "detail": self.describe(),
            "predicate": self.predicate,
            "delta_only": self.delta_only,
            "key_positions": list(self.key_positions),
            "binds": [v.name for _, v in self.outputs],
        }


class AssignStep(_Step):
    """Evaluate an assignment as soon as its inputs are bound.  A
    bound target degrades to an equality filter, exactly like the
    legacy finish step."""

    __slots__ = ("assignment",)

    def __init__(self, assignment: Assignment):
        self.assignment = assignment

    def iterate(self, store, subst, premises, stats=None):
        assignment = self.assignment
        try:
            value = evaluate_to_term(assignment.expression, subst)
        except Exception as exc:  # noqa: BLE001 — see PlanFallback
            raise PlanFallback(
                f"assignment to {assignment.target.name} raised "
                f"{type(exc).__name__}"
            ) from exc
        target = assignment.target
        bound = subst.get(target)
        if bound is not None:
            if bound == value:
                yield True
            return
        subst[target] = value
        yield True
        del subst[target]

    def describe(self) -> str:
        return f"assign {self.assignment.target.name} = " \
               f"{self.assignment.expression!r}"

    def explain(self) -> Dict[str, Any]:
        return {
            "op": "assign",
            "detail": self.describe(),
            "target": self.assignment.target.name,
        }


class FilterStep(_Step):
    """Check a boolean condition as soon as its variables are bound."""

    __slots__ = ("condition",)

    def __init__(self, condition: Condition):
        self.condition = condition

    def iterate(self, store, subst, premises, stats=None):
        try:
            ok = self.condition.holds(subst)
        except Exception as exc:  # noqa: BLE001 — see PlanFallback
            raise PlanFallback(
                f"condition raised {type(exc).__name__}"
            ) from exc
        if ok:
            yield True

    def describe(self) -> str:
        return f"filter {self.condition.expression!r}"

    def explain(self) -> Dict[str, Any]:
        return {"op": "filter", "detail": self.describe()}


class NegationStep(_Step):
    """Negation-as-failure over the saturated lower strata.

    The probe layout treats only *positively* bindable variables as
    bound — matching the legacy enumerator, which checks negation
    before assignments run — so scheduling the check earlier than the
    legacy path cannot change its outcome (the store is stable during
    enumeration and the check depends only on its own key values).
    """

    __slots__ = ("atom", "predicate", "key_positions", "key_consts",
                 "key_vars")

    def __init__(self, atom: Atom, positive_vars: Set[Variable]):
        self.atom = atom
        self.predicate = atom.predicate
        bindable = {
            v for v in atom.variables()
            if not v.is_anonymous and v in positive_vars
        }
        positions, sources, _outputs, _repeats = probe_layout(
            atom, bindable
        )
        self.key_positions = positions
        self.key_consts: Tuple = tuple(
            None if isinstance(source, Variable) else source
            for source in sources
        )
        self.key_vars: Tuple[Tuple[int, Variable], ...] = tuple(
            (slot, source)
            for slot, source in enumerate(sources)
            if isinstance(source, Variable)
        )

    def iterate(self, store, subst, premises, stats=None):
        if self.key_vars:
            key = list(self.key_consts)
            for slot, variable in self.key_vars:
                key[slot] = subst[variable]
            key = tuple(key)
        else:
            key = self.key_consts
        facts = store.probe(self.predicate, self.key_positions, key)
        if stats is not None:
            stats.probe_calls += 1
            if facts:
                stats.probe_hits += 1
                stats.rows_scanned += len(facts)
        if not facts:
            yield True

    def describe(self) -> str:
        keys = ",".join(str(p) for p in self.key_positions)
        return f"negation-check not {self.atom} [key positions {keys}]"

    def explain(self) -> Dict[str, Any]:
        return {
            "op": "negation-check",
            "detail": self.describe(),
            "predicate": self.predicate,
            "key_positions": list(self.key_positions),
        }


class JoinPlan:
    """A fixed step sequence for one (rule, delta literal) pair,
    executed by a flat iterative matcher."""

    __slots__ = ("rule", "steps", "delta_index", "has_eval_steps")

    def __init__(self, rule: Rule, steps: Sequence[_Step],
                 delta_index: Optional[int]):
        self.rule = rule
        self.steps = tuple(steps)
        self.delta_index = delta_index
        self.has_eval_steps = any(
            isinstance(step, (AssignStep, FilterStep))
            for step in self.steps
        )

    def execute(
        self, store: FactStore
    ) -> Iterator[Tuple[Substitution, List[Fact]]]:
        """Yield ``(substitution, premises)`` per complete match.  The
        yielded objects are fresh copies; internal state is a single
        mutable substitution un/re-wound by the step iterators."""
        steps = self.steps
        n = len(steps)
        subst: Substitution = {}
        premises: List[Fact] = []
        if n == 0:
            yield {}, []
            return
        stack: List[Iterator[bool]] = [
            steps[0].iterate(store, subst, premises)
        ]
        while stack:
            if next(stack[-1], None) is None:
                stack.pop()
                continue
            depth = len(stack)
            if depth == n:
                yield dict(subst), list(premises)
            else:
                stack.append(steps[depth].iterate(store, subst, premises))

    def execute_analyzed(
        self, store: FactStore, analysis: PlanAnalysis
    ) -> Iterator[Tuple[Substitution, List[Fact]]]:
        """:meth:`execute` with per-step actuals folded into
        ``analysis`` — the opt-in ANALYZE path.  Step iterators are
        wrapped in a timing shim, and scan/negation steps count their
        own index probes; the matcher itself is unchanged, so planned
        semantics (including :class:`PlanFallback`) are identical."""
        steps = self.steps
        n = len(steps)
        analysis.executions += 1
        subst: Substitution = {}
        premises: List[Fact] = []
        if n == 0:
            analysis.matches += 1
            yield {}, []
            return
        step_stats = analysis.steps

        def open_step(depth: int) -> Iterator[bool]:
            stats = step_stats[depth]
            return _timed(
                steps[depth].iterate(store, subst, premises, stats),
                stats,
            )

        stack: List[Iterator[bool]] = [open_step(0)]
        while stack:
            if next(stack[-1], None) is None:
                stack.pop()
                continue
            depth = len(stack)
            if depth == n:
                analysis.matches += 1
                yield dict(subst), list(premises)
            else:
                stack.append(open_step(depth))

    def describe(self) -> List[str]:
        return [step.describe() for step in self.steps]

    def explain(self) -> List[Dict[str, Any]]:
        return [step.explain() for step in self.steps]


class RulePlans:
    """All compiled plans for one rule: a first-round plan plus one
    delta plan per positive body literal."""

    __slots__ = (
        "rule", "first_round", "delta_plans", "has_positives",
        "streamable", "unplannable", "reason",
    )

    def __init__(self, rule, first_round, delta_plans, has_positives,
                 streamable, unplannable=False, reason=""):
        self.rule = rule
        self.first_round = first_round
        #: ``(literal_index, predicate, plan)`` triples.
        self.delta_plans = delta_plans
        self.has_positives = has_positives
        #: True when bindings may fire as they are found: the rule's
        #: firings cannot feed its own enumeration (no externals, head
        #: disjoint from the positive body) and no pushed-down
        #: expression can trigger a mid-stream legacy fallback.
        self.streamable = streamable
        self.unplannable = unplannable
        self.reason = reason

    def describe(self) -> Dict[str, List[str]]:
        if self.unplannable:
            return {"unplannable": [self.reason]}
        dump = {"first-round": self.first_round.describe()}
        for index, predicate, plan in self.delta_plans:
            dump[f"delta[{index}:{predicate}]"] = plan.describe()
        return dump

    def named_plans(self) -> List[Tuple[str, "JoinPlan"]]:
        """``(name, plan)`` pairs in execution order (first-round plan
        first) — the iteration order every explain consumer shares."""
        if self.unplannable:
            return []
        named = [("first-round", self.first_round)]
        for index, predicate, plan in self.delta_plans:
            named.append((f"delta[{index}:{predicate}]", plan))
        return named

    def explain(self) -> Dict[str, Any]:
        """Structured, JSON-serialisable description of every plan."""
        doc: Dict[str, Any] = {
            "unplannable": self.unplannable,
            "streamable": self.streamable,
        }
        if self.unplannable:
            doc["reason"] = self.reason
            doc["plans"] = []
            return doc
        doc["plans"] = [
            {"name": name, "steps": plan.explain()}
            for name, plan in self.named_plans()
        ]
        return doc


def deferred_conditions(rule: Rule) -> List[Condition]:
    """Conditions mentioning variables bound only by externals — they
    run after external expansion, never inside a plan.  Mirrors the
    engine's legacy ``_deferred_conditions``."""
    regular_vars: Set[Variable] = set()
    for lit in rule.body:
        if not lit.atom.is_external:
            regular_vars.update(lit.variables())
    regular_vars.update(a.target for a in rule.assignments)
    regular_vars.update(agg.target for agg in rule.aggregates)
    deferred = []
    for condition in rule.conditions:
        if any(v not in regular_vars for v in condition.variables()):
            deferred.append(condition)
    return deferred


def _order_score(literal: Literal, known: Set[Variable]):
    """Greedy static join-order key (higher is better): bound
    positions first, then shared-variable connectivity, then smaller
    arity (fewer fresh bindings per matched fact)."""
    atom = literal.atom
    bound = 0
    shared = set()
    for term in atom.terms:
        if isinstance(term, Variable):
            if not term.is_anonymous and term in known:
                bound += 1
                shared.add(term)
        else:
            bound += 1
    return (bound, len(shared), -atom.arity)


def _build_plan(
    rule: Rule,
    positives: List[Literal],
    negatives: List[Literal],
    assignments: List[Assignment],
    conditions: List[Condition],
    positive_vars: Set[Variable],
    delta_index: Optional[int],
) -> JoinPlan:
    steps: List[_Step] = []
    known: Set[Variable] = set()
    known_positive: Set[Variable] = set()
    pending_assignments = list(assignments)
    pending_conditions = list(conditions)
    pending_negatives = list(negatives)

    def flush():
        """Schedule whatever just became evaluable.

        Ordering here is a fidelity constraint, not a style choice.
        The legacy finish step evaluates assignments in rule order,
        then conditions in rule order, stopping at the first failure —
        so a later expression's error is *suppressed* by an earlier
        failure.  To keep the planned path's error behaviour
        bit-identical we only ever pop assignments and conditions from
        the front of their queues (rule order), and a condition may
        not run before the assignment queue has drained.  Negation
        checks are pure store probes over positively-bound variables:
        they cannot raise and their outcome is fixed by their key
        values, so they schedule freely.
        """
        changed = True
        while changed:
            changed = False
            for literal in list(pending_negatives):
                needed = {
                    v for v in literal.variables()
                    if not v.is_anonymous and v in positive_vars
                }
                if needed <= known_positive:
                    steps.append(
                        NegationStep(literal.atom, known_positive)
                    )
                    pending_negatives.remove(literal)
                    changed = True
            while pending_assignments and all(
                v in known
                for v in pending_assignments[0].input_variables()
            ):
                assignment = pending_assignments.pop(0)
                steps.append(AssignStep(assignment))
                known.add(assignment.target)
                changed = True
            while (
                not pending_assignments
                and pending_conditions
                and all(
                    v in known
                    for v in pending_conditions[0].variables()
                )
            ):
                steps.append(FilterStep(pending_conditions.pop(0)))
                changed = True

    remaining = list(enumerate(positives))
    flush()  # constant-only conditions / input-free assignments
    first = True
    while remaining:
        if first and delta_index is not None:
            choice = next(
                entry for entry in remaining if entry[0] == delta_index
            )
        else:
            choice = max(
                remaining,
                key=lambda entry: (_order_score(entry[1], known),
                                   -entry[0]),
            )
        remaining.remove(choice)
        index, literal = choice
        steps.append(ScanStep(
            literal.atom, known,
            delta_only=(delta_index is not None and index == delta_index),
        ))
        fresh = {
            v for v in literal.variables() if not v.is_anonymous
        }
        known.update(fresh)
        known_positive.update(fresh)
        flush()
        first = False

    flush()
    assert not pending_negatives, "negation left unscheduled"
    assert not pending_assignments, "assignment left unscheduled"
    assert not pending_conditions, "condition left unscheduled"
    return JoinPlan(rule, steps, delta_index)


def compile_rule_plans(rule: Rule) -> RulePlans:
    """Compile one rule into its first-round and per-delta plans."""
    positives = [
        lit for lit in rule.body
        if not lit.negated and not lit.atom.is_external
    ]
    negatives = [lit for lit in rule.body if lit.negated]
    aggregate_targets = {agg.target for agg in rule.aggregates}
    deferred = {id(c) for c in deferred_conditions(rule)}
    plan_conditions = [
        condition for condition in rule.conditions
        if id(condition) not in deferred
        and not (set(condition.variables()) & aggregate_targets)
    ]
    positive_vars: Set[Variable] = set()
    for literal in positives:
        positive_vars.update(
            v for v in literal.variables() if not v.is_anonymous
        )

    # Assignments that read external-only variables make the legacy
    # path raise at finish time for every completed binding; keep that
    # behaviour by routing the whole rule through the legacy path.
    available = set(positive_vars)
    for assignment in rule.assignments:
        if any(v not in available for v in assignment.input_variables()):
            return RulePlans(
                rule, None, [], bool(positives), streamable=False,
                unplannable=True,
                reason=f"assignment to {assignment.target.name} reads "
                       "variables not bound by regular atoms",
            )
        available.add(assignment.target)

    def build(delta_index):
        return _build_plan(
            rule, positives, negatives, list(rule.assignments),
            plan_conditions, positive_vars, delta_index,
        )

    first_round = build(None)
    delta_plans = [
        (index, literal.atom.predicate, build(index))
        for index, literal in enumerate(positives)
    ]

    has_externals = any(lit.atom.is_external for lit in rule.body)
    # Streaming fires bindings while enumeration is still probing the
    # store, so any head predicate the body reads — positively OR under
    # negation — would let this round's own firings leak into this
    # round's matches.  The legacy path enumerates fully before firing.
    body_predicates = {
        lit.atom.predicate for lit in rule.body
        if not lit.atom.is_external
    }
    recursive = bool(rule.head_predicates() & body_predicates)
    has_eval = first_round.has_eval_steps or any(
        plan.has_eval_steps for _, _, plan in delta_plans
    )
    streamable = not has_externals and not recursive and not has_eval
    return RulePlans(
        rule, first_round, delta_plans,
        has_positives=bool(positives), streamable=streamable,
    )
