"""The chase: stratified semi-naive evaluation with existentials,
stratified negation, monotonic aggregation and external predicates.

Semantics implemented here:

* **Restricted chase** for existential rules: a head conjunction with
  fresh labelled nulls is only asserted when it has no joint
  homomorphic image in the current store — the standard termination
  device for warded programs.
* **Stratified negation**: negative literals are checked against the
  saturated lower strata (enforced by stratification).
* **Monotonic aggregation** with contributor semantics: aggregate
  predicates are *functional* per group — when a group's value improves
  the previously emitted fact is retracted and replaced, so downstream
  joins always see the most accurate value.  Recursion through
  aggregates is allowed (the ownership-closure rules of Section 4.4
  depend on it).
* **External predicates** (``#``-prefixed) resolved through the
  registry; externals may inject facts (``#anonymize``), which re-enter
  the semi-naive frontier.
* **Routing strategies** order candidate bindings before firing
  (Section 4.4 runtime heuristics).
* **EGDs** are enforced at the end of every round of the stratum
  containing them; constant clashes are collected as violations.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, \
    Tuple

from .. import telemetry
from ..errors import EvaluationError
from ..telemetry.inspect import ChaseProgress, PlanAnalysis
from ..telemetry.metrics import MetricsRegistry
from .atoms import Atom, Fact, Literal
from .aggregates import AggregateState
from .columnar import MaskRecord, _RowView, execute_batch
from .database import FactStore, columnar_default_enabled
from .egd import EGDViolation, enforce_egds
from .expressions import TupleExpr, VarRef, evaluate_to_term
from .explain import ProvenanceLog
from .externals import ExternalContext, ExternalRegistry
from .negation import stratify
from .plans import PlanFallback, RulePlans, compile_rule_plans
from .routing import RoutingTable, fifo_strategy
from .rules import EGD, Rule
from .terms import Constant, LabelledNull, NullFactory, Term, Variable, unwrap
from .unification import (
    Substitution,
    bound_positions,
    conjunction_has_image,
    match_atom,
)


class ChaseResult:
    """Outcome of a reasoning task: the derived extensional component."""

    def __init__(
        self,
        store: FactStore,
        provenance: ProvenanceLog,
        null_factory: NullFactory,
        egd_violations: List[EGDViolation],
        rounds: int,
        telemetry_snapshot: Optional[Dict] = None,
        plan_report=None,
        explain_report: Optional[Dict] = None,
    ):
        self.store = store
        self.provenance = provenance
        self.null_factory = null_factory
        self.egd_violations = egd_violations
        self.rounds = rounds
        self._telemetry_snapshot = telemetry_snapshot
        #: rule label -> {plan name -> step descriptions}, or a
        #: zero-argument callable producing it (resolved lazily so a
        #: telemetry-free run pays nothing unless someone looks).
        self._plan_report = plan_report
        #: Engine explain document (see ``ChaseEngine.explain``);
        #: populated when the run executed with ``analyze=True``.
        self.explain_report = explain_report

    @property
    def plan_report(self) -> Optional[Dict[str, Dict[str, List[str]]]]:
        """rule label -> {plan name -> step descriptions}; available
        whenever the run used compiled plans (telemetry or not)."""
        if callable(self._plan_report):
            self._plan_report = self._plan_report()
        return self._plan_report

    @property
    def stats(self) -> Dict[str, object]:
        """Run statistics; includes a ``telemetry`` section (per-rule
        firing counts, nulls introduced, timing histograms) when the
        run executed with :mod:`repro.telemetry` enabled, and an
        ``explain`` section when it ran with ``analyze=True``."""
        data: Dict[str, object] = {
            "rounds": self.rounds,
            "facts": len(self.store),
            "nulls_introduced": self.null_factory.issued,
            "egd_violations": len(self.egd_violations),
            "derivations": len(self.provenance),
        }
        if self._telemetry_snapshot is not None:
            data["telemetry"] = self._telemetry_snapshot
        if self.plan_report is not None:
            data["plans"] = self.plan_report
        if self.explain_report is not None:
            data["explain"] = self.explain_report
        return data

    def facts(self, predicate: Optional[str] = None):
        return self.store.facts(predicate)

    def output_facts(self, outputs: Sequence[str]):
        """Facts restricted to the program's ``@output`` predicates."""
        for predicate in outputs:
            yield from self.store.facts(predicate)

    def query(self, pattern: str) -> List[Dict[str, object]]:
        """Match an atom pattern against the result, e.g.
        ``result.query("path(X, b)")`` returns one dict per match,
        mapping variable names to plain Python values.

        The pattern uses the same term syntax as rule bodies: uppercase
        identifiers are variables, everything else constants.
        """
        from .parser.parser import Parser

        parser = Parser(pattern.strip().rstrip(".") + ".")
        tokens_atom = parser._parse_atom()
        bound = {
            position: term
            for position, term in enumerate(tokens_atom.terms)
            if not isinstance(term, Variable)
        }
        answers: List[Dict[str, object]] = []
        from .unification import match_atom

        for fact in self.store.lookup(tokens_atom.predicate, bound):
            bindings = match_atom(tokens_atom, fact, {})
            if bindings is None:
                continue
            answers.append(
                {
                    variable.name: unwrap(value)
                    for variable, value in bindings.items()
                }
            )
        return answers

    def tuples(self, predicate: str) -> List[Tuple]:
        """All facts of a predicate as tuples of plain Python values
        (labelled nulls pass through as :class:`LabelledNull`)."""
        return [
            tuple(unwrap(term) for term in fact.terms)
            for fact in self.store.facts(predicate)
        ]

    def explain(self, fact: Fact, max_depth: int = 12,
                max_nodes: int = 10_000):
        return self.provenance.explain(
            fact, max_depth=max_depth, max_nodes=max_nodes
        )

    @property
    def nulls_introduced(self) -> int:
        return self.null_factory.issued


class _Binding:
    """A successful body match: substitution plus matched premises."""

    __slots__ = ("substitution", "premises")

    def __init__(self, substitution: Substitution, premises: List[Fact]):
        self.substitution = substitution
        self.premises = premises


def parallelism_default() -> int:
    """Worker count from ``CHASE_PARALLELISM`` (unset/0/1 = serial)."""
    raw = os.environ.get("CHASE_PARALLELISM", "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return 0


def binding_dedup_key(substitution: Substitution) -> Tuple:
    """The engine's binding dedup key: sorted (name, value) pairs of
    the non-anonymous bound variables.  Shared by the serial planned
    path and the sharded parallel merge so their dedup decisions are
    identical."""
    return tuple(sorted(
        (
            (variable.name, value)
            for variable, value in substitution.items()
            if not variable.is_anonymous
        ),
        key=lambda pair: pair[0],
    ))


def _tuple_column(columns: List[List[Term]], n: int) -> List[Tuple]:
    """Row-wise tuples over parallel term columns, built column-at-a-time."""
    if not columns:
        return [()] * n
    if len(columns) == 1:
        return [(value,) for value in columns[0]]
    return list(zip(*columns))


def _contribution_column(argument, cols, n: int) -> List[Any]:
    """Evaluate an aggregate's contribution argument over a whole batch.

    Bare variable references and tuples of them — the shapes the
    paper's programs use (``mcount``'s implicit 1, ``munion((A, V))``)
    — evaluate without touching the per-row expression interpreter;
    anything else falls back to row-at-a-time evaluation."""
    if argument is None:
        return [1] * n
    if type(argument) is VarRef:
        column = cols.get(argument.variable)
        if column is not None:
            return [unwrap(term) for term in column]
    elif type(argument) is TupleExpr and all(
        type(item) is VarRef for item in argument.items
    ):
        item_cols = [cols.get(item.variable) for item in argument.items]
        if all(column is not None for column in item_cols):
            return _tuple_column(
                [[unwrap(term) for term in column] for column in item_cols],
                n,
            )
    view = _RowView(cols)
    out = []
    for i in range(n):
        view.i = i
        out.append(argument.evaluate(view))
    return out


class ChaseEngine:
    """Evaluates a set of rules (and EGDs) over an input fact store."""

    def __init__(
        self,
        rules: Sequence[Rule],
        egds: Sequence[EGD] = (),
        externals: Optional[ExternalRegistry] = None,
        routing: Optional[RoutingTable] = None,
        provenance: bool = True,
        max_rounds: int = 10_000,
        max_facts: int = 5_000_000,
        strict_egds: bool = False,
        null_factory: Optional[NullFactory] = None,
        termination: str = "restricted",
        listener=None,
        preflight: bool = False,
        use_plans: Optional[bool] = None,
        analyze: bool = False,
        heartbeat_interval: Optional[float] = None,
        stall_threshold: Optional[float] = None,
        use_columnar: Optional[bool] = None,
        columnar_threshold: Optional[int] = None,
        parallelism: Optional[int] = None,
    ):
        if termination not in ("restricted", "isomorphic"):
            raise EvaluationError(
                f"unknown termination strategy {termination!r}; use "
                "'restricted' or 'isomorphic'"
            )
        if preflight:
            # Engine-level escape hatch mirror of Program.run(preflight=):
            # callers constructing an engine from bare rules can still
            # ask for the static analyzer gate.
            from .program import Program

            Program(rules=rules, egds=egds).preflight()
        self.termination = termination
        #: Optional audit hook: called as listener(rule_label, facts,
        #: premises) for every successful firing that added facts.
        self.listener = listener
        self.rules = list(rules)
        self.egds = list(egds)
        self.externals = externals or ExternalRegistry()
        self.routing = routing or RoutingTable()
        self.provenance_enabled = provenance
        self.max_rounds = max_rounds
        self.max_facts = max_facts
        self.strict_egds = strict_egds
        self._null_factory = null_factory
        # Thread-affine engine state lives here (see the properties
        # below); must exist before the first property setter fires.
        self._tls = threading.local()
        # Negative labels for restricted-chase trial nulls; these are
        # never stored and never counted as injected.
        self._placeholder_label = 0
        # Stable metric label per rule (telemetry): @label when given.
        self._rule_names = {
            id(rule): rule.label or f"rule_{index}"
            for index, rule in enumerate(self.rules)
        }
        # Compiled join plans (the default evaluation path).  The
        # legacy recursive enumerator stays available — and is the
        # oracle the planned path is differentially tested against —
        # via use_plans=False or CHASE_LEGACY_ENUMERATION=1.
        if use_plans is None:
            use_plans = os.environ.get(
                "CHASE_LEGACY_ENUMERATION", ""
            ).lower() not in ("1", "true", "yes")
        # ANALYZE instruments the compiled plans, so it implies them.
        if analyze:
            use_plans = True
        self.use_plans = use_plans
        self.analyze = analyze
        # Columnar backend switch: storage promotion on stores this
        # engine constructs, plus batched plan execution.  Batching
        # needs the compiled plans; the storage side works under the
        # legacy enumerator too (probes dispatch per relation).
        if use_columnar is None:
            use_columnar = columnar_default_enabled()
        self.use_columnar = use_columnar
        self.columnar_threshold = columnar_threshold
        self._batch = self.use_plans and self.use_columnar
        # Live-progress knobs: how often heartbeat *events* may fire
        # (gauges refresh every round regardless; 0 = every round) and
        # how long the chase may go without any rule firing before a
        # stall is reported.  Only consulted when telemetry is on.
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else float(os.environ.get("CHASE_HEARTBEAT_INTERVAL", "0"))
        )
        self.stall_threshold = (
            stall_threshold
            if stall_threshold is not None
            else float(os.environ.get("CHASE_STALL_THRESHOLD", "30"))
        )
        # id(rule) -> RulePlans; survives across run() calls so a
        # reused engine pays compilation once.
        self._plan_cache: Dict[int, RulePlans] = {}
        # id(rule) -> sorted non-anonymous variable order for batch
        # dedup keys, and -> bulk-fire mode ('facts'/'aggregates'/
        # None); both are static per rule.
        self._dedup_orders: Dict[int, List[Variable]] = {}
        self._batch_fire_modes: Dict[int, Optional[str]] = {}
        # id(JoinPlan) -> PlanAnalysis, reset per run (ANALYZE only).
        self._plan_analysis: Dict[int, PlanAnalysis] = {}
        # Per-run metrics registry; None while telemetry is disabled so
        # the hot paths pay one attribute check and nothing else.
        self._metrics: Optional[MetricsRegistry] = None
        # Structured event log (None unless telemetry attached one) and
        # the stratum/round the engine is currently in, for decision
        # events ("rule R derived N facts in round K of stratum S").
        self._events = None
        self._stratum_index = 0
        self._round = 0
        # Parallel chase: worker count (0/1 = serial), the shard
        # executor installed by repro.vadalog.parallel for the
        # duration of a parallel run, and an optional scheduler
        # factory tests use to inject a deterministic FakeScheduler.
        if parallelism is None:
            parallelism = parallelism_default()
        self.parallelism = max(0, int(parallelism))
        self._shard_exec = None
        self._scheduler_factory = None

    # -- thread-affine state ----------------------------------------------
    #
    # The parallel scheduler runs strata on worker threads, and the
    # "where am I" markers (stratum/round, for decision events) plus
    # the placeholder-null counter are per-thread so concurrent strata
    # never clobber each other.  Serial runs use the main thread's
    # slots and behave exactly as before.

    @property
    def _stratum_index(self) -> int:
        return getattr(self._tls, "stratum_index", 0)

    @_stratum_index.setter
    def _stratum_index(self, value: int) -> None:
        self._tls.stratum_index = value

    @property
    def _round(self) -> int:
        return getattr(self._tls, "round", 0)

    @_round.setter
    def _round(self, value: int) -> None:
        self._tls.round = value

    @property
    def _placeholder_label(self) -> int:
        return getattr(self._tls, "placeholder_label", 0)

    @_placeholder_label.setter
    def _placeholder_label(self, value: int) -> None:
        self._tls.placeholder_label = value

    # -- public API ------------------------------------------------------

    def run(self, facts: Iterable[Fact]) -> ChaseResult:
        """Run the reasoning task over the given extensional facts."""
        store = (
            facts
            if isinstance(facts, FactStore)
            else FactStore(
                facts,
                columnar=self.use_columnar,
                columnar_threshold=self.columnar_threshold,
            )
        )
        if self.parallelism > 1 and self.rules and not self.analyze:
            # Parallel mode: stratum scheduling + sharded enumeration,
            # bit-identical to the serial path below (ANALYZE keeps
            # its single-threaded instrumentation).
            from .parallel import run_parallel

            return run_parallel(self, store)
        provenance = ProvenanceLog(enabled=self.provenance_enabled)
        null_factory = self._null_factory or NullFactory()
        context = ExternalContext(store, null_factory)
        violations: List[EGDViolation] = []
        strata = stratify(self.rules) if self.rules else []
        total_rounds = 0

        metrics = MetricsRegistry() if telemetry.state.enabled else None
        self._metrics = metrics
        self._events = (
            telemetry.state.events if telemetry.state.enabled else None
        )
        if self.analyze:
            self._plan_analysis = {}
        # Live progress (heartbeat + stall detection) rides the same
        # switch as metrics: None while telemetry is off, so disabled
        # runs never touch a clock.  ANALYZE alone does not enable it.
        progress = (
            ChaseProgress(
                stall_threshold=self.stall_threshold,
                heartbeat_interval=self.heartbeat_interval,
            )
            if metrics is not None
            else None
        )
        if self.use_plans:
            self._compile_plans(metrics)
        run_start = time.perf_counter_ns() if metrics is not None else 0
        nulls_before = null_factory.issued
        if metrics is not None:
            for stratum_index, stratum in enumerate(strata):
                for rule in stratum:
                    metrics.gauge(
                        "chase.rule_stratum",
                        rule=self._rule_names[id(rule)],
                    ).set(stratum_index)

        with telemetry.span(
            "chase.run", rules=len(self.rules), strata=len(strata),
            input_facts=len(store),
        ) as run_span:
            for stratum_index, stratum in enumerate(strata):
                # Per-stratum aggregate state and last-emitted aggregate
                # facts (for functional replacement).
                aggregate_states: Dict[Tuple[int, int], AggregateState] = {}
                emitted_aggregates: Dict[Tuple[int, int, Tuple], Fact] = {}
                store.reset_delta_to_all()
                rounds = 0
                with telemetry.span(
                    "chase.stratum", stratum=stratum_index,
                    rules=len(stratum),
                ) as stratum_span:
                    while True:
                        rounds += 1
                        total_rounds += 1
                        self._stratum_index = stratum_index
                        self._round = rounds
                        if rounds > self.max_rounds:
                            raise EvaluationError(
                                f"chase exceeded {self.max_rounds} rounds "
                                "in one stratum; the program may not "
                                "terminate"
                            )
                        round_start = (
                            time.perf_counter_ns()
                            if metrics is not None else 0
                        )
                        facts_before = len(store)
                        changed = False
                        with telemetry.span(
                            "chase.round", stratum=stratum_index,
                            round=rounds,
                        ) as round_span:
                            for rule_index, rule in enumerate(stratum):
                                fired = self._apply_rule(
                                    rule,
                                    rule_index,
                                    store,
                                    provenance,
                                    null_factory,
                                    context,
                                    aggregate_states,
                                    emitted_aggregates,
                                    first_round=(rounds == 1),
                                )
                                changed = fired or changed
                                if progress is not None:
                                    self._track_progress(
                                        progress, fired, rule
                                    )
                                if len(store) > self.max_facts:
                                    raise EvaluationError(
                                        f"chase exceeded {self.max_facts} "
                                        "facts; aborting as a "
                                        "non-termination guard"
                                    )
                            round_span.set(
                                new_facts=len(store) - facts_before
                            )
                        round_ns = 0
                        if metrics is not None:
                            round_ns = (
                                time.perf_counter_ns() - round_start
                            )
                            metrics.counter("chase.iterations").inc()
                            metrics.histogram("chase.round_ns").observe(
                                round_ns
                            )
                        store.advance_delta()
                        if progress is not None:
                            self._publish_heartbeat(
                                progress,
                                stratum_index,
                                rounds,
                                new_facts=len(store) - facts_before,
                                frontier=store.frontier_size(),
                                seconds=round_ns / 1e9,
                                total_facts=len(store),
                            )
                        if self.egds:
                            new_violations = enforce_egds(
                                self.egds, store, strict=self.strict_egds
                            )
                            violations.extend(new_violations)
                        if not store.has_delta():
                            break
                    stratum_span.set(rounds=rounds)

            if not strata and self.egds:
                # EGD-only program: enforce once over extensional facts.
                violations.extend(
                    enforce_egds(self.egds, store, strict=self.strict_egds)
                )

            store.advance_delta()
            run_span.set(
                rounds=total_rounds,
                facts=len(store),
                nulls_introduced=null_factory.issued - nulls_before,
                egd_violations=len(violations),
            )

        snapshot = None
        if metrics is not None:
            metrics.counter("chase.runs").inc()
            metrics.counter("chase.egd_violations").inc(len(violations))
            metrics.gauge("chase.facts").set(len(store))
            metrics.histogram("chase.run_ns").observe(
                time.perf_counter_ns() - run_start
            )
            self._record_memory_gauges(metrics, store, provenance)
            snapshot = metrics.snapshot()
            telemetry.state.registry.merge(metrics)
            self._metrics = None
        self._events = None
        explain_report = (
            self.explain() if self.analyze and self.use_plans else None
        )
        return ChaseResult(
            store, provenance, null_factory, violations, total_rounds,
            telemetry_snapshot=snapshot,
            # Lazy: describing every plan is pure rendering work, so it
            # runs only if someone actually reads result.plan_report —
            # and it is available on telemetry-free runs too.
            plan_report=self.plan_report if self.use_plans else None,
            explain_report=explain_report,
        )

    # -- compiled plans ----------------------------------------------------

    def _compile_plans(self, metrics: Optional[MetricsRegistry]) -> None:
        """Compile every rule's join plans once per engine (cached
        across runs); see :mod:`repro.vadalog.plans`."""
        for rule in self.rules:
            if id(rule) in self._plan_cache:
                if metrics is not None:
                    metrics.counter("chase.plan_cache_hits").inc()
                continue
            start = time.perf_counter_ns() if metrics is not None else 0
            plans = compile_rule_plans(rule)
            self._plan_cache[id(rule)] = plans
            if metrics is not None:
                metrics.histogram("chase.plan_compile_ns").observe(
                    time.perf_counter_ns() - start
                )
                metrics.counter("chase.plans_compiled").inc()
                if plans.unplannable:
                    metrics.counter("chase.plans_unplannable").inc()

    def plan_report(self) -> Dict[str, Dict[str, List[str]]]:
        """Step-by-step description of every compiled plan, keyed by
        rule label — the ``--rule-profile`` plan dump."""
        report: Dict[str, Dict[str, List[str]]] = {}
        for rule in self.rules:
            plans = self._plan_cache.get(id(rule))
            if plans is not None:
                report[self._rule_names[id(rule)]] = plans.describe()
        return report

    def explain(self) -> Dict[str, Any]:
        """The engine's explain document: every compiled plan as
        structured JSON, annotated with per-step actuals when the
        engine ran with ``analyze=True``.  Render it with
        :func:`repro.telemetry.inspect.render_explain`."""
        self._compile_plans(self._metrics)
        try:
            strata = stratify(self.rules) if self.rules else []
        except Exception:
            # Unstratifiable programs still get a static explain —
            # the chase would reject them, the plan dump should not.
            strata = []
        stratum_of = {
            id(rule): index
            for index, stratum in enumerate(strata)
            for rule in stratum
        }
        rules_doc: List[Dict[str, Any]] = []
        for rule in self.rules:
            plans = self._plan_cache.get(id(rule))
            if plans is None:  # pragma: no cover — cache is eager
                continue
            entry = plans.explain()
            entry["rule"] = self._rule_names[id(rule)]
            entry["stratum"] = stratum_of.get(id(rule))
            if self.analyze and not plans.unplannable:
                for (name, plan), plan_doc in zip(
                    plans.named_plans(), entry["plans"]
                ):
                    analysis = self._plan_analysis.get(id(plan))
                    if analysis is None:
                        continue
                    plan_doc["executions"] = analysis.executions
                    plan_doc["matches"] = analysis.matches
                    for step_doc, stats in zip(
                        plan_doc["steps"], analysis.steps
                    ):
                        step_doc["actual"] = stats.to_json()
            rules_doc.append(entry)
        return {
            "version": 1,
            "analyze": bool(self.analyze),
            "rules": rules_doc,
        }

    def _analysis_for(self, plan) -> PlanAnalysis:
        analysis = self._plan_analysis.get(id(plan))
        if analysis is None:
            analysis = PlanAnalysis(len(plan.steps))
            self._plan_analysis[id(plan)] = analysis
        return analysis

    # -- live progress -----------------------------------------------------

    def _track_progress(self, progress, fired: bool, rule: Rule) -> None:
        """Per-rule stall bookkeeping (telemetry-on runs only)."""
        if fired:
            if progress.progressed():
                # Recovery ends the stall episode on the live gauge.
                telemetry.state.registry.gauge("chase.stalled").set(0)
            return
        stall = progress.check_stall()
        if stall is None:
            return
        telemetry.state.registry.gauge("chase.stalled").set(1)
        if self._metrics is not None:
            self._metrics.counter("chase.stalls").inc()
        if self._events is not None:
            self._events.emit(
                "stall",
                stratum=self._stratum_index,
                round=self._round,
                rule=self._rule_names.get(id(rule), rule.label or "?"),
                idle_seconds=round(stall["idle_seconds"], 6),
                threshold=stall["threshold"],
            )

    def _publish_heartbeat(
        self,
        progress,
        stratum: int,
        round_: int,
        new_facts: int,
        frontier: int,
        seconds: float,
        total_facts: int,
    ) -> None:
        """End-of-round heartbeat: live gauges on the *global* registry
        (so a concurrent ``/metrics`` scrape sees mid-run state) plus a
        rate-limited JSONL event."""
        beat = progress.heartbeat(
            stratum, round_, new_facts, frontier, seconds, total_facts
        )
        live = telemetry.state.registry
        live.gauge("chase.heartbeat.stratum").set(stratum)
        live.gauge("chase.heartbeat.round").set(round_)
        live.gauge("chase.heartbeat.frontier").set(frontier)
        live.gauge("chase.heartbeat.new_facts").set(new_facts)
        live.gauge("chase.heartbeat.fire_rate").set(
            round(beat["fire_rate"], 3)
        )
        live.gauge("chase.heartbeat.facts").set(total_facts)
        if self._events is not None and progress.event_due():
            beat["fire_rate"] = round(beat["fire_rate"], 3)
            self._events.emit("heartbeat", **beat)

    def _record_memory_gauges(
        self,
        metrics: MetricsRegistry,
        store: FactStore,
        provenance: ProvenanceLog,
    ) -> None:
        """End-of-run memory accounting: per-predicate cardinality and
        estimated bytes, index-entry counts, provenance-log size."""
        report = store.memory_stats()
        for name, info in report["predicates"].items():
            metrics.gauge(
                "store.predicate_facts", predicate=name
            ).set(info["facts"])
            metrics.gauge(
                "store.predicate_bytes", predicate=name
            ).set(info["estimated_bytes"])
        metrics.gauge("store.estimated_bytes").set(
            report["estimated_bytes"]
        )
        metrics.gauge("store.index_entries").set(
            report["index_entries"]
        )
        metrics.gauge("provenance.entries").set(len(provenance))
        metrics.gauge("provenance.estimated_bytes").set(
            provenance.estimated_bytes()
        )

    def _enumerate_planned(
        self,
        rule: Rule,
        plans: RulePlans,
        store: FactStore,
        first_round: bool,
    ) -> List[_Binding]:
        """Run the rule's compiled plans and materialize the deduped
        binding list (same contract as the legacy enumerator)."""
        if self._shard_exec is not None:
            return self._shard_exec.enumerate(
                self, rule, plans, store, first_round
            )
        if self._batch:
            return self._enumerate_batched(rule, plans, store, first_round)
        results: List[_Binding] = []
        seen: Set[Tuple] = set()
        for substitution, premises in self._planned_bindings(
            plans, store, first_round, seen
        ):
            results.append(_Binding(substitution, premises))
        return results

    def _applicable_plans(
        self, plans: RulePlans, store: FactStore, first_round: bool
    ):
        """The plans a rule application executes: the first-round plan
        when every fact is frontier (or the rule has no positive
        literal), otherwise one delta plan per positive literal with a
        non-empty frontier."""
        if not plans.has_positives or first_round:
            yield plans.first_round
            return
        for _index, predicate, plan in plans.delta_plans:
            if store.delta(predicate):
                yield plan

    def _planned_bindings(
        self,
        plans: RulePlans,
        store: FactStore,
        first_round: bool,
        seen: Set[Tuple],
    ):
        """Yield deduplicated ``(substitution, premises)`` pairs from
        the applicable plans."""
        for plan in self._applicable_plans(plans, store, first_round):
            yield from self._planned_unique(plan, store, seen)

    def _planned_unique(self, plan, store, seen: Set[Tuple]):
        """Filter a plan's matches through the same dedup key the
        legacy finish step uses (sorted non-anonymous variable/value
        pairs), shared across a rule's delta plans."""
        if self.analyze:
            matches = plan.execute_analyzed(
                store, self._analysis_for(plan)
            )
        else:
            matches = plan.execute(store)
        for substitution, premises in matches:
            key = binding_dedup_key(substitution)
            if key in seen:
                continue
            seen.add(key)
            yield substitution, premises

    # -- batched execution -------------------------------------------------

    def _dedup_order(self, rule: Rule) -> List[Variable]:
        """The rule's bound variables in sorted-name order — the fixed
        column order batch dedup keys use.  Equivalent to the per-row
        ``sorted()`` the row path pays: every plan of a rule binds the
        same variable set (non-anonymous positive-body variables plus
        assignment targets)."""
        order = self._dedup_orders.get(id(rule))
        if order is None:
            bound: Set[Variable] = set()
            for lit in rule.body:
                if not lit.negated and not lit.atom.is_external:
                    bound.update(
                        v for v in lit.variables() if not v.is_anonymous
                    )
            bound.update(a.target for a in rule.assignments)
            order = sorted(bound, key=lambda v: v.name)
            self._dedup_orders[id(rule)] = order
        return order

    def _enumerate_batched(
        self,
        rule: Rule,
        plans: RulePlans,
        store: FactStore,
        first_round: bool,
    ) -> List[_Binding]:
        """Batched counterpart of :meth:`_enumerate_planned`: run each
        applicable plan as one vectorized pipeline over the whole
        frontier, then materialize the deduped binding list.  Raises
        :class:`PlanFallback` (caught by ``_enumerate_bindings``)
        exactly when the row path would."""
        metrics = self._metrics
        track = self.provenance_enabled or self.listener is not None
        masks: Optional[List[MaskRecord]] = (
            [] if (metrics is not None or self._events is not None)
            else None
        )
        results: List[_Binding] = []
        seen: Set[Tuple] = set()
        order = self._dedup_order(rule)
        for plan in self._applicable_plans(plans, store, first_round):
            analysis = self._analysis_for(plan) if self.analyze else None
            batch = execute_batch(
                plan, rule, store, track_premises=track,
                analysis=analysis, masks=masks,
            )
            if metrics is not None:
                metrics.counter("chase.batch_executions").inc()
                metrics.counter("chase.batch_rows").inc(batch.n)
            if not batch.n:
                continue
            cols = batch.cols
            key_cols = [cols[variable] for variable in order]
            for i in range(batch.n):
                key = tuple(col[i] for col in key_cols)
                if key in seen:
                    continue
                seen.add(key)
                results.append(_Binding(
                    {var: col[i] for var, col in cols.items()},
                    batch.premises_row(i),
                ))
        if masks:
            self._report_masks(rule, masks)
        return results

    def _report_masks(
        self, rule: Rule, masks: List[MaskRecord]
    ) -> None:
        """Surface batched error masking: a counter per rule and one
        schema-versioned ``batch_mask`` event per masked step."""
        name = self._rule_names.get(id(rule), rule.label or "?")
        for record in masks:
            if self._metrics is not None:
                self._metrics.counter(
                    "chase.batch_masked_rows", rule=name
                ).inc(record.rows)
            if self._events is not None:
                self._events.emit(
                    "batch_mask",
                    rule=name,
                    op=record.op,
                    step=record.detail,
                    error=record.error,
                    rows=record.rows,
                    stratum=self._stratum_index,
                    round=self._round,
                )

    def _batch_fire_mode(self, rule: Rule) -> Optional[str]:
        """Whether a telemetry-free application may fire straight from
        batch columns: ``'facts'`` (bulk head firing), ``'aggregates'``
        (deferred per-group emission) or None (row-at-a-time firing).

        Everything the bulk paths skip must be unobservable: no audit
        listener, no externals (they expand at fire time under routing
        order).  The facts path additionally needs ground heads (no
        existentials — the restricted-chase image check is per-row);
        the aggregate path needs provenance off (legacy records every
        intermediate emission), no post-aggregate conditions (legacy
        checks them against intermediate values, an order-dependent
        effect) and no aggregate input reading another aggregate's
        target (legacy evaluates later aggregates with earlier targets
        already substituted)."""
        mode = self._batch_fire_modes.get(id(rule))
        if mode is not None or id(rule) in self._batch_fire_modes:
            return mode
        mode = self._compute_batch_fire_mode(rule)
        self._batch_fire_modes[id(rule)] = mode
        return mode

    def _compute_batch_fire_mode(self, rule: Rule) -> Optional[str]:
        if self.listener is not None:
            return None
        if any(lit.atom.is_external for lit in rule.body):
            return None
        if rule.has_aggregates:
            if self.provenance_enabled:
                return None
            targets = {agg.target for agg in rule.aggregates}
            for condition in rule.conditions:
                if targets & set(condition.variables()):
                    return None
            for agg in rule.aggregates:
                inputs = set(agg.variables()) - {agg.target}
                if inputs & targets:
                    return None
            return "aggregates"
        if rule.existential_variables():
            return None
        return "facts"

    def _apply_rule_batched(
        self,
        rule: Rule,
        rule_index: int,
        plans: RulePlans,
        store: FactStore,
        provenance: ProvenanceLog,
        aggregate_states,
        emitted_aggregates,
        first_round: bool,
        mode: str,
    ) -> bool:
        """Telemetry-free fast path: materialize every applicable
        plan's batch, then fire straight from the columns.  All batches
        complete before any firing, so recursive rules never observe
        their own additions mid-enumeration (full indices are only
        consulted by probes, which have all run); :class:`PlanFallback`
        can therefore only escape before the store is touched."""
        track = mode == "facts" and self.provenance_enabled
        batches = []
        for plan in self._applicable_plans(plans, store, first_round):
            analysis = self._analysis_for(plan) if self.analyze else None
            batch = execute_batch(
                plan, rule, store, track_premises=track,
                analysis=analysis, masks=None,
            )
            if batch.n:
                batches.append(batch)
        if not batches:
            return False
        if mode == "aggregates":
            return self._fire_aggregates_batched(
                rule, rule_index, batches, store,
                aggregate_states, emitted_aggregates,
            )
        return self._fire_facts_batched(rule, batches, store, provenance)

    def _fire_facts_batched(
        self,
        rule: Rule,
        batches,
        store: FactStore,
        provenance: ProvenanceLog,
    ) -> bool:
        """Bulk head firing for ground-head rules.  Duplicate bindings
        (within or across delta plans) need no dedup pass: the store
        add is idempotent and provenance records first-added atoms
        only, exactly as the deduped row path would."""
        head = rule.head
        label = rule.label
        track = self.provenance_enabled
        changed = False
        for batch in batches:
            view = _RowView(batch.cols)
            for i in range(batch.n):
                view.i = i
                for atom in head:
                    fact = atom.substitute(view)
                    if not fact.is_ground:
                        raise EvaluationError(
                            f"head atom {fact} not ground after "
                            f"substitution in rule {rule.label or rule}"
                        )
                    if store.add(fact):
                        changed = True
                        if track:
                            provenance.record(
                                fact, label, batch.premises_row(i)
                            )
        return changed

    def _fire_aggregates_batched(
        self,
        rule: Rule,
        rule_index: int,
        batches,
        store: FactStore,
        aggregate_states: Dict,
        emitted_aggregates: Dict,
    ) -> bool:
        """Deferred per-group aggregate emission: contribute every
        batch row, then emit each touched group's head atoms once with
        the final values.  Equivalent to legacy per-binding
        retract-and-replace under this path's gates: monotonic values
        make contributions order-independent and idempotent (duplicate
        bindings are no-ops, so no dedup pass is needed), intermediate
        emissions are invisible (firing performs no lookups, and by
        the end of the application only the final atom remains), and
        the final atom differs from the previously emitted one iff any
        contribution changed the group — so rounds, delta frontiers
        and the changed flag all match."""
        targets = {agg.target for agg in rule.aggregates}
        group_vars = sorted(
            (v for v in rule.head_variables() if v not in targets),
            key=lambda v: v.name,
        )
        specs = []
        for agg_index, agg in enumerate(rule.aggregates):
            state_key = (rule_index, agg_index)
            state = aggregate_states.get(state_key)
            if state is None:
                state = AggregateState(agg.function)
                aggregate_states[state_key] = state
            specs.append((agg, state))
        touched: Dict[Tuple, bool] = {}
        for batch in batches:
            cols = batch.cols
            try:
                group_cols = [cols[v] for v in group_vars]
            except KeyError as exc:
                raise EvaluationError(
                    f"group-by variable unbound in aggregate rule "
                    f"{rule.label or rule}: {exc}"
                ) from exc
            n = batch.n
            group_keys = _tuple_column(group_cols, n)
            for group_key in group_keys:
                touched[group_key] = True
            for agg, state in specs:
                contributors = _tuple_column(
                    [cols[v] for v in agg.contributors], n
                )
                contributions = _contribution_column(
                    agg.argument, cols, n
                )
                state.absorb_many(group_keys, contributors, contributions)
        substitution: Dict[Variable, Term] = {}
        changed = False
        for group_key in touched:
            for variable, value in zip(group_vars, group_key):
                substitution[variable] = value
            for agg, state in specs:
                substitution[agg.target] = Constant(
                    state.value(group_key)
                )
            for atom_index, atom in enumerate(rule.head):
                grounded = atom.substitute(substitution)
                if not grounded.is_ground:
                    raise EvaluationError(
                        f"aggregate head atom {grounded} not ground in "
                        f"rule {rule.label or rule}"
                    )
                emit_key = (rule_index, atom_index, group_key)
                previous = emitted_aggregates.get(emit_key)
                if previous == grounded:
                    continue
                if previous is not None:
                    store.retract(previous)
                if store.add(grounded):
                    changed = True
                emitted_aggregates[emit_key] = grounded
        return changed

    def _apply_rule_streaming(
        self,
        rule: Rule,
        rule_index: int,
        plans: RulePlans,
        store: FactStore,
        provenance: ProvenanceLog,
        null_factory: NullFactory,
        aggregate_states,
        emitted_aggregates,
        first_round: bool,
    ) -> bool:
        """Fire bindings as the plan streams them, never materializing
        the full binding list.  Only taken for rules where firing
        cannot feed back into the enumeration (``plans.streamable``)
        under fifo routing, so the result is bit-identical to
        enumerate-then-fire."""
        changed = False
        seen: Set[Tuple] = set()
        for substitution, premises in self._planned_bindings(
            plans, store, first_round, seen
        ):
            if rule.has_aggregates:
                fired = self._fire_with_aggregates(
                    rule, rule_index, substitution, premises, store,
                    provenance, aggregate_states, emitted_aggregates,
                )
            else:
                fired = self._fire(
                    rule, substitution, premises, store, provenance,
                    null_factory,
                )
            changed = fired or changed
        return changed

    # -- rule application --------------------------------------------------

    def _apply_rule(
        self,
        rule: Rule,
        rule_index: int,
        store: FactStore,
        provenance: ProvenanceLog,
        null_factory: NullFactory,
        context: ExternalContext,
        aggregate_states,
        emitted_aggregates,
        first_round: bool,
    ) -> bool:
        metrics = self._metrics
        if self.use_plans and metrics is None and self._shard_exec is None:
            # Telemetry-free fast paths.  Metrics runs keep the
            # two-phase enumerate/fire shape so match/fire attribution
            # stays meaningful.
            plans = self._plan_cache.get(id(rule))
            if (
                plans is not None
                and not plans.unplannable
                and self.routing.strategy_for(rule) is fifo_strategy
            ):
                if self._batch:
                    # Batched enumeration plus bulk firing; recursion
                    # is safe because every batch materializes before
                    # any fact is added.
                    mode = self._batch_fire_mode(rule)
                    if mode is not None:
                        try:
                            return self._apply_rule_batched(
                                rule, rule_index, plans, store,
                                provenance, aggregate_states,
                                emitted_aggregates, first_round, mode,
                            )
                        except PlanFallback:
                            # Re-enter the two-phase path below; its
                            # enumerator owns the legacy fallback net.
                            pass
                elif plans.streamable:
                    # Routing-free, non-recursive rules stream straight
                    # from the plan into firing.
                    return self._apply_rule_streaming(
                        rule, rule_index, plans, store, provenance,
                        null_factory, aggregate_states,
                        emitted_aggregates, first_round,
                    )
        if metrics is not None:
            name = self._rule_names[id(rule)]
            start = time.perf_counter_ns()
            bindings = self._enumerate_bindings(
                rule, store, context, first_round
            )
            match_ns = time.perf_counter_ns() - start
            metrics.histogram("chase.enumerate_bindings_ns").observe(
                match_ns
            )
            metrics.histogram("chase.match_ns", rule=name).observe(
                match_ns
            )
            if bindings:
                metrics.counter("chase.bindings", rule=name).inc(
                    len(bindings)
                )
        else:
            bindings = self._enumerate_bindings(
                rule, store, context, first_round
            )
        if not bindings:
            return False
        # Routing orders the regular-body bindings BEFORE externals run,
        # so side-effecting externals (#anonymize) observe the paper's
        # heuristics ("less significant first", Section 4.4).
        ordered = self.routing.order(
            rule, [b.substitution for b in bindings]
        )
        premises_of: Dict[int, List[Fact]] = {
            id(b.substitution): b.premises for b in bindings
        }
        external_literals = [
            lit for lit in rule.body if lit.atom.is_external
        ]
        changed = False
        fire_start = time.perf_counter_ns() if metrics is not None else 0
        for substitution in ordered:
            premises = premises_of.get(id(substitution), [])
            for full in self._expand_externals(
                rule, external_literals, substitution, context
            ):
                if rule.has_aggregates:
                    fired = self._fire_with_aggregates(
                        rule,
                        rule_index,
                        full,
                        premises,
                        store,
                        provenance,
                        aggregate_states,
                        emitted_aggregates,
                    )
                else:
                    fired = self._fire(
                        rule,
                        full,
                        premises,
                        store,
                        provenance,
                        null_factory,
                    )
                changed = fired or changed
        if metrics is not None:
            metrics.histogram(
                "chase.fire_ns", rule=self._rule_names[id(rule)]
            ).observe(time.perf_counter_ns() - fire_start)
        return changed

    def _expand_externals(
        self,
        rule: Rule,
        external_literals,
        substitution: Substitution,
        context: ExternalContext,
    ):
        """Evaluate the rule's external atoms (in order) against a
        regular-body binding, then the deferred conditions that needed
        their outputs."""
        if not external_literals:
            yield substitution
            return
        deferred = self._deferred_conditions(rule)

        def _chain(bindings, position):
            if position == len(external_literals):
                for condition in deferred:
                    if not condition.holds(bindings):
                        return
                yield bindings
                return
            atom = external_literals[position].atom
            for extended in self.externals.evaluate(
                atom.predicate, atom.terms, bindings, context
            ):
                yield from _chain(extended, position + 1)

        yield from _chain(substitution, 0)

    def _deferred_conditions(self, rule: Rule):
        """Conditions mentioning variables bound only by externals."""
        regular_vars: Set[Variable] = set()
        for lit in rule.body:
            if not lit.atom.is_external:
                regular_vars.update(lit.variables())
        regular_vars.update(a.target for a in rule.assignments)
        regular_vars.update(agg.target for agg in rule.aggregates)
        deferred = []
        for condition in rule.conditions:
            if any(v not in regular_vars for v in condition.variables()):
                deferred.append(condition)
        return deferred

    def _fire(
        self,
        rule: Rule,
        substitution: Substitution,
        premises: List[Fact],
        store: FactStore,
        provenance: ProvenanceLog,
        null_factory: NullFactory,
    ) -> bool:
        head_atoms = self._instantiate_head(
            rule, substitution, null_factory, store
        )
        if head_atoms is None:
            return False
        changed = False
        added = []
        for atom in head_atoms:
            if store.add(atom):
                changed = True
                added.append(atom)
                provenance.record(atom, rule.label, premises)
        if added:
            metrics = self._metrics
            if metrics is not None:
                name = self._rule_names.get(id(rule), rule.label or "?")
                metrics.counter("chase.rule_firings", rule=name).inc()
                metrics.counter(
                    "chase.new_facts", rule=name
                ).inc(len(added))
            if self._events is not None:
                self._events.emit(
                    "decision",
                    kind="derive",
                    rule=self._rule_names.get(id(rule), rule.label or "?"),
                    stratum=self._stratum_index,
                    round=self._round,
                    facts=len(added),
                    derived=[str(atom) for atom in added[:5]],
                )
            if self.listener is not None:
                self.listener(rule.label, added, list(premises))
        return changed

    def _instantiate_head(
        self,
        rule: Rule,
        substitution: Substitution,
        null_factory: NullFactory,
        store: FactStore,
    ) -> Optional[List[Fact]]:
        existentials = rule.existential_variables()
        if existentials:
            # Restricted chase: instantiate with *placeholder* nulls
            # (negative labels, never stored or counted), and only
            # materialize fresh nulls when no homomorphic image exists.
            trial = dict(substitution)
            placeholders = set()
            for var in existentials:
                self._placeholder_label -= 1
                placeholder = LabelledNull(self._placeholder_label)
                trial[var] = placeholder
                placeholders.add(placeholder)
            trial_atoms = [atom.substitute(trial) for atom in rule.head]
            if conjunction_has_image(
                trial_atoms,
                store,
                placeholders,
                null_to_null=(self.termination == "isomorphic"),
            ):
                return None
            fresh = {var: null_factory.fresh() for var in existentials}
            if self._metrics is not None:
                self._metrics.counter("chase.nulls_introduced").inc(
                    len(fresh)
                )
                self._metrics.counter(
                    "chase.nulls_introduced_by_rule",
                    rule=self._rule_names.get(id(rule), rule.label or "?"),
                ).inc(len(fresh))
            if self._events is not None:
                self._events.emit(
                    "decision",
                    kind="invent_null",
                    rule=self._rule_names.get(id(rule), rule.label or "?"),
                    stratum=self._stratum_index,
                    round=self._round,
                    nulls=len(fresh),
                )
            final = dict(substitution)
            final.update(fresh)
            return [atom.substitute(final) for atom in rule.head]
        atoms = [atom.substitute(substitution) for atom in rule.head]
        for atom in atoms:
            if not atom.is_ground:
                raise EvaluationError(
                    f"head atom {atom} not ground after substitution in "
                    f"rule {rule.label or rule}"
                )
        return atoms

    def _fire_with_aggregates(
        self,
        rule: Rule,
        rule_index: int,
        substitution: Substitution,
        premises: List[Fact],
        store: FactStore,
        provenance: ProvenanceLog,
        aggregate_states: Dict,
        emitted_aggregates: Dict,
    ) -> bool:
        """Contribute this binding to the rule's aggregates, and emit
        (or update) head facts with the current aggregate values."""
        # Group key: every head variable that is not an aggregate target.
        targets = {agg.target for agg in rule.aggregates}
        group_vars = sorted(
            (v for v in rule.head_variables() if v not in targets),
            key=lambda v: v.name,
        )
        try:
            group_key = tuple(substitution[v] for v in group_vars)
        except KeyError as exc:
            raise EvaluationError(
                f"group-by variable unbound in aggregate rule "
                f"{rule.label or rule}: {exc}"
            ) from exc

        substitution = dict(substitution)
        any_change = False
        for agg_index, agg in enumerate(rule.aggregates):
            state_key = (rule_index, agg_index)
            state = aggregate_states.get(state_key)
            if state is None:
                state = AggregateState(agg.function)
                aggregate_states[state_key] = state
            contributor = tuple(
                substitution[v] for v in agg.contributors
            )
            if agg.argument is not None:
                contribution = agg.argument.evaluate(substitution)
            else:
                contribution = 1
            changed, value = state.contribute(
                group_key, contributor, contribution
            )
            if self._metrics is not None:
                name = self._rule_names.get(id(rule), rule.label or "?")
                self._metrics.counter(
                    "chase.aggregate_contributions", rule=name
                ).inc()
                if changed:
                    self._metrics.counter(
                        "chase.aggregate_updates", rule=name
                    ).inc()
            any_change = any_change or changed
            substitution[agg.target] = Constant(value)

        # Post-aggregate conditions (e.g. msum(...) > 0.5).
        for condition in rule.conditions:
            if any(
                v in {a.target for a in rule.aggregates}
                for v in condition.variables()
            ):
                if not condition.holds(substitution):
                    return False

        head_atoms = [atom.substitute(substitution) for atom in rule.head]
        emitted_change = False
        for atom_index, atom in enumerate(head_atoms):
            if not atom.is_ground:
                raise EvaluationError(
                    f"aggregate head atom {atom} not ground in rule "
                    f"{rule.label or rule}"
                )
            emit_key = (rule_index, atom_index, group_key)
            previous = emitted_aggregates.get(emit_key)
            if previous == atom:
                continue
            if previous is not None:
                store.retract(previous)
            if store.add(atom):
                emitted_change = True
                provenance.record(
                    atom,
                    rule.label,
                    premises,
                    note="monotonic aggregate update",
                )
            emitted_aggregates[emit_key] = atom
        if emitted_change and self._metrics is not None:
            name = self._rule_names.get(id(rule), rule.label or "?")
            self._metrics.counter("chase.rule_firings", rule=name).inc()
        return emitted_change

    # -- body evaluation -----------------------------------------------------

    def _enumerate_bindings(
        self,
        rule: Rule,
        store: FactStore,
        context: ExternalContext,
        first_round: bool,
    ) -> List[_Binding]:
        """Enumerate regular-body matches, semi-naive: at least one
        positive regular literal must match a delta fact (unless the
        rule has no regular positive literal at all).

        External atoms are NOT evaluated here — they run at firing
        time, after routing, so binding-order heuristics govern their
        side effects.  Negated literals come last so they are checked
        on (mostly) bound atoms.

        The default path executes the rule's compiled plans
        (:mod:`repro.vadalog.plans`); the recursive enumerator below
        remains both the escape hatch (``use_plans=False`` /
        ``CHASE_LEGACY_ENUMERATION=1``) and the fallback when a
        pushed-down expression cannot be evaluated plan-side
        (:class:`PlanFallback`), so planned evaluation is always
        observationally identical to legacy.
        """
        if self.use_plans:
            plans = self._plan_cache.get(id(rule))
            if plans is not None and not plans.unplannable:
                try:
                    return self._enumerate_planned(
                        rule, plans, store, first_round
                    )
                except PlanFallback as fallback:
                    if self._metrics is not None:
                        self._metrics.counter(
                            "chase.plan_fallbacks",
                            rule=self._rule_names[id(rule)],
                        ).inc()
                    if self._events is not None:
                        cause = fallback.__cause__
                        self._events.emit(
                            "plan_fallback",
                            rule=self._rule_names[id(rule)],
                            error=type(
                                cause if cause is not None else fallback
                            ).__name__,
                            reason=str(fallback),
                            stratum=self._stratum_index,
                            round=self._round,
                        )
        positives = [
            lit
            for lit in rule.body
            if not lit.negated and not lit.atom.is_external
        ]
        negatives = [lit for lit in rule.body if lit.negated]
        results: List[_Binding] = []
        seen: Set[Tuple] = set()

        if not positives:
            # Rules driven purely by externals: evaluate once per round.
            self._extend_binding(
                rule, [], negatives, store, context, {}, [], results,
                seen, None
            )
            return results

        if first_round:
            # All facts count as delta on the stratum's first round.
            self._extend_binding(
                rule, positives, negatives, store, context, {}, [],
                results, seen, None
            )
            return results

        for delta_literal in positives:
            if not store.delta(delta_literal.atom.predicate):
                continue
            self._extend_binding(
                rule,
                positives,
                negatives,
                store,
                context,
                {},
                [],
                results,
                seen,
                delta_literal,
            )
        return results

    def _pick_next_literal(
        self,
        remaining: List[Literal],
        store: FactStore,
        substitution: Substitution,
        delta_literal: Optional[Literal],
    ) -> Literal:
        """Greedy join ordering: prefer the delta literal first (it is
        usually the smallest relation), then the literal with the most
        bound positions, tie-broken by relation size."""
        # Identity, not equality: a body may contain duplicate literals
        # (e.g. ``p(X, Z), p(X, Z)``), and an equality match here would
        # hand back the already-consumed delta literal, which the
        # caller cannot remove from ``remaining`` — an unbounded
        # recursion (the seed suite's RecursionError).
        if delta_literal is not None and any(
            lit is delta_literal for lit in remaining
        ):
            return delta_literal
        best = None
        best_key = None
        for literal in remaining:
            atom = literal.atom
            bound = len(bound_positions(atom, substitution))
            key = (-bound, store.count(atom.predicate))
            if best_key is None or key < best_key:
                best = literal
                best_key = key
        assert best is not None
        return best

    def _extend_binding(
        self,
        rule: Rule,
        positives: List[Literal],
        negatives: List[Literal],
        store: FactStore,
        context: ExternalContext,
        substitution: Substitution,
        premises: List[Fact],
        results: List[_Binding],
        seen: Set[Tuple],
        delta_literal: Optional[Literal],
    ) -> None:
        if not positives:
            # All positive atoms joined: check negation-as-failure on
            # the (now mostly bound) negated atoms, then finish.
            for literal in negatives:
                atom = literal.atom
                grounded = atom.substitute(substitution)
                if grounded.is_ground:
                    if store.contains(grounded):
                        return
                else:
                    bound = bound_positions(atom, substitution)
                    if any(
                        True for _ in store.lookup(atom.predicate, bound)
                    ):
                        return
            self._finish_binding(
                rule, store, substitution, premises, results, seen
            )
            return

        literal = self._pick_next_literal(
            positives, store, substitution, delta_literal
        )
        rest = [lit for lit in positives if lit is not literal]
        atom = literal.atom
        delta_only = literal is delta_literal
        bound = bound_positions(atom, substitution)
        for fact in store.lookup(atom.predicate, bound, delta_only=delta_only):
            extended = match_atom(atom, fact, substitution)
            if extended is None:
                continue
            premises.append(fact)
            self._extend_binding(
                rule,
                rest,
                negatives,
                store,
                context,
                extended,
                premises,
                results,
                seen,
                delta_literal,
            )
            premises.pop()

    def _finish_binding(
        self,
        rule: Rule,
        store: FactStore,
        substitution: Substitution,
        premises: List[Fact],
        results: List[_Binding],
        seen: Set[Tuple],
    ) -> None:
        substitution = dict(substitution)
        for assignment in rule.assignments:
            if any(
                v not in substitution
                for v in assignment.input_variables()
            ):
                raise EvaluationError(
                    f"assignment to {assignment.target.name} in rule "
                    f"{rule.label or rule} depends on external-only "
                    "variables; bind them with regular atoms instead"
                )
            if assignment.target in substitution:
                # Equality check when the "assigned" variable is bound.
                value = evaluate_to_term(assignment.expression, substitution)
                if substitution[assignment.target] != value:
                    return
            else:
                substitution[assignment.target] = evaluate_to_term(
                    assignment.expression, substitution
                )
        aggregate_targets = {agg.target for agg in rule.aggregates}
        deferred = set()
        for condition in self._deferred_conditions(rule):
            deferred.add(id(condition))
        for condition in rule.conditions:
            condition_vars = set(condition.variables())
            if condition_vars & aggregate_targets:
                continue  # checked after aggregation
            if id(condition) in deferred:
                continue  # checked after external evaluation
            if not condition.holds(substitution):
                return
        key_vars = sorted(
            (v for v in substitution if not v.is_anonymous),
            key=lambda v: v.name,
        )
        key = tuple((v.name, substitution[v]) for v in key_vars)
        if key in seen:
            return
        seen.add(key)
        results.append(_Binding(substitution, list(premises)))


