"""External predicate registry — the ``#`` plug-in mechanism.

The paper's Algorithm 2 calls ``#risk(I, R)`` and ``#anonymize(I)``:
"atoms defined in external libraries".  We model an external predicate
as a Python callable invoked during body evaluation:

* it receives the *input* terms (those bound by the current
  substitution) as plain Python values,
* it returns an iterable of output tuples for the unbound positions —
  empty meaning "no match", several meaning multiple bindings,
* side-effecting externals (like ``#anonymize``) may also inject new
  facts through the :class:`ExternalContext` handle they receive.

This is exactly the escape hatch the authors use to plug an
"off-the-shelf statistical library" for the negative-binomial sampling
in Section 5.2.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import UnknownExternalError
from .terms import Constant, Term, Variable, unwrap, wrap


class ExternalContext:
    """Handle passed to external predicates for controlled side effects."""

    def __init__(self, store, null_factory):
        self.store = store
        self.null_factory = null_factory

    def fresh_null(self):
        return self.null_factory.fresh()

    def assert_fact(self, predicate: str, *values) -> None:
        from .atoms import Atom

        self.store.add(Atom(predicate, tuple(wrap(v) for v in values)))


#: An external implementation takes (context, input values by position)
#: and yields full argument tuples (Python values) consistent with them.
ExternalImpl = Callable[..., Iterable[Tuple[Any, ...]]]


class ExternalRegistry:
    """Named registry of external predicates."""

    def __init__(self):
        self._externals: Dict[str, ExternalImpl] = {}

    def register(self, name: str, impl: ExternalImpl) -> None:
        """Register an external under ``name`` (without the ``#``)."""
        self._externals[name.lstrip("#")] = impl

    def unregister(self, name: str) -> None:
        self._externals.pop(name.lstrip("#"), None)

    def __contains__(self, name: str) -> bool:
        return name.lstrip("#") in self._externals

    def copy(self) -> "ExternalRegistry":
        clone = ExternalRegistry()
        clone._externals.update(self._externals)
        return clone

    def evaluate(
        self,
        name: str,
        args: Sequence[Term],
        bindings,
        context: ExternalContext,
    ):
        """Evaluate ``#name(args)`` under the current substitution.

        Yields extended substitutions, one per output tuple produced by
        the external implementation.
        """
        impl = self._externals.get(name.lstrip("#"))
        if impl is None:
            raise UnknownExternalError(
                f"external predicate #{name.lstrip('#')} is not registered"
            )
        resolved: List[Optional[Any]] = []
        open_positions: List[int] = []
        for position, term in enumerate(args):
            if isinstance(term, Variable):
                bound = bindings.get(term)
                if bound is None:
                    resolved.append(None)
                    open_positions.append(position)
                else:
                    resolved.append(unwrap(bound))
            else:
                resolved.append(unwrap(term))
        for output in impl(context, *resolved):
            if output is None:
                continue
            if not isinstance(output, tuple):
                output = (output,)
            if len(output) != len(args):
                raise UnknownExternalError(
                    f"external #{name.lstrip('#')} returned a tuple of "
                    f"arity {len(output)}, expected {len(args)}"
                )
            extended = dict(bindings)
            compatible = True
            for position, term in enumerate(args):
                value = wrap(output[position])
                if isinstance(term, Variable):
                    prior = extended.get(term)
                    if prior is None:
                        extended[term] = value
                    elif prior != value:
                        compatible = False
                        break
                elif term != value and unwrap(term) != output[position]:
                    compatible = False
                    break
            if compatible:
                yield extended


def boolean_external(func: Callable[..., bool]) -> ExternalImpl:
    """Adapt a boolean Python function into an external predicate: when
    the function returns truthy the input tuple itself is echoed back
    (one match), otherwise there is no match."""

    def impl(context, *values):
        if func(*values):
            yield tuple(values)

    return impl


def tabular_external(
    func: Callable[..., Iterable[Tuple[Any, ...]]]
) -> ExternalImpl:
    """Adapt a function producing full output tuples (ignoring the
    context handle) into an external predicate."""

    def impl(context, *values):
        yield from func(*values)

    return impl
