"""Equality-generating dependency enforcement.

An EGD ``phi(x) -> x_i = x_j`` is satisfied by unifying the two bound
terms when at least one is a labelled null (the null is replaced by the
other term everywhere in the store), and *violated* when both are
distinct constants.  Violations are collected rather than fatal by
default: Algorithm 1 explicitly wants EGD violations surfaced "to allow
for manual inspection of doubtful cases" (human in the loop).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import EGDViolationError
from .atoms import Atom, Fact
from .database import FactStore
from .rules import EGD
from .terms import Constant, LabelledNull, Term
from .unification import Substitution, bound_positions, match_atom


class EGDViolation:
    """A recorded violation: the EGD body matched but the equated
    positions carry two distinct constants."""

    __slots__ = ("egd", "left", "right", "premises")

    def __init__(self, egd: EGD, left: Term, right: Term, premises):
        self.egd = egd
        self.left = left
        self.right = right
        self.premises = tuple(premises)

    def __repr__(self):
        label = self.egd.label or "egd"
        return (
            f"EGDViolation({label}: {self.left} != {self.right}, "
            f"{len(self.premises)} premises)"
        )


def _enumerate_matches(
    literals, store: FactStore, bindings: Substitution, premises: List[Fact]
):
    if not literals:
        yield dict(bindings), list(premises)
        return
    literal, *rest = literals
    atom = literal.atom
    bound = bound_positions(atom, bindings)
    for fact in store.lookup(atom.predicate, bound):
        extended = match_atom(atom, fact, bindings)
        if extended is None:
            continue
        premises.append(fact)
        yield from _enumerate_matches(rest, store, extended, premises)
        premises.pop()


def enforce_egds(
    egds,
    store: FactStore,
    strict: bool = False,
    max_passes: int = 50,
) -> List[EGDViolation]:
    """Repeatedly apply EGDs until no null unification is possible.

    Returns the list of constant-vs-constant violations found.  With
    ``strict=True`` the first violation raises
    :class:`~repro.errors.EGDViolationError` instead (hard-failure
    chase).
    """
    violations: List[EGDViolation] = []
    reported = set()
    for _ in range(max_passes):
        changed = False
        for egd in egds:
            positive = [lit for lit in egd.body if not lit.negated]
            for bindings, premises in _enumerate_matches(
                positive, store, {}, []
            ):
                for left_var, right_var in egd.equalities:
                    left = bindings.get(left_var)
                    right = bindings.get(right_var)
                    if left is None or right is None or left == right:
                        continue
                    if isinstance(left, LabelledNull):
                        _substitute_null(store, left, right)
                        changed = True
                    elif isinstance(right, LabelledNull):
                        _substitute_null(store, right, left)
                        changed = True
                    else:
                        key = (id(egd), left, right)
                        if key in reported:
                            continue
                        reported.add(key)
                        violation = EGDViolation(egd, left, right, premises)
                        if strict:
                            raise EGDViolationError(
                                f"EGD {egd.label or egd} violated: "
                                f"{left} != {right}",
                                fact_a=premises[0] if premises else None,
                                fact_b=premises[-1] if premises else None,
                            )
                        violations.append(violation)
                if changed:
                    break  # store mutated: restart match enumeration
            if changed:
                break
        if not changed:
            break
    return violations


def _substitute_null(
    store: FactStore, null: LabelledNull, replacement: Term
) -> None:
    """Replace every occurrence of ``null`` in the store by
    ``replacement`` (null unification step of the EGD chase)."""
    affected = [
        fact for fact in store.facts() if null in fact.terms
    ]
    for fact in affected:
        store.retract(fact)
        new_terms = tuple(
            replacement if term == null else term for term in fact.terms
        )
        store.add(Atom(fact.predicate, new_terms))
