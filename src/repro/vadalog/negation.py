"""Predicate dependency analysis and stratification.

Vadalog supports *stratified* negation: the predicate dependency graph
must not contain a cycle through a negated edge.  Monotonic aggregation,
by contrast, may be recursive (that is precisely what the anonymization
cycle relies on), so aggregate edges are allowed inside a stratum and
handled incrementally by the chase.

The stratification is computed from strongly connected components of
the dependency graph, condensed and topologically ordered.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import networkx as nx

from ..errors import StratificationError
from .rules import EGD, Rule


class DependencyGraph:
    """Head->body predicate dependencies with negation/aggregation marks."""

    def __init__(self, rules: Sequence[Rule]):
        self.rules = tuple(rules)
        self.graph = nx.DiGraph()
        for rule in rules:
            heads = rule.head_predicates()
            for head in heads:
                self.graph.add_node(head)
            # Co-head predicates of a multi-head rule are derived by the
            # same firing, so they must live in the same stratum: link
            # them both ways to force a shared SCC.  Without this, the
            # rule would be scheduled with its highest-ranked head while
            # consumers of a lower-ranked head close their fixpoint
            # first and never see the co-derived facts.
            for first in heads:
                for second in heads:
                    if first == second:
                        continue
                    if not self.graph.has_edge(first, second):
                        self.graph.add_edge(
                            first, second, negated=False, aggregated=False
                        )
            for literal in rule.body:
                body_pred = literal.atom.predicate
                if body_pred.startswith("#"):
                    continue  # externals are not fixpoint-relevant
                self.graph.add_node(body_pred)
                for head in heads:
                    edge = self.graph.get_edge_data(body_pred, head)
                    negated = literal.negated
                    aggregated = rule.has_aggregates
                    if edge is None:
                        self.graph.add_edge(
                            body_pred,
                            head,
                            negated=negated,
                            aggregated=aggregated,
                        )
                    else:
                        edge["negated"] = edge["negated"] or negated
                        edge["aggregated"] = (
                            edge["aggregated"] or aggregated
                        )

    def predicates(self) -> Set[str]:
        return set(self.graph.nodes)

    def depends_on(self, predicate: str) -> Set[str]:
        """Predicates the given predicate (transitively) depends on."""
        if predicate not in self.graph:
            return set()
        return set(nx.ancestors(self.graph, predicate))


def stratify(rules: Sequence[Rule]) -> List[List[Rule]]:
    """Partition rules into strata.

    Each stratum is a list of rules that may be evaluated together to a
    fixpoint; strata are returned bottom-up.  Raises
    :class:`StratificationError` when negation occurs inside a cycle.
    """
    dependency = DependencyGraph(rules)
    graph = dependency.graph
    components = list(nx.strongly_connected_components(graph))
    component_of: Dict[str, int] = {}
    for index, component in enumerate(components):
        for predicate in component:
            component_of[predicate] = index

    # Negation inside an SCC is unstratifiable.
    for source, target, data in graph.edges(data=True):
        if data.get("negated") and component_of[source] == component_of[
            target
        ]:
            raise StratificationError(
                f"negation cycle through predicates {source!r} and "
                f"{target!r}: the program is not stratifiable"
            )

    condensation = nx.condensation(graph, scc=components)
    order = list(nx.topological_sort(condensation))
    component_rank = {component: rank for rank, component in enumerate(order)}

    # A rule belongs to the stratum of its head component(s); with
    # multiple head atoms it goes to the highest-ranked one so all
    # dependencies are available.
    stratum_rules: Dict[int, List[Rule]] = defaultdict(list)
    for rule in rules:
        ranks = [
            component_rank[component_of[pred]]
            for pred in rule.head_predicates()
            if pred in component_of
        ]
        rank = max(ranks) if ranks else 0
        stratum_rules[rank].append(rule)

    return [
        stratum_rules[rank]
        for rank in sorted(stratum_rules)
        if stratum_rules[rank]
    ]


def check_negation_safety(rules: Sequence[Rule]) -> None:
    """Eagerly validate stratifiability, raising on failure."""
    stratify(rules)
