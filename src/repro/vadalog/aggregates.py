"""Monotonic aggregation state.

Vadalog's monotonic aggregations (``msum``, ``mcount``, ``mprod``,
``mmin``, ``mmax``, ``munion``) group body bindings by the head
variables and key each contribution by a *contributor* tuple ``<I>``.
Per Section 4.3 of the paper, when several bindings share the same
contributor within a group, only one contribution counts — the one
furthest along the monotone direction — so that an anonymized
replacement of a tuple supersedes its original in every aggregate it
feeds, driving the anonymization cycle to convergence.

The chase keeps one :class:`AggregateState` per (rule, aggregate) and
feeds it contributions as bindings are discovered; the state reports
whether a group's value changed so the evaluator can emit (and, for
functional aggregate predicates, replace) head facts incrementally.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Tuple

from ..errors import EvaluationError


class _Group:
    __slots__ = ("contributions",)

    def __init__(self):
        # contributor key -> retained contribution
        self.contributions: Dict[Hashable, Any] = {}


class AggregateState:
    """Incremental state for one aggregate occurrence in one rule."""

    def __init__(self, function: str):
        self.function = function
        self._groups: Dict[Hashable, _Group] = {}

    def contribute(
        self,
        group_key: Hashable,
        contributor: Hashable,
        contribution: Any,
    ) -> Tuple[bool, Any]:
        """Record a contribution.

        Returns ``(changed, value)`` where ``changed`` tells whether the
        group's aggregate value may have changed and ``value`` is the
        current aggregate value for the group.
        """
        group = self._groups.get(group_key)
        if group is None:
            group = _Group()
            self._groups[group_key] = group
        previous = group.contributions.get(contributor)
        retained = self._combine(previous, contribution)
        if previous is not None and retained == previous:
            return False, self.value(group_key)
        group.contributions[contributor] = retained
        return True, self.value(group_key)

    def absorb(
        self,
        group_key: Hashable,
        contributor: Hashable,
        contribution: Any,
    ) -> None:
        """:meth:`contribute` without the per-call value recomputation
        — for batched evaluation, which defers reading values until
        every contribution of the rule application is in."""
        group = self._groups.get(group_key)
        if group is None:
            group = _Group()
            self._groups[group_key] = group
        contributions = group.contributions
        previous = contributions.get(contributor)
        retained = self._combine(previous, contribution)
        if previous is None or retained != previous:
            contributions[contributor] = retained

    def absorb_many(self, group_keys, contributors, contributions) -> None:
        """Bulk :meth:`absorb` over three parallel sequences (one entry
        per batch row).  The common aggregate functions get dedicated
        loops so the per-row dispatch through :meth:`_combine` is paid
        only for the rare ones."""
        groups = self._groups
        function = self.function
        if function == "mcount":
            for group_key, contributor in zip(group_keys, contributors):
                group = groups.get(group_key)
                if group is None:
                    group = groups[group_key] = _Group()
                group.contributions[contributor] = 1
            return
        if function == "munion":
            for group_key, contributor, contribution in zip(
                group_keys, contributors, contributions
            ):
                group = groups.get(group_key)
                if group is None:
                    group = groups[group_key] = _Group()
                bucket = group.contributions
                if not isinstance(contribution, frozenset):
                    contribution = frozenset((contribution,))
                previous = bucket.get(contributor)
                if previous is None:
                    bucket[contributor] = contribution
                elif not contribution <= previous:
                    bucket[contributor] = previous | contribution
            return
        combine = self._combine
        for group_key, contributor, contribution in zip(
            group_keys, contributors, contributions
        ):
            group = groups.get(group_key)
            if group is None:
                group = groups[group_key] = _Group()
            bucket = group.contributions
            previous = bucket.get(contributor)
            retained = combine(previous, contribution)
            if previous is None or retained != previous:
                bucket[contributor] = retained

    def _combine(self, previous: Optional[Any], new: Any) -> Any:
        """Combine a repeated contribution from the same contributor."""
        if self.function == "mcount":
            return 1
        if previous is None:
            return self._normalize(new)
        new = self._normalize(new)
        if self.function in ("msum", "mmax", "mprod"):
            return max(previous, new)
        if self.function == "mmin":
            return min(previous, new)
        if self.function == "munion":
            return frozenset(previous) | frozenset(new)
        raise EvaluationError(f"unknown aggregate {self.function!r}")

    def _normalize(self, contribution: Any) -> Any:
        if self.function == "munion":
            if isinstance(contribution, frozenset):
                return contribution
            return frozenset([contribution])
        if self.function == "mcount":
            return 1
        if not isinstance(contribution, (int, float)):
            raise EvaluationError(
                f"{self.function} expects a numeric contribution, got "
                f"{contribution!r}"
            )
        return contribution

    def value(self, group_key: Hashable) -> Any:
        """Current aggregate value for a group."""
        group = self._groups.get(group_key)
        if group is None or not group.contributions:
            raise EvaluationError(
                f"aggregate group {group_key!r} has no contributions"
            )
        contributions = group.contributions.values()
        if self.function == "mcount":
            return len(group.contributions)
        if self.function == "msum":
            return sum(contributions)
        if self.function == "mprod":
            result = 1.0
            for value in contributions:
                result *= value
            return result
        if self.function == "mmin":
            return min(contributions)
        if self.function == "mmax":
            return max(contributions)
        if self.function == "munion":
            union: frozenset = frozenset()
            for value in contributions:
                union |= value
            return union
        raise EvaluationError(f"unknown aggregate {self.function!r}")

    def groups(self):
        return self._groups.keys()

    def contributor_count(self, group_key: Hashable) -> int:
        group = self._groups.get(group_key)
        return len(group.contributions) if group else 0

    def clear(self) -> None:
        self._groups.clear()
