"""Rendering programs back to concrete Vadalog syntax.

``render_program(program)`` produces source text that
:func:`~repro.vadalog.parser.parser.parse_program` re-reads into an
equivalent program — used for program persistence, debugging and the
round-trip tests.  Symbolic constants are rendered as quoted strings
(value-equivalent under the parser).
"""

from __future__ import annotations

from typing import List

from ..errors import VadalogError
from .atoms import Assignment, Atom, Condition, Literal
from .expressions import (
    BinOp,
    Case,
    Expression,
    FuncCall,
    Lit,
    TupleExpr,
    UnaryOp,
    VarRef,
)
from .rules import EGD, AggregateSpec, Rule
from .terms import Constant, LabelledNull, Term, Variable


def render_term(term: Term) -> str:
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, LabelledNull):
        raise VadalogError(
            "labelled nulls have no concrete syntax; cannot render"
        )
    value = term.value
    return _render_value(value)


def _render_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, frozenset):
        rendered = ", ".join(
            sorted(_render_value(item) for item in value)
        )
        return f"[{rendered}]"
    raise VadalogError(f"cannot render constant {value!r}")


def render_atom(atom: Atom) -> str:
    args = ", ".join(render_term(term) for term in atom.terms)
    return f"{atom.predicate}({args})"


#: Mirror of the parser's nesting bound: rendering refuses deeper
#: trees with a clean error rather than a ``RecursionError``, and the
#: output stays re-parseable under ``MAX_EXPRESSION_DEPTH``.
MAX_RENDER_DEPTH = 200


def render_expression(expression: Expression, _depth: int = 0) -> str:
    if _depth > MAX_RENDER_DEPTH:
        raise VadalogError(
            f"expression nested deeper than {MAX_RENDER_DEPTH} levels; "
            "refusing to render (would not re-parse)"
        )
    if isinstance(expression, Lit):
        return _render_value(expression.value)
    if isinstance(expression, VarRef):
        return expression.variable.name
    if isinstance(expression, BinOp):
        left = render_expression(expression.left, _depth + 1)
        right = render_expression(expression.right, _depth + 1)
        return f"({left} {expression.op} {right})"
    if isinstance(expression, UnaryOp):
        operand = render_expression(expression.operand, _depth + 1)
        if expression.op == "not":
            return f"not ({operand})"
        return f"(-{operand})"
    if isinstance(expression, Case):
        return (
            "case "
            + render_expression(expression.condition, _depth + 1)
            + " then "
            + render_expression(expression.then_value, _depth + 1)
            + " else "
            + render_expression(expression.else_value, _depth + 1)
        )
    if isinstance(expression, TupleExpr):
        inner = ", ".join(
            render_expression(i, _depth + 1) for i in expression.items
        )
        return f"({inner})"
    if isinstance(expression, FuncCall):
        if expression.name == "get" and len(expression.args) == 2:
            base = render_expression(expression.args[0], _depth + 1)
            key = render_expression(expression.args[1], _depth + 1)
            return f"{base}[{key}]"
        args = ", ".join(
            render_expression(a, _depth + 1) for a in expression.args
        )
        return f"{expression.name}({args})"
    raise VadalogError(f"cannot render expression {expression!r}")


def render_aggregate(spec: AggregateSpec) -> str:
    contributors = ", ".join(v.name for v in spec.contributors)
    if spec.argument is None:
        call = f"{spec.function}(<{contributors}>)"
    else:
        call = (
            f"{spec.function}({render_expression(spec.argument)}, "
            f"<{contributors}>)"
        )
    return f"{spec.target.name} = {call}"


def render_rule(rule: Rule) -> str:
    head = ", ".join(render_atom(atom) for atom in rule.head)
    existentials = rule.existential_variables()
    if existentials:
        names = ", ".join(sorted(v.name for v in existentials))
        # Explicit quantifier prefix: re-parsing records the declaration,
        # so rendered programs stay clean under the VDL002 lint.
        head = f"exists({names}) {head}"
    parts: List[str] = []
    for literal in rule.body:
        prefix = "not " if literal.negated else ""
        parts.append(prefix + render_atom(literal.atom))
    for assignment in rule.assignments:
        parts.append(
            f"{assignment.target.name} = "
            f"{render_expression(assignment.expression)}"
        )
    for spec in rule.aggregates:
        parts.append(render_aggregate(spec))
    for condition in rule.conditions:
        parts.append(render_expression(condition.expression))
    body = ", ".join(parts)
    label = f'@label("{rule.label}").\n' if rule.label else ""
    return f"{label}{head} :- {body}."


def render_egd(egd: EGD) -> str:
    equalities = ", ".join(
        f"{left.name} = {right.name}" for left, right in egd.equalities
    )
    body = ", ".join(
        ("not " if literal.negated else "") + render_atom(literal.atom)
        for literal in egd.body
    )
    label = f'@label("{egd.label}").\n' if egd.label else ""
    return f"{label}{equalities} :- {body}."


def render_annotation(annotation) -> str:
    """Render a ``(name, args)`` program annotation back to source."""
    name, args = annotation
    if not args:
        return f"@{name}."
    rendered = ", ".join(_render_value(arg) for arg in args)
    return f"@{name}({rendered})."


def render_program(program) -> str:
    """Render a :class:`~repro.vadalog.program.Program` to source."""
    blocks: List[str] = []
    for annotation in getattr(program, "annotations", ()):
        blocks.append(render_annotation(annotation))
    for fact in program.facts:
        blocks.append(render_atom(fact) + ".")
    for rule in program.rules:
        blocks.append(render_rule(rule))
    for egd in program.egds:
        blocks.append(render_egd(egd))
    return "\n".join(blocks) + ("\n" if blocks else "")
