"""Columnar fact storage and batched plan execution.

This module is the second :class:`~repro.vadalog.database.FactStore`
backend promised by the ROADMAP: high-cardinality relations are stored
as per-position *code columns* over a per-relation term dictionary
(the classic dictionary-encoded columnar layout of analytic engines,
and the storage split the Vadalog System paper motivates for chase
workloads), while small relations keep the dict/set representation.

Two pieces live here:

* :class:`ColumnarRelation` — a drop-in replacement for the dict
  relation inside :class:`FactStore`.  Every term is interned once in
  a :class:`TermDictionary`; each position of the relation is a
  growable int64 column of codes (numpy-backed when numpy is
  importable, ``array('q')`` otherwise).  Probes run over *rowid*
  buckets: a full-key probe is one hash lookup on the code tuple, a
  partial-key probe goes through a lazily built group index
  ``positions -> code key -> [rowid]``.  Facts themselves are kept in
  a rowid-indexed list so probe results stay ordinary
  :class:`~repro.vadalog.atoms.Fact` tuples and every row-at-a-time
  consumer (legacy enumerator, negation, EGDs, externals,
  ``conjunction_has_image``) works unchanged.
* :func:`execute_batch` — a batched executor for the PR 5 compiled
  join plans.  Instead of a generator stack yielding one substitution
  dict per match, the whole delta frontier flows through the plan as
  parallel columns: scan steps are hash joins that expand the batch,
  assignments/conditions evaluate per row through a zero-copy
  :class:`_RowView`, negation checks filter rows in place.  The
  binding set it produces is identical to
  :meth:`JoinPlan.execute <repro.vadalog.plans.JoinPlan.execute>` up
  to row order.

**Error masking (fidelity contract).**  The legacy enumerator joins
*all* positive literals first and only then evaluates assignments and
conditions (in rule order, stopping at the first failure).  A pushed
down expression in a plan may therefore raise on a row the legacy
path would never finish.  When a batched eval step raises for a row,
the executor decides between two outcomes:

* if the row's scan-bound bindings **cannot** be extended to a
  complete positive join that passes every negation check, the legacy
  path would never reach its finish step for this row — the error is
  *masked*: only that row is dropped, the rest of the batch proceeds,
  and the engine emits a schema-versioned ``batch_mask`` event;
* if a completing extension **does** exist, the legacy path would
  raise the same error (all plan-side-earlier assignments/conditions
  succeeded for this row and run before it at finish time), so the
  executor raises :class:`~repro.vadalog.plans.PlanFallback` and the
  engine re-runs the rule on the legacy path, reproducing the legacy
  outcome bit for bit.
"""

from __future__ import annotations

import sys
from array import array
from time import perf_counter_ns
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

try:  # pragma: no cover — exercised via HAVE_NUMPY branches
    import numpy as _np

    HAVE_NUMPY = True
except Exception:  # pragma: no cover — numpy is in the base image
    _np = None
    HAVE_NUMPY = False

from ..telemetry import state as _telemetry
from .atoms import Fact
from .expressions import evaluate_to_term
from .plans import (
    AssignStep,
    FilterStep,
    JoinPlan,
    NegationStep,
    PlanFallback,
    ScanStep,
)
from .rules import Rule
from .terms import Term, Variable
from .unification import bound_positions, match_atom


class TermDictionary:
    """Per-relation term interning: ``Term -> code`` plus the decode
    list.  Codes are dense ints starting at 0, so they double as
    indices into decode arrays."""

    __slots__ = ("encode", "decode")

    def __init__(self):
        self.encode: Dict[Term, int] = {}
        self.decode: List[Term] = []

    def code(self, term: Term) -> int:
        """Intern ``term``, returning its (possibly fresh) code."""
        found = self.encode.get(term)
        if found is None:
            found = len(self.decode)
            self.encode[term] = found
            self.decode.append(term)
        return found

    def probe(self, term: Term) -> Optional[int]:
        """Code for ``term`` or None — never interns (probe keys for
        terms the relation has never seen must miss, not grow the
        dictionary)."""
        return self.encode.get(term)

    def __len__(self):
        return len(self.decode)


def _new_column():
    return array("q")


def _column_nbytes(column) -> int:
    if HAVE_NUMPY and isinstance(column, _np.ndarray):  # pragma: no cover
        return int(column.nbytes)
    return column.itemsize * len(column)


class ColumnarRelation:
    """Dictionary-encoded columnar storage for one predicate.

    Mirrors the semantics of
    :class:`~repro.vadalog.database._PredicateRelation` exactly —
    including the semi-naive ``delta``/``pending`` frontier sets and
    the lazily built frontier index views — while replacing fact-set
    indices with rowid buckets over int64 code columns.  Retraction
    (functional aggregates, EGD null unification) tombstones the rowid
    instead of rewriting columns.
    """

    backend = "columnar"

    __slots__ = (
        "arity", "dictionary", "facts", "rows", "columns", "dead",
        "row_ids", "groups", "delta", "pending", "delta_indices",
        "live_count", "encoded_upto", "active", "row_ids_built",
        "probes", "probe_hits",
    )

    def __init__(self, arity: int):
        if arity < 0:
            raise ValueError("columnar relation needs a known arity")
        self.arity = arity
        self.dictionary = TermDictionary()
        #: live facts (dedup, membership and full-key probes — the
        #: same set the dict backend keeps, so ingestion costs the
        #: same; encoding is deferred, see ``_encode_pending``).
        self.facts: Set[Fact] = set()
        #: rowid -> Fact (probe results decode through this list).
        self.rows: List[Fact] = []
        #: per position, the int64 code column (encoded lazily up to
        #: ``encoded_upto``).
        self.columns = [_new_column() for _ in range(arity)]
        #: tombstoned rowids (retracted facts).
        self.dead: Set[int] = set()
        #: full code tuple -> rowid, live encoded rows only.
        self.row_ids: Dict[Tuple[int, ...], int] = {}
        #: positions -> code key -> [rowid, ...] (live rows only).
        self.groups: Dict[
            Tuple[int, ...], Dict[Tuple[int, ...], List[int]]
        ] = {}
        self.delta: Set[Fact] = set()
        self.pending: Set[Fact] = set()
        # Frontier-scoped views, same shape and lifecycle as the dict
        # relation's: keyed by positions, cleared whenever the
        # frontier changes.
        self.delta_indices: Dict[
            Tuple[int, ...], Dict[Tuple[Term, ...], Set[Fact]]
        ] = {}
        self.live_count = 0
        #: rows[:encoded_upto] have codes in every *active* column;
        #: appends past this watermark are plain list/set inserts
        #: until the next partial-key probe forces an encode pass.
        self.encoded_upto = 0
        #: positions whose code columns exist (column pruning: a
        #: probe activates only the positions it keys on, so the
        #: unprobed columns of a wide relation are never interned).
        self.active: Set[int] = set()
        #: the full-key rowid map is built only when retraction (or a
        #: whole-row account) first needs it, then kept incremental.
        self.row_ids_built = False
        # Always-on probe accounting (ints, no telemetry gate): the
        # memory report surfaces these as real hit/miss counts.
        self.probes = 0
        self.probe_hits = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dict_relation(cls, relation) -> "ColumnarRelation":
        """Promote a dict relation, preserving the frontier state."""
        twin = cls(relation.arity)
        for fact in relation.facts:
            twin._append(fact)
        twin.delta = set(relation.delta)
        twin.pending = set(relation.pending)
        return twin

    # -- mutation ----------------------------------------------------------

    def _append(self, fact: Fact) -> bool:
        if fact in self.facts:
            return False
        self.facts.add(fact)
        self.rows.append(fact)
        self.live_count += 1
        return True

    def _encode_column(self, position: int, start: int, total: int) -> None:
        """Intern ``rows[start:total]`` at one position, appending the
        codes to that column (interning inlined: this is the hottest
        loop in the backend)."""
        rows = self.rows
        encode = self.dictionary.encode
        decode = self.dictionary.decode
        codes: List[int] = []
        append = codes.append
        for rowid in range(start, total):
            term = rows[rowid].terms[position]
            code = encode.get(term)
            if code is None:
                code = len(decode)
                encode[term] = code
                decode.append(term)
            append(code)
        self.columns[position].extend(codes)

    def _encode_pending(
        self,
        positions: Tuple[int, ...] = (),
        all_columns: bool = False,
        with_row_ids: bool = False,
    ) -> None:
        """Encode lazily and *per column*: activate the columns the
        caller's key touches (interning their terms from row zero),
        catch newly appended rows up on every already-active column,
        and keep any built group index and the full-key rowid map
        incremental.  Ingestion stays as cheap as the dict backend's,
        and a probe keyed on two positions of a wide relation never
        pays for the other columns; ``all_columns`` (byte accounting)
        and ``with_row_ids`` (retraction, which must tombstone by
        whole row) force the remainder."""
        active = self.active
        wanted = range(self.arity) if (all_columns or with_row_ids) \
            else positions
        fresh = [p for p in wanted if p not in active]
        total = len(self.rows)
        upto = self.encoded_upto
        need_row_ids = with_row_ids and not self.row_ids_built
        if not fresh and not need_row_ids and upto == total:
            return
        cells = 0
        for position in fresh:
            self._encode_column(position, 0, total)
            cells += total
        if upto < total:
            for position in active:
                self._encode_column(position, upto, total)
                cells += total - upto
            columns = self.columns
            # Group indices only ever span already-active positions
            # (ensure_group activates before building), so the new
            # rows' codes are all in place.
            for group_positions, index in self.groups.items():
                group_columns = [columns[p] for p in group_positions]
                for rowid in range(upto, total):
                    group_key = tuple(c[rowid] for c in group_columns)
                    bucket = index.get(group_key)
                    if bucket is None:
                        index[group_key] = [rowid]
                    else:
                        bucket.append(rowid)
            if self.row_ids_built:
                row_ids = self.row_ids
                for rowid in range(upto, total):
                    row_ids[tuple(c[rowid] for c in columns)] = rowid
            self.encoded_upto = total
        active.update(fresh)
        if need_row_ids:
            columns = self.columns
            row_ids = self.row_ids
            dead = self.dead
            for rowid in range(total):
                if rowid not in dead:
                    row_ids[tuple(c[rowid] for c in columns)] = rowid
            self.row_ids_built = True
        if cells and _telemetry.enabled:
            _telemetry.registry.counter(
                "store.columnar.rows_encoded"
            ).inc(cells)

    def add(self, fact: Fact) -> bool:
        if not self._append(fact):
            return False
        self.pending.add(fact)
        return True

    def remove(self, fact: Fact) -> bool:
        if fact not in self.facts:
            return False
        self.facts.discard(fact)
        # Tombstoning needs the rowid, so retraction forces encoding
        # (rare: functional-aggregate replacement and EGD repairs).
        self._encode_pending(with_row_ids=True)
        probe = self.dictionary.probe
        key = tuple(probe(term) for term in fact.terms)
        rowid = self.row_ids.pop(key)
        self.dead.add(rowid)
        self.live_count -= 1
        if fact in self.delta:
            self.delta.discard(fact)
            # Frontier changed mid-round: every view is stale.
            self.delta_indices.clear()
        self.pending.discard(fact)
        for positions, index in self.groups.items():
            group_key = tuple(key[p] for p in positions)
            bucket = index.get(group_key)
            if bucket is not None:
                try:
                    bucket.remove(rowid)
                except ValueError:  # pragma: no cover — kept defensive
                    pass
        return True

    def __contains__(self, fact: Fact) -> bool:
        return fact in self.facts

    # -- lookup ------------------------------------------------------------

    def fact_count(self) -> int:
        return self.live_count

    def iter_facts(self) -> Iterator[Fact]:
        if not self.dead:
            return iter(self.rows)
        dead = self.dead
        return (
            fact for rowid, fact in enumerate(self.rows)
            if rowid not in dead
        )

    def all_facts(self) -> List[Fact]:
        return list(self.iter_facts())

    def contains_fact(self, fact: Fact) -> bool:
        return fact in self.facts

    def snapshot_facts(self) -> Set[Fact]:
        return set(self.facts)

    def clone(self) -> "ColumnarRelation":
        twin = ColumnarRelation(self.arity)
        for fact in self.iter_facts():
            twin._append(fact)
        twin.delta = set(self.delta)
        twin.pending = set(self.pending)
        return twin

    def ensure_group(
        self, positions: Tuple[int, ...]
    ) -> Dict[Tuple[int, ...], List[int]]:
        self._encode_pending(positions)
        index = self.groups.get(positions)
        if index is None:
            index = {}
            dead = self.dead
            columns = [self.columns[p] for p in positions]
            for rowid in range(len(self.rows)):
                if rowid in dead:
                    continue
                group_key = tuple(column[rowid] for column in columns)
                bucket = index.get(group_key)
                if bucket is None:
                    index[group_key] = [rowid]
                else:
                    bucket.append(rowid)
            self.groups[positions] = index
            if _telemetry.enabled:
                _telemetry.registry.counter(
                    "store.columnar.group_index_builds"
                ).inc()
        return index

    def delta_view(
        self, positions: Tuple[int, ...]
    ) -> Dict[Tuple[Term, ...], Set[Fact]]:
        """Frontier-scoped composite view, identical to the dict
        relation's (the frontier is a plain fact set either way)."""
        index = self.delta_indices.get(positions)
        if index is None:
            index = {}
            for fact in self.delta:
                terms = fact.terms
                key = tuple(terms[p] for p in positions)
                bucket = index.get(key)
                if bucket is None:
                    bucket = index[key] = set()
                bucket.add(fact)
            self.delta_indices[positions] = index
            if _telemetry.enabled:
                _telemetry.registry.counter(
                    "store.delta_index_builds"
                ).inc()
        return index

    def probe(
        self,
        predicate: str,
        positions: Tuple[int, ...],
        key: Tuple[Term, ...],
        delta_only: bool = False,
    ) -> Tuple[Fact, ...]:
        """Same contract as :meth:`FactStore.probe`; misses on terms
        the relation has never stored short-circuit without touching
        an index."""
        if delta_only:
            if not self.delta:
                return ()
            if not positions:
                return tuple(self.delta)
            bucket = self.delta_view(positions).get(key)
            return tuple(bucket) if bucket else ()
        if not self.live_count:
            return ()
        if not positions:
            return tuple(self.iter_facts())
        self.probes += 1
        telemetry_on = _telemetry.enabled
        if telemetry_on:
            _telemetry.registry.counter("store.columnar.probes").inc()
        if len(positions) == self.arity:
            # Full-key membership needs no encoding — same shortcut
            # as the dict backend.
            candidate = Fact(predicate, key)
            if candidate not in self.facts:
                return ()
            self.probe_hits += 1
            if telemetry_on:
                _telemetry.registry.counter(
                    "store.columnar.probe_hits"
                ).inc()
            return (candidate,)
        self._encode_pending(positions)
        probe = self.dictionary.probe
        codes: List[int] = []
        for term in key:
            code = probe(term)
            if code is None:
                # Never-stored term: guaranteed miss, skip the index.
                return ()
            codes.append(code)
        bucket = self.ensure_group(positions).get(tuple(codes))
        if not bucket:
            return ()
        self.probe_hits += 1
        if telemetry_on:
            _telemetry.registry.counter("store.columnar.probe_hits").inc()
        rows = self.rows
        return tuple(rows[rowid] for rowid in bucket)

    # -- memory accounting -------------------------------------------------

    def column_bytes(self) -> int:
        """Real bytes held by the code columns (the part a dict
        backend spends on per-fact index-set entries).  Forces the
        encode pass so the figure covers every stored row."""
        self._encode_pending(all_columns=True)
        return sum(_column_nbytes(column) for column in self.columns)

    def memory_info(self) -> Dict[str, Any]:
        index_entries = sum(
            len(bucket)
            for index in self.groups.values()
            for bucket in index.values()
        ) + sum(
            len(bucket)
            for index in self.delta_indices.values()
            for bucket in index.values()
        )
        column_bytes = self.column_bytes()
        # Real, not sampled: code columns + the rowid list's pointer
        # slots + the dictionary's decode payloads.
        dictionary_bytes = sys.getsizeof(self.dictionary.decode)
        for term in self.dictionary.decode:
            dictionary_bytes += sys.getsizeof(term)
            value = getattr(term, "value", None)
            if value is not None:
                dictionary_bytes += sys.getsizeof(value)
        estimated = (
            column_bytes
            + sys.getsizeof(self.rows)
            + dictionary_bytes
        )
        return {
            "facts": self.live_count,
            "delta": len(self.delta),
            "estimated_bytes": estimated,
            "index_entries": index_entries,
            "backend": self.backend,
            "column_bytes": column_bytes,
            "dictionary_terms": len(self.dictionary),
            "probes": self.probes,
            "probe_hits": self.probe_hits,
        }


# ---------------------------------------------------------------------------
# Batched plan execution.


class _RowView:
    """A zero-copy Mapping facade over one batch row — the object
    handed to expression evaluation, which only ever calls ``.get``
    (see :class:`~repro.vadalog.expressions.VarRef`)."""

    __slots__ = ("cols", "i")

    def __init__(self, cols: Dict[Variable, list]):
        self.cols = cols
        self.i = 0

    def get(self, key, default=None):
        col = self.cols.get(key)
        if col is None:
            return default
        return col[self.i]

    def __getitem__(self, key):
        col = self.cols.get(key)
        if col is None:
            raise KeyError(key)
        return col[self.i]

    def __contains__(self, key):
        return key in self.cols


class Batch:
    """Parallel columns for the rows surviving a plan prefix.

    ``cols`` maps every bound variable to a list of terms (length
    ``n``); ``premises`` — tracked only when provenance or an audit
    listener needs them — holds one fact column per completed scan
    step, in plan order.  ``scan_vars`` is the set of variables bound
    by scans so far: the substitution the legacy enumerator would
    carry at the same point, which drives the error-masking decision.
    """

    __slots__ = ("n", "cols", "premises", "scan_vars")

    def __init__(self, n: int, cols: Dict[Variable, list],
                 premises: Optional[List[list]]):
        self.n = n
        self.cols = cols
        self.premises = premises
        self.scan_vars: Set[Variable] = set()

    @classmethod
    def unit(cls, track_premises: bool) -> "Batch":
        return cls(1, {}, [] if track_premises else None)

    def premises_row(self, i: int) -> List[Fact]:
        if not self.premises:
            return []
        return [column[i] for column in self.premises]

    def take(self, keep: List[int]) -> "Batch":
        """A new batch holding only the rows at ``keep``."""
        cols = {
            var: [col[i] for i in keep] for var, col in self.cols.items()
        }
        premises = None
        if self.premises is not None:
            premises = [
                [col[i] for i in keep] for col in self.premises
            ]
        shrunk = Batch(len(keep), cols, premises)
        shrunk.scan_vars = self.scan_vars
        return shrunk


class MaskRecord:
    """One masked batch step: how many rows an eval step dropped
    because the raising expression could never reach the legacy
    finish step."""

    __slots__ = ("op", "detail", "error", "rows")

    def __init__(self, op: str, detail: str, error: str, rows: int):
        self.op = op
        self.detail = detail
        self.error = error
        self.rows = rows


def _legacy_reaches_finish(
    rule: Rule, store, scan_bound: Dict[Variable, Term]
) -> bool:
    """Would the legacy enumerator reach its finish step for a binding
    extending ``scan_bound``?  True iff the positive body joins to
    completion and every negation check passes — the decision between
    masking a row and falling back to the legacy path."""
    positives = [
        lit for lit in rule.body
        if not lit.negated and not lit.atom.is_external
    ]
    negatives = [lit for lit in rule.body if lit.negated]

    def negation_ok(substitution: Dict[Variable, Term]) -> bool:
        for literal in negatives:
            atom = literal.atom
            grounded = atom.substitute(substitution)
            if grounded.is_ground:
                if store.contains(grounded):
                    return False
            else:
                bound = bound_positions(atom, substitution)
                if any(
                    True for _ in store.lookup(atom.predicate, bound)
                ):
                    return False
        return True

    def extend(remaining, substitution) -> bool:
        if not remaining:
            return negation_ok(substitution)
        literal = remaining[0]
        atom = literal.atom
        bound = bound_positions(atom, substitution)
        for fact in store.lookup(atom.predicate, bound):
            extended = match_atom(atom, fact, substitution)
            if extended is None:
                continue
            if extend(remaining[1:], extended):
                return True
        return False

    return extend(positives, dict(scan_bound))


def _scan_bound_row(batch: Batch, i: int) -> Dict[Variable, Term]:
    cols = batch.cols
    return {var: cols[var][i] for var in batch.scan_vars}


def _expand_scan(
    step: ScanStep, store, batch: Batch, stats
) -> Batch:
    """Hash-join one positive literal against the whole batch."""
    probe = store.probe
    positions = step.key_positions
    delta_only = step.delta_only
    predicate = step.predicate
    source_rows: List[int] = []
    matched: List[Fact] = []
    if step.key_vars:
        key_cols = [
            (slot, batch.cols[var]) for slot, var in step.key_vars
        ]
        template = list(step.key_consts)
        for i in range(batch.n):
            for slot, col in key_cols:
                template[slot] = col[i]
            facts = probe(predicate, positions, tuple(template),
                          delta_only)
            if stats is not None:
                stats.probe_calls += 1
            if facts:
                if stats is not None:
                    stats.probe_hits += 1
                    stats.rows_scanned += len(facts)
                matched.extend(facts)
                source_rows.extend([i] * len(facts))
    else:
        facts = probe(predicate, positions, step.key_consts, delta_only)
        if stats is not None:
            stats.probe_calls += 1
            if facts:
                stats.probe_hits += 1
                stats.rows_scanned += len(facts)
        if facts:
            if batch.n == 1:
                matched = list(facts)
                source_rows = [0] * len(facts)
            else:
                for i in range(batch.n):
                    matched.extend(facts)
                    source_rows.extend([i] * len(facts))
    if step.repeats and matched:
        # A repeat is always a later occurrence of one of THIS step's
        # output variables (bound occurrences become key positions),
        # so the equality check stays within the matched fact.
        first_occurrence = {
            variable: position for position, variable in step.outputs
        }
        checks = [
            (position, first_occurrence[variable])
            for position, variable in step.repeats
        ]
        kept_rows: List[int] = []
        kept_facts: List[Fact] = []
        for fact, i in zip(matched, source_rows):
            terms = fact.terms
            ok = True
            for position, out_position in checks:
                if terms[position] != terms[out_position]:
                    ok = False
                    break
            if ok:
                kept_rows.append(i)
                kept_facts.append(fact)
        source_rows = kept_rows
        matched = kept_facts
    # Gather: replicate surviving upstream columns, then bind the
    # step's outputs straight out of the matched facts.
    cols = {
        var: [col[i] for i in source_rows]
        for var, col in batch.cols.items()
    }
    for position, variable in step.outputs:
        cols[variable] = [fact.terms[position] for fact in matched]
    premises = None
    if batch.premises is not None:
        premises = [
            [col[i] for i in source_rows] for col in batch.premises
        ]
        premises.append(matched)
    expanded = Batch(len(matched), cols, premises)
    expanded.scan_vars = batch.scan_vars | {
        variable for _, variable in step.outputs
    } | {variable for _, variable in step.key_vars}
    return expanded


def _apply_assign(
    step: AssignStep, rule: Rule, store, batch: Batch,
    masks: Optional[List[MaskRecord]],
) -> Batch:
    assignment = step.assignment
    expression = assignment.expression
    target = assignment.target
    bound_col = batch.cols.get(target)
    view = _RowView(batch.cols)
    keep: List[int] = []
    values: List[Term] = []
    masked = 0
    first_error = ""
    for i in range(batch.n):
        view.i = i
        try:
            value = evaluate_to_term(expression, view)
        except Exception as exc:  # noqa: BLE001 — masking decision
            if _legacy_reaches_finish(
                rule, store, _scan_bound_row(batch, i)
            ):
                raise PlanFallback(
                    f"assignment to {target.name} raised "
                    f"{type(exc).__name__}"
                ) from exc
            masked += 1
            if not first_error:
                first_error = type(exc).__name__
            continue
        if bound_col is not None:
            # Bound target degrades to an equality filter, exactly
            # like AssignStep / the legacy finish step.
            if bound_col[i] == value:
                keep.append(i)
        else:
            keep.append(i)
            values.append(value)
    if masked and masks is not None:
        masks.append(MaskRecord(
            "assign", step.describe(), first_error, masked
        ))
    if masked or len(keep) != batch.n:
        shrunk = batch.take(keep)
    else:
        shrunk = batch
        keep = None  # values already aligned
    if bound_col is None:
        shrunk.cols[target] = values
    return shrunk


def _apply_filter(
    step: FilterStep, rule: Rule, store, batch: Batch,
    masks: Optional[List[MaskRecord]],
) -> Batch:
    condition = step.condition
    view = _RowView(batch.cols)
    keep: List[int] = []
    masked = 0
    first_error = ""
    for i in range(batch.n):
        view.i = i
        try:
            ok = condition.holds(view)
        except Exception as exc:  # noqa: BLE001 — masking decision
            if _legacy_reaches_finish(
                rule, store, _scan_bound_row(batch, i)
            ):
                raise PlanFallback(
                    f"condition raised {type(exc).__name__}"
                ) from exc
            masked += 1
            if not first_error:
                first_error = type(exc).__name__
            continue
        if ok:
            keep.append(i)
    if masked and masks is not None:
        masks.append(MaskRecord(
            "filter", step.describe(), first_error, masked
        ))
    if len(keep) == batch.n:
        return batch
    return batch.take(keep)


def _apply_negation(
    step: NegationStep, store, batch: Batch, stats
) -> Batch:
    probe = store.probe
    positions = step.key_positions
    predicate = step.predicate
    keep: List[int] = []
    if step.key_vars:
        key_cols = [
            (slot, batch.cols[var]) for slot, var in step.key_vars
        ]
        template = list(step.key_consts)
        for i in range(batch.n):
            for slot, col in key_cols:
                template[slot] = col[i]
            facts = probe(predicate, positions, tuple(template))
            if stats is not None:
                stats.probe_calls += 1
                if facts:
                    stats.probe_hits += 1
                    stats.rows_scanned += len(facts)
            if not facts:
                keep.append(i)
    else:
        facts = probe(predicate, positions, step.key_consts)
        if stats is not None:
            stats.probe_calls += 1
            if facts:
                stats.probe_hits += 1
                stats.rows_scanned += len(facts)
        if facts:
            keep = []
        else:
            return batch
    if len(keep) == batch.n:
        return batch
    return batch.take(keep)


def execute_batch(
    plan: JoinPlan,
    rule: Rule,
    store,
    track_premises: bool = False,
    analysis=None,
    masks: Optional[List[MaskRecord]] = None,
) -> Batch:
    """Run one compiled plan over the store as a batch pipeline.

    Returns the final batch — one row per complete body match, columns
    for every bound variable (scan outputs plus assignment targets).
    Matches :meth:`JoinPlan.execute` row for row (modulo order); raises
    :class:`PlanFallback` exactly when the tuple-at-a-time path would
    (see the module docstring for the masking decision).  When
    ``analysis`` is given (EXPLAIN ANALYZE), per-step actuals are
    recorded batch-wise: ``invocations`` counts rows entering the
    step, ``rows_out`` rows leaving it.
    """
    batch = Batch.unit(track_premises)
    steps = plan.steps
    if analysis is not None:
        analysis.executions += 1
    for index, step in enumerate(steps):
        stats = None
        started = 0
        if analysis is not None:
            stats = analysis.steps[index]
            stats.invocations += batch.n
            started = perf_counter_ns()
        if type(step) is ScanStep:
            batch = _expand_scan(step, store, batch, stats)
        elif type(step) is AssignStep:
            batch = _apply_assign(step, rule, store, batch, masks)
        elif type(step) is FilterStep:
            batch = _apply_filter(step, rule, store, batch, masks)
        elif type(step) is NegationStep:
            batch = _apply_negation(step, store, batch, stats)
        else:  # pragma: no cover — future step kinds
            raise PlanFallback(
                f"batched execution does not support "
                f"{type(step).__name__}"
            )
        if analysis is not None:
            stats.wall_ns += perf_counter_ns() - started
            stats.rows_out += batch.n
        if not batch.n:
            return batch
    if analysis is not None:
        analysis.matches += batch.n
    return batch
