"""Provenance tracking and explanation trees.

Full explainability (desideratum *vi*) is one of the paper's selling
points: "each anonymization decision taken by Rule 2 is motivated by the
specific binding of its body".  We make that concrete by recording, for
every derived fact, the rule label and the premises (body facts) of the
derivation that produced it, and by rendering derivation trees.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..telemetry import state as _telemetry
from .atoms import Fact


class Derivation:
    """One derivation step: ``fact`` was produced by ``rule_label``
    from the given premises (body facts that matched)."""

    __slots__ = ("fact", "rule_label", "premises", "note")

    def __init__(
        self,
        fact: Fact,
        rule_label: Optional[str],
        premises: Sequence[Fact],
        note: Optional[str] = None,
    ):
        self.fact = fact
        self.rule_label = rule_label
        self.premises = tuple(premises)
        self.note = note

    def __repr__(self):
        return (
            f"Derivation({self.fact} <- {self.rule_label}"
            f"({len(self.premises)} premises))"
        )


class ProvenanceLog:
    """First-derivation-wins provenance store.

    Keeping only the first derivation per fact is enough for
    explanation (why-provenance) while staying linear in the number of
    derived facts.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._derivations: Dict[Fact, Derivation] = {}
        self._per_rule: Counter = Counter()

    def record(
        self,
        fact: Fact,
        rule_label: Optional[str],
        premises: Sequence[Fact],
        note: Optional[str] = None,
    ) -> None:
        if not self.enabled or fact in self._derivations:
            return
        self._derivations[fact] = Derivation(fact, rule_label, premises, note)
        self._per_rule[rule_label or "<unlabelled>"] += 1
        if _telemetry.enabled:
            _telemetry.registry.counter(
                "provenance.derivations", rule=rule_label or "<unlabelled>"
            ).inc()

    def absorb(self, other: "ProvenanceLog") -> None:
        """Fold another log's derivations in, preserving their
        insertion order and first-derivation-wins semantics.

        The parallel chase gives each stratum a private log and
        absorbs them in stratum order, so the merged log's iteration
        order is exactly what a serial run would have produced.  The
        sub-log already emitted its telemetry counters when it
        recorded, so this bypasses :meth:`record` to avoid double
        counting.
        """
        if not self.enabled:
            return
        for fact, derivation in other._derivations.items():
            if fact not in self._derivations:
                self._derivations[fact] = derivation
        self._per_rule.update(other._per_rule)

    def stats(self) -> Dict[str, object]:
        """Derivation counts, total and per rule label — the
        provenance-side view of which rules did the work."""
        return {
            "derivations": len(self._derivations),
            "estimated_bytes": self.estimated_bytes(),
            "by_rule": dict(
                sorted(self._per_rule.items(), key=lambda kv: kv[0])
            ),
        }

    def estimated_bytes(self, sample: int = 32) -> int:
        """Estimated size of the log itself: Derivation objects plus
        their premise tuples, sampled and scaled like
        :meth:`FactStore.memory_stats` (the facts themselves are
        owned by the store, not double-counted here)."""
        import sys
        from itertools import islice

        count = len(self._derivations)
        if count == 0:
            return 0
        sampled = list(
            islice(self._derivations.values(), max(sample, 1))
        )
        per_entry = sum(
            sys.getsizeof(d) + sys.getsizeof(d.premises)
            for d in sampled
        ) / len(sampled)
        return int(per_entry * count)

    def derivation_of(self, fact: Fact) -> Optional[Derivation]:
        return self._derivations.get(fact)

    def is_derived(self, fact: Fact) -> bool:
        return fact in self._derivations

    def derivations(self) -> Iterable[Derivation]:
        """Iterate all recorded derivations (first-derivation-wins
        order)."""
        return iter(self._derivations.values())

    def find(
        self,
        predicate: str,
        first_value: Optional[object] = None,
    ) -> List[Fact]:
        """Derived facts of a predicate, optionally filtered by their
        first term's constant value — the lookup the audit ledger uses
        to join a microdata row id to the ``riskOutput(I, R)`` fact the
        declarative risk programs derive for it."""
        matches = []
        for fact in self._derivations:
            if fact.predicate != predicate:
                continue
            if first_value is not None:
                if not fact.terms:
                    continue
                value = getattr(fact.terms[0], "value", None)
                if value != first_value:
                    continue
            matches.append(fact)
        return matches

    def rule_chain(self, fact: Fact, max_depth: int = 8) -> List[str]:
        """The rule labels along the first-premise derivation path of
        ``fact``, outermost rule first — the ``r7→r12`` backbone of an
        audit explanation, bounded like :meth:`explain`."""
        chain: List[str] = []
        seen = set()
        current: Optional[Fact] = fact
        while current is not None and len(chain) < max(0, max_depth):
            if current in seen:
                break
            seen.add(current)
            derivation = self._derivations.get(current)
            if derivation is None:
                break
            chain.append(derivation.rule_label or "<unlabelled>")
            current = derivation.premises[0] if derivation.premises \
                else None
        return chain

    def __len__(self):
        return len(self._derivations)

    # -- explanation rendering -------------------------------------------

    def explain(
        self,
        fact: Fact,
        max_depth: int = 12,
        max_nodes: int = 10_000,
    ) -> "ExplanationNode":
        """Build the derivation tree rooted at ``fact``.

        Facts without a recorded derivation are leaves (extensional
        input).  Both bounds are *hard*, whatever the provenance graph
        looks like: a fact that (re-)derives itself through recursion —
        directly (``f`` among its own premises) or through a cycle
        (``f ← g ← f``) — is cut at its second occurrence on a path and
        marked with a ``cycle`` note, ``max_depth`` caps every path,
        and ``max_nodes`` caps the whole tree (diamond-shaped sharing
        can otherwise blow up exponentially in the depth).
        """
        budget = [max(1, max_nodes)]
        return self._explain(fact, max(0, max_depth), set(), budget)

    def _explain(
        self, fact: Fact, depth: int, seen: set, budget: list
    ) -> "ExplanationNode":
        derivation = self._derivations.get(fact)
        budget[0] -= 1
        cyclic = fact in seen
        if (derivation is None or depth <= 0 or cyclic
                or budget[0] <= 0):
            node = ExplanationNode(
                fact, None, [], derivation is not None
            )
            if cyclic and derivation is not None:
                node.note = "cycle"
            return node
        seen = seen | {fact}
        children = []
        exhausted = False
        for premise in derivation.premises:
            if budget[0] <= 0:
                # Strict cap: stop before creating further nodes, so
                # the tree never exceeds max_nodes.
                exhausted = True
                break
            children.append(
                self._explain(premise, depth - 1, seen, budget)
            )
        node = ExplanationNode(fact, derivation.rule_label, children, False)
        node.note = "node budget exhausted" if exhausted \
            else derivation.note
        return node


class ExplanationNode:
    """A node in a rendered derivation tree."""

    def __init__(
        self,
        fact: Fact,
        rule_label: Optional[str],
        children: List["ExplanationNode"],
        truncated: bool,
    ):
        self.fact = fact
        self.rule_label = rule_label
        self.children = children
        self.truncated = truncated
        self.note: Optional[str] = None

    @property
    def is_extensional(self) -> bool:
        return self.rule_label is None and not self.truncated

    def render(self, indent: str = "") -> str:
        """Pretty-print the tree, one fact per line."""
        if self.truncated:
            suffix = "  [... derivation truncated]"
        elif self.rule_label is None:
            suffix = "  [input]"
        else:
            suffix = f"  [by {self.rule_label}]"
        if self.note:
            suffix += f"  ({self.note})"
        lines = [f"{indent}{self.fact}{suffix}"]
        for child in self.children:
            lines.append(child.render(indent + "  "))
        return "\n".join(lines)

    def __str__(self):
        return self.render()
