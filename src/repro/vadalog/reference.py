"""A deliberately *naive* reference evaluator — the conformance oracle.

This module answers one question for the differential-testing harness
(:mod:`repro.testing`): what model does the paper's semantics assign to
a program, computed with the dumbest strategy that can possibly work?

It re-implements the chase with none of the machinery that makes
:class:`~repro.vadalog.chase.ChaseEngine` fast, and none of its code:

* **no semi-naive deltas** — every round re-joins every rule against
  the full fact set from scratch;
* **no indices** — body matching scans the per-predicate fact list
  linearly, with its own unification code (it does *not* call
  :mod:`repro.vadalog.unification`, so index/matching bugs in the
  engine cannot mask themselves);
* **own stratification** — a textbook counting fixpoint instead of the
  engine's networkx condensation;
* **own homomorphism check** for the restricted chase;
* **no routing, no provenance, no telemetry, no externals**.

The only things shared with the production engine are the immutable
data model (:mod:`repro.vadalog.terms`, :mod:`repro.vadalog.atoms`,
:mod:`repro.vadalog.rules`) and expression evaluation — by design, so
that a disagreement between the two evaluators points at the chase
machinery, not at two different readings of a rule object.

Semantics implemented (mirroring the engine's documented contract):

* restricted chase for existentials (``termination="restricted"``),
  with the optional isomorphic-pattern blocking
  (``termination="isomorphic"``);
* stratified negation, negated atoms checked against the live store;
* monotonic aggregation with per-contributor retention and functional
  (replace-on-update) emission;
* EGDs enforced to their own fixpoint after every round: null
  unification rewrites the store, constant clashes are recorded as
  violations;
* the same ``max_rounds`` (per stratum) and ``max_facts`` budgets,
  raising :class:`~repro.errors.EvaluationError` with an ``exceeded``
  message so the conformance runner can classify budget exhaustion.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import EvaluationError, StratificationError
from .atoms import Atom, Fact
from .expressions import evaluate_to_term
from .rules import AGGREGATE_FUNCTIONS, EGD, Rule
from .terms import Constant, LabelledNull, NullFactory, Term, Variable


class ReferenceResult:
    """Outcome of a naive evaluation: plain facts, no bookkeeping."""

    def __init__(
        self,
        facts_by_pred: Dict[str, Set[Fact]],
        violations: List[Tuple[Term, Term]],
        rounds: int,
        nulls_introduced: int,
    ):
        self._facts_by_pred = facts_by_pred
        #: Constant-vs-constant EGD clashes as (left, right) term pairs.
        self.violations = violations
        self.rounds = rounds
        self.nulls_introduced = nulls_introduced

    def facts(self, predicate: Optional[str] = None):
        if predicate is not None:
            yield from self._facts_by_pred.get(predicate, ())
            return
        for bucket in self._facts_by_pred.values():
            yield from bucket

    def __len__(self):
        return sum(len(b) for b in self._facts_by_pred.values())


# ---------------------------------------------------------------------------
# Independent stratification (counting fixpoint, no graph library).


def _stratum_numbers(rules: Sequence[Rule]) -> Dict[str, int]:
    """Assign each predicate a stratum number: ``s(head) >= s(body)``,
    ``s(head) > s(body)`` through negation, and ``s(h1) == s(h2)`` for
    co-heads of one rule (they are derived by the same firing, so they
    must reach fixpoint together).  Classic iterate-until-stable
    algorithm; a number exceeding the predicate count proves a negative
    cycle."""
    predicates: Set[str] = set()
    for rule in rules:
        predicates.update(rule.head_predicates())
        for literal in rule.body:
            if not literal.atom.is_external:
                predicates.add(literal.atom.predicate)
    stratum = {pred: 0 for pred in predicates}
    limit = len(predicates) + 1
    changed = True
    while changed:
        changed = False
        for rule in rules:
            for literal in rule.body:
                if literal.atom.is_external:
                    continue
                body_pred = literal.atom.predicate
                for head in rule.head_predicates():
                    required = stratum[body_pred] + (
                        1 if literal.negated else 0
                    )
                    if stratum[head] < required:
                        stratum[head] = required
                        if stratum[head] > limit:
                            raise StratificationError(
                                f"negation cycle through {head!r}: the "
                                "program is not stratifiable"
                            )
                        changed = True
            heads = rule.head_predicates()
            if len(heads) > 1:
                top = max(stratum[head] for head in heads)
                for head in heads:
                    if stratum[head] < top:
                        stratum[head] = top
                        changed = True
    return stratum


def _reference_strata(rules: Sequence[Rule]) -> List[List[Rule]]:
    """Group rules bottom-up; a rule joins the stratum of its highest
    head predicate (same convention as the engine)."""
    if not rules:
        return []
    numbers = _stratum_numbers(rules)
    by_rank: Dict[int, List[Rule]] = {}
    for rule in rules:
        rank = max(numbers[pred] for pred in rule.head_predicates())
        by_rank.setdefault(rank, []).append(rule)
    return [by_rank[rank] for rank in sorted(by_rank)]


# ---------------------------------------------------------------------------
# Independent matching (linear scan, no substitution sharing tricks).


def _match(atom: Atom, fact: Fact, bindings: Dict[Variable, Term]):
    """Extend ``bindings`` so ``atom`` maps onto ``fact``; None on
    failure.  Anonymous variables match anything and never bind."""
    if atom.predicate != fact.predicate or atom.arity != fact.arity:
        return None
    extended = dict(bindings)
    for pattern, value in zip(atom.terms, fact.terms):
        if isinstance(pattern, Variable):
            if pattern.is_anonymous:
                continue
            bound = extended.get(pattern)
            if bound is None:
                extended[pattern] = value
            elif bound != value:
                return None
        elif pattern != value:
            return None
    return extended


def _negated_atom_has_match(
    atom: Atom, facts_by_pred: Dict[str, Set[Fact]]
) -> bool:
    """Negation-as-failure test mirroring the engine: ground positions
    must agree, variable positions (only anonymous ones can remain
    after safety validation) are independent wildcards."""
    for fact in facts_by_pred.get(atom.predicate, ()):
        if fact.arity != atom.arity:
            continue
        if all(
            isinstance(pattern, Variable) or pattern == value
            for pattern, value in zip(atom.terms, fact.terms)
        ):
            return True
    return False


# ---------------------------------------------------------------------------
# Independent homomorphism search for the restricted chase.


def _conjunction_has_image(
    atoms: Sequence[Fact],
    placeholders: Set[LabelledNull],
    facts_by_pred: Dict[str, Set[Fact]],
    null_to_null: bool,
) -> bool:
    """Joint homomorphic image check: placeholder nulls map to any
    term (consistently across the conjunction); other nulls are rigid,
    or — with ``null_to_null`` — may map to labelled nulls."""

    def search(index: int, mapping: Dict[LabelledNull, Term]) -> bool:
        if index == len(atoms):
            return True
        atom = atoms[index]
        for fact in facts_by_pred.get(atom.predicate, ()):
            if fact.arity != atom.arity:
                continue
            extension: Dict[LabelledNull, Term] = {}
            ok = True
            for pattern, value in zip(atom.terms, fact.terms):
                if isinstance(pattern, LabelledNull):
                    mappable = pattern in placeholders
                    soft = null_to_null and not mappable
                    if mappable or soft:
                        if soft and not isinstance(value, LabelledNull):
                            ok = False
                            break
                        prior = mapping.get(pattern, extension.get(pattern))
                        if prior is None:
                            extension[pattern] = value
                        elif prior != value:
                            ok = False
                            break
                        continue
                if pattern != value:
                    ok = False
                    break
            if not ok:
                continue
            mapping.update(extension)
            if search(index + 1, mapping):
                return True
            for null in extension:
                mapping.pop(null, None)
        return False

    return search(0, {})


# ---------------------------------------------------------------------------
# Aggregate bookkeeping (same contributor-monotone semantics, fresh code).


class _NaiveAggregate:
    """Per (rule, aggregate) contributor state with monotone retention."""

    def __init__(self, function: str):
        if function not in AGGREGATE_FUNCTIONS:
            raise EvaluationError(f"unknown aggregate {function!r}")
        self.function = function
        # group key -> contributor -> retained contribution
        self.groups: Dict[Tuple, Dict[Tuple, object]] = {}

    def contribute(self, group: Tuple, contributor: Tuple, value) -> None:
        if self.function == "mcount":
            value = 1
        elif self.function == "munion":
            if not isinstance(value, frozenset):
                value = frozenset([value])
        elif not isinstance(value, (int, float)):
            raise EvaluationError(
                f"{self.function} expects a numeric contribution, got "
                f"{value!r}"
            )
        bucket = self.groups.setdefault(group, {})
        previous = bucket.get(contributor)
        if previous is None:
            bucket[contributor] = value
        elif self.function in ("msum", "mmax", "mprod"):
            bucket[contributor] = max(previous, value)
        elif self.function == "mmin":
            bucket[contributor] = min(previous, value)
        elif self.function == "munion":
            bucket[contributor] = previous | value
        # mcount: nothing to update, contributor already counted once

    def value(self, group: Tuple):
        contributions = list(self.groups[group].values())
        if self.function == "mcount":
            return len(contributions)
        if self.function == "msum":
            return sum(contributions)
        if self.function == "mprod":
            product = 1.0
            for item in contributions:
                product *= item
            return product
        if self.function == "mmin":
            return min(contributions)
        if self.function == "mmax":
            return max(contributions)
        union: frozenset = frozenset()
        for item in contributions:
            union |= item
        return union


# ---------------------------------------------------------------------------
# The naive chase itself.


class NaiveChase:
    """Naive-evaluation oracle over a rule set.

    Unlike the engine this object is single-use per :meth:`run` call
    and keeps no state between runs.
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        egds: Sequence[EGD] = (),
        max_rounds: int = 10_000,
        max_facts: int = 5_000_000,
        termination: str = "restricted",
    ):
        if termination not in ("restricted", "isomorphic"):
            raise EvaluationError(
                f"unknown termination strategy {termination!r}"
            )
        for rule in rules:
            if any(lit.atom.is_external for lit in rule.body):
                raise EvaluationError(
                    "the reference oracle does not support external "
                    f"predicates (rule {rule.label or rule})"
                )
        self.rules = list(rules)
        self.egds = list(egds)
        self.max_rounds = max_rounds
        self.max_facts = max_facts
        self.termination = termination

    # -- public API ----------------------------------------------------

    def run(self, facts: Iterable[Fact] = ()) -> ReferenceResult:
        facts_by_pred: Dict[str, Set[Fact]] = {}
        for fact in facts:
            if not fact.is_ground:
                raise EvaluationError(f"non-ground input fact {fact}")
            facts_by_pred.setdefault(fact.predicate, set()).add(fact)

        null_factory = NullFactory()
        self._placeholder_label = 0
        violations: List[Tuple[Term, Term]] = []
        total_rounds = 0

        for stratum in _reference_strata(self.rules):
            # Aggregate state persists across the stratum's rounds
            # (contributions are never forgotten — Section 4.3).
            aggregate_states: Dict[Tuple[int, int], _NaiveAggregate] = {}
            emitted: Dict[Tuple[int, int, Tuple], Fact] = {}
            rounds = 0
            while True:
                rounds += 1
                total_rounds += 1
                if rounds > self.max_rounds:
                    raise EvaluationError(
                        f"reference chase exceeded {self.max_rounds} "
                        "rounds in one stratum"
                    )
                changed = False
                for rule_index, rule in enumerate(stratum):
                    if self._apply_rule(
                        rule,
                        rule_index,
                        facts_by_pred,
                        null_factory,
                        aggregate_states,
                        emitted,
                    ):
                        changed = True
                    if self._count(facts_by_pred) > self.max_facts:
                        raise EvaluationError(
                            f"reference chase exceeded {self.max_facts} "
                            "facts"
                        )
                if self.egds:
                    if self._enforce_egds(facts_by_pred, violations):
                        changed = True
                if not changed:
                    break

        if not self.rules and self.egds:
            self._enforce_egds(facts_by_pred, violations)

        return ReferenceResult(
            facts_by_pred, violations, total_rounds, null_factory.issued
        )

    # -- rule application ----------------------------------------------

    @staticmethod
    def _count(facts_by_pred: Dict[str, Set[Fact]]) -> int:
        return sum(len(bucket) for bucket in facts_by_pred.values())

    def _apply_rule(
        self,
        rule: Rule,
        rule_index: int,
        facts_by_pred: Dict[str, Set[Fact]],
        null_factory: NullFactory,
        aggregate_states: Dict[Tuple[int, int], _NaiveAggregate],
        emitted: Dict[Tuple[int, int, Tuple], Fact],
    ) -> bool:
        bindings = list(self._enumerate(rule, facts_by_pred))
        changed = False
        for substitution in bindings:
            if rule.has_aggregates:
                fired = self._fire_aggregate(
                    rule,
                    rule_index,
                    substitution,
                    facts_by_pred,
                    aggregate_states,
                    emitted,
                )
            else:
                fired = self._fire(
                    rule, substitution, facts_by_pred, null_factory
                )
            changed = fired or changed
        return changed

    def _enumerate(self, rule: Rule, facts_by_pred):
        """All body matches: a full nested-loop join, every round."""
        positives = [
            lit
            for lit in rule.body
            if not lit.negated and not lit.atom.is_external
        ]
        negatives = [lit for lit in rule.body if lit.negated]

        def join(index: int, bindings: Dict[Variable, Term]):
            if index == len(positives):
                yield dict(bindings)
                return
            atom = positives[index].atom
            for fact in list(facts_by_pred.get(atom.predicate, ())):
                extended = _match(atom, fact, bindings)
                if extended is not None:
                    yield from join(index + 1, extended)

        for substitution in join(0, {}):
            rejected = False
            for literal in negatives:
                grounded = literal.atom.substitute(substitution)
                if _negated_atom_has_match(grounded, facts_by_pred):
                    rejected = True
                    break
            if rejected:
                continue
            substitution = self._apply_assignments(rule, substitution)
            if substitution is None:
                continue
            if not self._check_conditions(rule, substitution):
                continue
            yield substitution

    def _apply_assignments(self, rule: Rule, substitution):
        for assignment in rule.assignments:
            value = evaluate_to_term(assignment.expression, substitution)
            bound = substitution.get(assignment.target)
            if bound is not None:
                if bound != value:
                    return None
            else:
                substitution[assignment.target] = value
        return substitution

    def _check_conditions(self, rule: Rule, substitution) -> bool:
        targets = {agg.target for agg in rule.aggregates}
        for condition in rule.conditions:
            if any(v in targets for v in condition.variables()):
                continue  # checked after aggregation
            if not condition.holds(substitution):
                return False
        return True

    def _fire(
        self, rule: Rule, substitution, facts_by_pred, null_factory
    ) -> bool:
        existentials = rule.existential_variables()
        if existentials:
            trial = dict(substitution)
            placeholders: Set[LabelledNull] = set()
            for variable in existentials:
                self._placeholder_label -= 1
                placeholder = LabelledNull(self._placeholder_label)
                trial[variable] = placeholder
                placeholders.add(placeholder)
            trial_atoms = [atom.substitute(trial) for atom in rule.head]
            if _conjunction_has_image(
                trial_atoms,
                placeholders,
                facts_by_pred,
                null_to_null=(self.termination == "isomorphic"),
            ):
                return False
            final = dict(substitution)
            for variable in existentials:
                final[variable] = null_factory.fresh()
            head_atoms = [atom.substitute(final) for atom in rule.head]
        else:
            head_atoms = [
                atom.substitute(substitution) for atom in rule.head
            ]
        changed = False
        for atom in head_atoms:
            if not atom.is_ground:
                raise EvaluationError(
                    f"head atom {atom} not ground after substitution in "
                    f"rule {rule.label or rule}"
                )
            bucket = facts_by_pred.setdefault(atom.predicate, set())
            if atom not in bucket:
                bucket.add(atom)
                changed = True
        return changed

    def _fire_aggregate(
        self,
        rule: Rule,
        rule_index: int,
        substitution,
        facts_by_pred,
        aggregate_states,
        emitted,
    ) -> bool:
        targets = {agg.target for agg in rule.aggregates}
        group_vars = sorted(
            (v for v in rule.head_variables() if v not in targets),
            key=lambda v: v.name,
        )
        try:
            group_key = tuple(substitution[v] for v in group_vars)
        except KeyError as exc:
            raise EvaluationError(
                f"group-by variable unbound in aggregate rule "
                f"{rule.label or rule}: {exc}"
            ) from exc
        substitution = dict(substitution)
        for agg_index, agg in enumerate(rule.aggregates):
            state = aggregate_states.get((rule_index, agg_index))
            if state is None:
                state = _NaiveAggregate(agg.function)
                aggregate_states[(rule_index, agg_index)] = state
            contributor = tuple(substitution[v] for v in agg.contributors)
            contribution = (
                agg.argument.evaluate(substitution)
                if agg.argument is not None
                else 1
            )
            state.contribute(group_key, contributor, contribution)
            substitution[agg.target] = Constant(state.value(group_key))

        for condition in rule.conditions:
            if any(v in targets for v in condition.variables()):
                if not condition.holds(substitution):
                    return False

        changed = False
        for atom_index, atom in enumerate(
            atom.substitute(substitution) for atom in rule.head
        ):
            if not atom.is_ground:
                raise EvaluationError(
                    f"aggregate head atom {atom} not ground in rule "
                    f"{rule.label or rule}"
                )
            emit_key = (rule_index, atom_index, group_key)
            previous = emitted.get(emit_key)
            if previous == atom:
                continue
            if previous is not None:
                facts_by_pred.get(previous.predicate, set()).discard(
                    previous
                )
            bucket = facts_by_pred.setdefault(atom.predicate, set())
            if atom not in bucket:
                bucket.add(atom)
                changed = True
            emitted[emit_key] = atom
        return changed

    # -- EGD enforcement ------------------------------------------------

    def _enforce_egds(self, facts_by_pred, violations) -> bool:
        """Run the EGDs to their own fixpoint; returns whether the
        store changed.  Null unification rewrites the whole store."""
        reported = {
            (left, right) for left, right in violations
        }
        any_change = False
        progress = True
        while progress:
            progress = False
            for egd in self.egds:
                positives = [lit for lit in egd.body if not lit.negated]

                def join(index: int, bindings):
                    if index == len(positives):
                        yield bindings
                        return
                    atom = positives[index].atom
                    for fact in list(
                        facts_by_pred.get(atom.predicate, ())
                    ):
                        extended = _match(atom, fact, bindings)
                        if extended is not None:
                            yield from join(index + 1, extended)

                restart = False
                for bindings in join(0, {}):
                    for left_var, right_var in egd.equalities:
                        left = bindings.get(left_var)
                        right = bindings.get(right_var)
                        if left is None or right is None or left == right:
                            continue
                        if isinstance(left, LabelledNull):
                            self._rewrite_null(facts_by_pred, left, right)
                            progress = any_change = restart = True
                        elif isinstance(right, LabelledNull):
                            self._rewrite_null(facts_by_pred, right, left)
                            progress = any_change = restart = True
                        else:
                            if (left, right) not in reported:
                                reported.add((left, right))
                                violations.append((left, right))
                    if restart:
                        break  # store mutated: restart enumeration
                if restart:
                    break
        return any_change

    @staticmethod
    def _rewrite_null(facts_by_pred, null: LabelledNull, replacement: Term):
        for predicate, bucket in facts_by_pred.items():
            affected = [fact for fact in bucket if null in fact.terms]
            for fact in affected:
                bucket.discard(fact)
                bucket.add(
                    Atom(
                        fact.predicate,
                        tuple(
                            replacement if term == null else term
                            for term in fact.terms
                        ),
                    )
                )


def naive_chase(
    rules: Sequence[Rule],
    facts: Iterable[Fact] = (),
    egds: Sequence[EGD] = (),
    max_rounds: int = 10_000,
    max_facts: int = 5_000_000,
    termination: str = "restricted",
) -> ReferenceResult:
    """One-call naive evaluation (the conformance oracle entry point)."""
    return NaiveChase(
        rules,
        egds=egds,
        max_rounds=max_rounds,
        max_facts=max_facts,
        termination=termination,
    ).run(facts)
