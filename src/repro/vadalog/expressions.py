"""Expression AST for rule conditions and assignments.

Vadalog rule bodies may contain algebraic conditions (``R > T``),
assignments (``R = 1 / F``), case expressions
(``R = case F < k then 1 else 0``) and calls to scalar builtins.  This
module provides a small immutable expression tree with an evaluator that
resolves variables against a substitution (a dict mapping
:class:`~repro.vadalog.terms.Variable` to ground terms).

Aggregate calls (``msum``, ``mcount``, ...) are *not* evaluated here —
they are detected at parse time and compiled into
:class:`~repro.vadalog.rules.AggregateSpec` objects handled by the chase.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Mapping, Sequence

from ..errors import EvaluationError
from .terms import Constant, LabelledNull, Term, Variable, unwrap


class Expression:
    """Abstract base class for expression nodes."""

    __slots__ = ()

    def evaluate(self, bindings: Mapping[Variable, Term]) -> Any:
        raise NotImplementedError

    def variables(self):
        """Yield every variable occurring in the expression."""
        raise NotImplementedError


class Lit(Expression):
    """A literal Python value (number, string, boolean)."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def evaluate(self, bindings):
        return self.value

    def variables(self):
        return iter(())

    def __repr__(self):
        return f"Lit({self.value!r})"


class VarRef(Expression):
    """A reference to a rule variable; evaluates to its bound value."""

    __slots__ = ("variable",)

    def __init__(self, variable: Variable):
        self.variable = variable

    def evaluate(self, bindings):
        term = bindings.get(self.variable)
        if term is None:
            raise EvaluationError(
                f"variable {self.variable} is unbound in expression"
            )
        if isinstance(term, LabelledNull):
            return term
        return unwrap(term)

    def variables(self):
        yield self.variable

    def __repr__(self):
        return f"VarRef({self.variable.name})"


def _nan_safe_div(a, b):
    if b == 0:
        raise EvaluationError("division by zero in rule expression")
    return a / b


_BINARY_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _nan_safe_div,
    "%": lambda a, b: a % b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "&&": lambda a, b: bool(a) and bool(b),
    "||": lambda a, b: bool(a) or bool(b),
    "in": lambda a, b: a in b,
}


class BinOp(Expression):
    """A binary operation over two sub-expressions."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _BINARY_OPS:
            raise EvaluationError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, bindings):
        left = self.left.evaluate(bindings)
        right = self.right.evaluate(bindings)
        # Comparisons against labelled nulls: a null only equals itself.
        if isinstance(left, LabelledNull) or isinstance(right, LabelledNull):
            if self.op == "==":
                return left == right
            if self.op == "!=":
                return left != right
            raise EvaluationError(
                f"cannot apply {self.op!r} to labelled null operand"
            )
        try:
            return _BINARY_OPS[self.op](left, right)
        except TypeError as exc:
            raise EvaluationError(
                f"type error evaluating {left!r} {self.op} {right!r}: {exc}"
            ) from exc

    def variables(self):
        yield from self.left.variables()
        yield from self.right.variables()

    def __repr__(self):
        return f"BinOp({self.op!r}, {self.left!r}, {self.right!r})"


class UnaryOp(Expression):
    """Unary minus or logical not."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expression):
        if op not in ("-", "not"):
            raise EvaluationError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def evaluate(self, bindings):
        value = self.operand.evaluate(bindings)
        if self.op == "-":
            return -value
        return not bool(value)

    def variables(self):
        return self.operand.variables()

    def __repr__(self):
        return f"UnaryOp({self.op!r}, {self.operand!r})"


class Case(Expression):
    """``case <cond> then <a> else <b>`` (Algorithms 4, 6, 8)."""

    __slots__ = ("condition", "then_value", "else_value")

    def __init__(self, condition, then_value, else_value):
        self.condition = condition
        self.then_value = then_value
        self.else_value = else_value

    def evaluate(self, bindings):
        if self.condition.evaluate(bindings):
            return self.then_value.evaluate(bindings)
        return self.else_value.evaluate(bindings)

    def variables(self):
        yield from self.condition.variables()
        yield from self.then_value.variables()
        yield from self.else_value.variables()

    def __repr__(self):
        return (
            f"Case({self.condition!r}, {self.then_value!r}, "
            f"{self.else_value!r})"
        )


class TupleExpr(Expression):
    """A tuple constructor ``(a, b)`` — used for name-value pairs in
    ``munion((A, V), <I>)`` (Algorithm 2, Rule 1)."""

    __slots__ = ("items",)

    def __init__(self, items: Sequence[Expression]):
        self.items = tuple(items)

    def evaluate(self, bindings):
        return tuple(item.evaluate(bindings) for item in self.items)

    def variables(self):
        for item in self.items:
            yield from item.variables()

    def __repr__(self):
        return f"TupleExpr({list(self.items)!r})"


class FuncCall(Expression):
    """A call to a registered scalar builtin function."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expression]):
        self.name = name
        self.args = tuple(args)

    def evaluate(self, bindings):
        func = SCALAR_FUNCTIONS.get(self.name)
        if func is None:
            raise EvaluationError(f"unknown scalar function {self.name!r}")
        values = [arg.evaluate(bindings) for arg in self.args]
        try:
            return func(*values)
        except EvaluationError:
            raise
        except Exception as exc:  # surface builtin failures with context
            raise EvaluationError(
                f"error in builtin {self.name}({values!r}): {exc}"
            ) from exc

    def variables(self):
        for arg in self.args:
            yield from arg.variables()

    def __repr__(self):
        return f"FuncCall({self.name!r}, {list(self.args)!r})"


def _size(value):
    return len(value)


def _contains(collection, item):
    return item in collection


def _is_null(value):
    return isinstance(value, LabelledNull)


def _collection_get(collection, key):
    """``VSet[A]`` — access a name-value collection by attribute name.

    Collections built by ``munion((A, V))`` are frozensets of
    ``(name, value)`` pairs; this helper extracts the value for a name.
    """
    if isinstance(collection, Mapping):
        return collection[key]
    for entry in collection:
        if isinstance(entry, tuple) and len(entry) == 2 and entry[0] == key:
            return entry[1]
    raise EvaluationError(f"no entry named {key!r} in collection")


def _collection_project(collection, keys):
    """``VSet[KeySet]`` — restrict a name-value collection to names in
    ``keys`` (the AnonSet filter of Algorithm 3)."""
    keys = set(keys)
    return frozenset(
        entry
        for entry in collection
        if isinstance(entry, tuple) and len(entry) == 2 and entry[0] in keys
    )


def _subset(a, b):
    return frozenset(a) < frozenset(b)


def _subseteq(a, b):
    return frozenset(a) <= frozenset(b)


#: Registry of scalar builtins usable in expressions.  Extensible: the
#: externals module registers additional entries.
SCALAR_FUNCTIONS: Dict[str, Callable] = {
    "abs": abs,
    "min": min,
    "max": max,
    "sqrt": math.sqrt,
    "log": math.log,
    "exp": math.exp,
    "floor": math.floor,
    "ceil": math.ceil,
    "round": round,
    "size": _size,
    "contains": _contains,
    "is_null": _is_null,
    "get": _collection_get,
    "project": _collection_project,
    "subset": _subset,
    "subseteq": _subseteq,
    "concat": lambda *parts: "".join(str(p) for p in parts),
    "lower": lambda s: s.lower(),
    "upper": lambda s: s.upper(),
}


def register_scalar_function(name: str, func: Callable) -> None:
    """Register (or override) a scalar builtin available to expressions."""
    SCALAR_FUNCTIONS[name] = func


def evaluate_to_term(expression: Expression, bindings) -> Term:
    """Evaluate an expression and wrap the result into a ground term."""
    value = expression.evaluate(bindings)
    if isinstance(value, Term):
        return value
    return Constant(value)
