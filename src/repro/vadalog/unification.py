"""Matching and homomorphism utilities.

The chase needs two operations:

* **matching** a body atom (with variables) against a ground fact,
  extending a substitution;
* **homomorphism checking** — does a (possibly null-carrying) head
  instantiation already have a homomorphic image in the store?  The
  *restricted* chase only fires an existential rule when the answer is
  no, which is the standard termination device for warded programs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .atoms import Atom, Fact
from .database import FactStore
from .terms import LabelledNull, Term, Variable

#: A substitution maps variables to ground terms.
Substitution = Dict[Variable, Term]


def match_atom(
    atom: Atom, fact: Fact, bindings: Substitution
) -> Optional[Substitution]:
    """Try to extend ``bindings`` so that ``atom`` maps onto ``fact``.

    Returns the extended substitution, or None when the match fails.
    The input substitution is never mutated.
    """
    if atom.predicate != fact.predicate or atom.arity != fact.arity:
        return None
    extended: Optional[Substitution] = None
    for pattern, value in zip(atom.terms, fact.terms):
        if isinstance(pattern, Variable):
            if pattern.is_anonymous:
                continue
            bound = (extended or bindings).get(pattern)
            if bound is None:
                if extended is None:
                    extended = dict(bindings)
                extended[pattern] = value
            elif bound != value:
                return None
        elif pattern != value:
            return None
    if extended is None:
        extended = dict(bindings)
    return extended


def bound_positions(atom: Atom, bindings: Substitution) -> Dict[int, Term]:
    """Positions of ``atom`` whose value is already determined by the
    current substitution (or is a constant) — used for index lookups."""
    determined: Dict[int, Term] = {}
    for position, term in enumerate(atom.terms):
        if isinstance(term, Variable):
            value = bindings.get(term)
            if value is not None:
                determined[position] = value
        else:
            determined[position] = term
    return determined


def probe_layout(atom: Atom, known: Iterable[Variable]):
    """Static split of an atom's positions for a compiled plan step.

    Given the set of variables guaranteed bound *before* the step runs,
    classify every position once, at compile time, instead of
    re-deriving :func:`bound_positions` per partial binding:

    * ``key_positions`` / ``key_sources`` — positions probed through a
      (composite) index; each source is either a constant :class:`Term`
      or an already-bound :class:`Variable` to read from the
      substitution at run time;
    * ``outputs`` — ``(position, variable)`` pairs the step binds (the
      first occurrence of each new variable);
    * ``repeats`` — later occurrences of an output variable within the
      same atom, checked for equality against the freshly bound value.

    Anonymous variables constrain nothing and appear nowhere.
    """
    known = set(known)
    key_positions: List[int] = []
    key_sources: list = []
    outputs: List[Tuple[int, Variable]] = []
    repeats: List[Tuple[int, Variable]] = []
    fresh: set = set()
    for position, term in enumerate(atom.terms):
        if isinstance(term, Variable):
            if term.is_anonymous:
                continue
            if term in known:
                key_positions.append(position)
                key_sources.append(term)
            elif term in fresh:
                repeats.append((position, term))
            else:
                fresh.add(term)
                outputs.append((position, term))
        else:
            key_positions.append(position)
            key_sources.append(term)
    return (
        tuple(key_positions),
        tuple(key_sources),
        tuple(outputs),
        tuple(repeats),
    )


def is_homomorphic_image(
    atom: Fact,
    store: FactStore,
    mappable: Optional[set] = None,
    null_to_null: bool = False,
) -> bool:
    """Check whether a ground, possibly null-carrying atom has a
    homomorphic image among the stored facts.

    A homomorphism may map each *mappable* labelled null of ``atom`` to
    any term, consistently; constants must map to themselves.
    ``mappable=None`` means every null is mappable.  With
    ``null_to_null=True`` the remaining (body-bound) nulls become
    *soft*: they may map to any labelled null, consistently — the
    isomorphic-pattern blocking Vadalog uses to terminate recursive
    existentials.
    """
    return conjunction_has_image([atom], store, mappable, null_to_null)


def conjunction_has_image(
    atoms: Iterable[Fact],
    store: FactStore,
    mappable: Optional[set] = None,
    null_to_null: bool = False,
) -> bool:
    """Check whether a conjunction of ground head atoms has a *joint*
    homomorphic image (mappable nulls mapped consistently across
    atoms; other terms fixed, or — with ``null_to_null`` — body nulls
    mapped to nulls).

    Used when an existential rule has multiple head atoms sharing an
    existential variable (e.g. Rule 2 of Algorithm 6:
    ``exists Z Comb(Z, I), In(A, Z)``).
    """
    atoms = list(atoms)
    if len(atoms) == 1 and store.contains(atoms[0]):
        return True
    return _joint_image_search(atoms, store, {}, 0, mappable, null_to_null)


def _joint_image_search(
    atoms: List[Fact],
    store: FactStore,
    mapping: Dict[LabelledNull, Term],
    index: int,
    mappable: Optional[set],
    null_to_null: bool,
) -> bool:
    if index == len(atoms):
        return True
    atom = atoms[index]
    fixed: Dict[int, Term] = {}
    # position -> (null, nulls_only constraint)
    open_positions: List[Tuple[int, LabelledNull, bool]] = []
    for position, term in enumerate(atom.terms):
        if isinstance(term, LabelledNull):
            fully_mappable = mappable is None or term in mappable
            soft = null_to_null and not fully_mappable
            if fully_mappable or soft:
                image = mapping.get(term)
                if image is not None:
                    fixed[position] = image
                else:
                    open_positions.append((position, term, soft))
                continue
        fixed[position] = term
    for candidate in store.lookup(atom.predicate, fixed):
        extension: Dict[LabelledNull, Term] = {}
        compatible = True
        for position, null, soft in open_positions:
            value = candidate.terms[position]
            if soft and not isinstance(value, LabelledNull):
                compatible = False
                break
            prior = extension.get(null)
            if prior is None:
                extension[null] = value
            elif prior != value:
                compatible = False
                break
        if not compatible:
            continue
        mapping.update(extension)
        if _joint_image_search(
            atoms, store, mapping, index + 1, mappable, null_to_null
        ):
            return True
        for null in extension:
            mapping.pop(null, None)
    return False


def apply_substitution(atom: Atom, bindings: Substitution) -> Atom:
    """Alias of :meth:`Atom.substitute` kept for evaluator readability."""
    return atom.substitute(bindings)
