"""Tokenizer for the Vadalog-like concrete syntax.

Token kinds:

* ``IDENT`` — identifiers.  By Datalog convention an identifier starting
  with an uppercase letter is a variable; lowercase-start identifiers
  are constants or predicate names (disambiguated by the parser).
* ``HASH_IDENT`` — ``#``-prefixed external predicate names.
* ``NUMBER`` (int or float), ``STRING`` (double- or single-quoted).
* Punctuation and operators: ``( ) [ ] { } , . :- -> = == != < <= > >=
  + - * / % && || < > @ :``.
* Comments run from ``%`` or ``//`` to end of line.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional

from ...errors import ParseError


class Token(NamedTuple):
    kind: str
    value: str
    line: int
    column: int


_PUNCT_TWO = {":-", "->", "==", "!=", "<=", ">=", "&&", "||"}
_PUNCT_ONE = set("()[]{},.=<>+-*/%@:!")


def tokenize(source: str) -> List[Token]:
    """Tokenize Vadalog source text, raising :class:`ParseError` on
    unexpected characters."""
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message: str) -> ParseError:
        return ParseError(message, line=line, column=column)

    while index < length:
        char = source[index]

        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue

        # comments
        if char == "%" or source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue

        start_line, start_column = line, column

        # strings
        if char in "\"'":
            quote = char
            index += 1
            column += 1
            buffer = []
            while index < length and source[index] != quote:
                if source[index] == "\\" and index + 1 < length:
                    escape = source[index + 1]
                    mapping = {"n": "\n", "t": "\t", quote: quote, "\\": "\\"}
                    buffer.append(mapping.get(escape, escape))
                    index += 2
                    column += 2
                    continue
                if source[index] == "\n":
                    raise error("unterminated string literal")
                buffer.append(source[index])
                index += 1
                column += 1
            if index >= length:
                raise error("unterminated string literal")
            index += 1
            column += 1
            tokens.append(
                Token("STRING", "".join(buffer), start_line, start_column)
            )
            continue

        # numbers (ASCII digits only: str.isdigit also accepts
        # superscripts and other unicode digits that int() rejects)
        def _is_digit(c: str) -> bool:
            return "0" <= c <= "9"

        if _is_digit(char) or (
            char == "."
            and index + 1 < length
            and _is_digit(source[index + 1])
        ):
            end = index
            seen_dot = False
            while end < length and (
                _is_digit(source[end])
                or (source[end] == "." and not seen_dot)
            ):
                if source[end] == ".":
                    # a trailing '.' is the statement terminator, not a
                    # decimal point, unless followed by a digit
                    if end + 1 >= length or not _is_digit(source[end + 1]):
                        break
                    seen_dot = True
                end += 1
            text = source[index:end]
            column += end - index
            index = end
            tokens.append(Token("NUMBER", text, start_line, start_column))
            continue

        # external predicate names
        if char == "#":
            end = index + 1
            while end < length and (
                source[end].isalnum() or source[end] == "_"
            ):
                end += 1
            if end == index + 1:
                raise error("'#' must be followed by an identifier")
            text = source[index:end]
            column += end - index
            index = end
            tokens.append(Token("HASH_IDENT", text, start_line, start_column))
            continue

        # identifiers
        if char.isalpha() or char == "_":
            end = index
            while end < length and (
                source[end].isalnum() or source[end] == "_"
            ):
                end += 1
            text = source[index:end]
            column += end - index
            index = end
            tokens.append(Token("IDENT", text, start_line, start_column))
            continue

        # two-character punctuation
        two = source[index : index + 2]
        if two in _PUNCT_TWO:
            tokens.append(Token(two, two, start_line, start_column))
            index += 2
            column += 2
            continue

        if char in _PUNCT_ONE:
            tokens.append(Token(char, char, start_line, start_column))
            index += 1
            column += 1
            continue

        raise error(f"unexpected character {char!r}")

    tokens.append(Token("EOF", "", line, column))
    return tokens
