"""Recursive-descent parser for the Vadalog-like concrete syntax.

Both rule directions are accepted, so the paper's algorithms can be
transcribed almost verbatim:

* Datalog style:  ``head :- body.``
* Paper style:    ``body -> head.``

Statements:

* facts:           ``att("I&G", "Area").``
* rules:           ``cat(M, A, C) :- att(M, A), expBase(A1, C),
  #similar(A, A1).``
* EGDs:            ``C1 = C2 :- cat(M, A, C1), cat(M, A, C2).``
  (equality head)
* annotations:     ``@label("rule-2").`` applies to the next rule;
  ``@module("name").``, ``@input(...)``, ``@output(...)`` are stored as
  program metadata.

Variables start with an uppercase letter (or ``_``); lowercase-start
identifiers are symbolic constants; numbers and quoted strings are
constants.  Bracket lists ``[a, b]`` are set constants (frozensets).
Aggregates follow the paper's notation: ``R = msum(W, <I>)``; an
aggregate may also appear directly in a comparison
(``msum(W, <Z>) > 0.5``), in which case a fresh variable is introduced.

Head variables absent from the body are existentially quantified
(labelled nulls at chase time); an explicit ``exists(Z1, Z2)`` prefix
before the head is also accepted and checked for consistency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ...errors import ParseError, SafetyError
from ..atoms import Annotation, Assignment, Atom, Condition, Literal
from ..expressions import (
    BinOp,
    Case,
    Expression,
    FuncCall,
    Lit,
    SCALAR_FUNCTIONS,
    TupleExpr,
    UnaryOp,
    VarRef,
)
from ..rules import AGGREGATE_FUNCTIONS, AggregateSpec, EGD, Rule
from ..terms import Constant, Term, Variable
from .lexer import Token, tokenize


class _AggCall(Expression):
    """Parse-time node for an aggregate call; desugared into an
    :class:`AggregateSpec` before rule construction."""

    __slots__ = ("function", "argument", "contributors")

    def __init__(self, function, argument, contributors):
        self.function = function
        self.argument = argument
        self.contributors = contributors

    def evaluate(self, bindings):  # pragma: no cover - never evaluated
        raise SafetyError("aggregate call must be desugared before use")

    def variables(self):
        if self.argument is not None:
            yield from self.argument.variables()
        yield from self.contributors


class ParsedProgram:
    """Raw parse result: facts, rules, EGDs and annotations."""

    def __init__(self):
        self.facts: List[Atom] = []
        self.rules: List[Rule] = []
        self.egds: List[EGD] = []
        self.annotations: List[Annotation] = []


#: Maximum expression nesting the recursive-descent parser accepts.
#: Each paren/unary level costs ~8 Python frames through the precedence
#: chain, so the bound must stay well under the interpreter recursion
#: limit (1000 frames) for the guard to fire as a clean
#: :class:`ParseError` rather than a ``RecursionError``.
MAX_EXPRESSION_DEPTH = 64


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.position = 0
        self._fresh_counter = 0
        self._pending_label: Optional[str] = None
        self._expression_depth = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "EOF":
            self.position += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind!r}, found {token.kind!r} ({token.value!r})",
                line=token.line,
                column=token.column,
            )
        return self._advance()

    def _check(self, kind: str) -> bool:
        return self._peek().kind == kind

    def _match(self, kind: str) -> bool:
        if self._check(kind):
            self._advance()
            return True
        return False

    def _fresh_variable(self) -> Variable:
        self._fresh_counter += 1
        return Variable(f"_Agg{self._fresh_counter}")

    # -- entry point ---------------------------------------------------------

    def parse(self) -> ParsedProgram:
        program = ParsedProgram()
        while not self._check("EOF"):
            if self._check("@"):
                self._parse_annotation(program)
                continue
            self._parse_statement(program)
        return program

    # -- statements ------------------------------------------------------------

    def _parse_annotation(self, program: ParsedProgram) -> None:
        at_token = self._expect("@")
        name = self._expect("IDENT").value
        args: List = []
        if self._match("("):
            while not self._check(")"):
                token = self._advance()
                if token.kind in ("STRING", "IDENT"):
                    args.append(token.value)
                elif token.kind == "NUMBER":
                    args.append(_parse_number(token.value))
                else:
                    raise ParseError(
                        f"unexpected annotation argument {token.value!r}",
                        line=token.line,
                        column=token.column,
                    )
                if not self._match(","):
                    break
            self._expect(")")
        self._expect(".")
        if name == "label" and args:
            self._pending_label = str(args[0])
        else:
            program.annotations.append(
                Annotation(
                    name,
                    tuple(args),
                    line=at_token.line,
                    column=at_token.column,
                )
            )

    def _parse_statement(self, program: ParsedProgram) -> None:
        """Parse a fact, a rule (either direction) or an EGD."""
        start = self._peek()
        items, saw_arrow = self._parse_item_sequence()
        if saw_arrow == "none":
            # A bare conjunction terminated by '.'; only a single ground
            # atom (a fact) is legal.
            if len(items) == 1 and isinstance(items[0], Atom):
                atom = items[0]
                if not atom.is_ground:
                    raise ParseError(
                        f"fact {atom} contains variables",
                        line=atom.line,
                        column=atom.column,
                    )
                program.facts.append(atom)
                return
            raise ParseError(
                "statement is neither a fact nor a rule (missing ':-' "
                "or '->')",
                line=start.line,
                column=start.column,
            )
        if saw_arrow == ":-":
            head_items, body_items = items
        else:  # '->' : body first
            body_items, head_items = items
        self._build_rule(
            program,
            head_items,
            body_items,
            line=start.line,
            column=start.column,
        )

    def _parse_item_sequence(self):
        """Parse items up to '.', splitting on ':-' or '->' if present."""
        first: List = []
        second: List = []
        current = first
        arrow = "none"
        while True:
            current.extend(self._parse_body_item())
            if self._match(","):
                continue
            if self._check(":-") or self._check("->"):
                if arrow != "none":
                    token = self._peek()
                    raise ParseError(
                        "rule has two arrows",
                        line=token.line,
                        column=token.column,
                    )
                arrow = self._advance().kind
                current = second
                continue
            self._expect(".")
            break
        if arrow == "none":
            return first, "none"
        return (first, second), arrow

    # -- rule assembly -----------------------------------------------------------

    def _build_rule(
        self, program, head_items, body_items, line=None, column=None
    ) -> None:
        label = self._pending_label
        self._pending_label = None

        # Head: atoms, possibly an exists(...) marker, or equalities (EGD)
        explicit_existentials: Set[Variable] = set()
        head_atoms: List[Atom] = []
        head_equalities: List[Tuple[Variable, Variable]] = []
        for item in head_items:
            if isinstance(item, Atom):
                if _is_exists_marker(item):
                    explicit_existentials.update(item.terms)
                    continue
                head_atoms.append(item)
            elif isinstance(item, Assignment) and isinstance(
                item.expression, VarRef
            ):
                head_equalities.append(
                    (item.target, item.expression.variable)
                )
            else:
                raise ParseError(
                    f"unexpected head element {item!r}; heads contain "
                    "atoms or variable equalities (EGD)",
                    line=getattr(item, "line", None) or line,
                    column=getattr(item, "column", None) or column,
                )

        body_literals: List[Literal] = []
        conditions: List[Condition] = []
        assignments: List[Assignment] = []
        aggregates: List[AggregateSpec] = []
        for item in body_items:
            if isinstance(item, Atom):
                # ``exists(Z)`` markers also appear on the body side of a
                # Datalog-direction rule (``h(X, Z) :- exists(Z) q(X).``)
                # and in paper-direction bodies; treat them as existential
                # declarations, not as a phantom ``exists`` body atom.
                if _is_exists_marker(item):
                    explicit_existentials.update(item.terms)
                    continue
                body_literals.append(Literal(item))
            elif isinstance(item, Literal):
                body_literals.append(item)
            elif isinstance(item, Assignment):
                desugared = self._desugar(item.expression, aggregates)
                if isinstance(desugared, _AggSpecMarker):
                    aggregates.append(
                        AggregateSpec(
                            item.target,
                            desugared.function,
                            desugared.argument,
                            desugared.contributors,
                        )
                    )
                else:
                    assignments.append(
                        Assignment(
                            item.target,
                            desugared,
                            line=item.line,
                            column=item.column,
                        )
                    )
            elif isinstance(item, Condition):
                conditions.append(
                    Condition(
                        self._desugar_into(item.expression, aggregates),
                        line=item.line,
                        column=item.column,
                    )
                )
            else:  # pragma: no cover - defensive
                raise ParseError(f"unexpected body element {item!r}")

        if head_equalities and head_atoms:
            raise ParseError(
                "a statement cannot mix EGD equalities and head atoms",
                line=line,
                column=column,
            )
        if head_equalities:
            program.egds.append(
                EGD(
                    body_literals,
                    head_equalities,
                    label=label,
                    line=line,
                    column=column,
                )
            )
            return

        rule = Rule(
            head_atoms,
            body_literals,
            conditions=conditions,
            assignments=assignments,
            aggregates=aggregates,
            label=label,
            declared_existentials=explicit_existentials,
            line=line,
            column=column,
        )
        if explicit_existentials:
            implicit = rule.existential_variables()
            missing = explicit_existentials - implicit
            if missing:
                names = ", ".join(sorted(v.name for v in missing))
                raise ParseError(
                    f"exists({names}) declared but the variable(s) are "
                    "bound in the body",
                    line=line,
                    column=column,
                )
        program.rules.append(rule)

    def _desugar(self, expression, aggregates):
        """Desugar a top-level aggregate assignment; otherwise rewrite
        nested aggregate calls into fresh variables."""
        if isinstance(expression, _AggCall):
            return _AggSpecMarker(
                expression.function,
                expression.argument,
                expression.contributors,
            )
        return self._desugar_into(expression, aggregates)

    def _desugar_into(self, expression, aggregates):
        """Replace every nested :class:`_AggCall` with a fresh variable,
        appending the corresponding :class:`AggregateSpec`."""
        if isinstance(expression, _AggCall):
            target = self._fresh_variable()
            aggregates.append(
                AggregateSpec(
                    target,
                    expression.function,
                    expression.argument,
                    expression.contributors,
                )
            )
            return VarRef(target)
        if isinstance(expression, BinOp):
            return BinOp(
                expression.op,
                self._desugar_into(expression.left, aggregates),
                self._desugar_into(expression.right, aggregates),
            )
        if isinstance(expression, UnaryOp):
            return UnaryOp(
                expression.op,
                self._desugar_into(expression.operand, aggregates),
            )
        if isinstance(expression, Case):
            return Case(
                self._desugar_into(expression.condition, aggregates),
                self._desugar_into(expression.then_value, aggregates),
                self._desugar_into(expression.else_value, aggregates),
            )
        if isinstance(expression, FuncCall):
            return FuncCall(
                expression.name,
                [
                    self._desugar_into(arg, aggregates)
                    for arg in expression.args
                ],
            )
        if isinstance(expression, TupleExpr):
            return TupleExpr(
                [
                    self._desugar_into(item, aggregates)
                    for item in expression.items
                ]
            )
        return expression

    # -- body items ----------------------------------------------------------------

    def _parse_body_item(self) -> List:
        """Parse one comma-separated item: a (possibly negated) atom, a
        condition, or an assignment."""
        if self._check("IDENT") and self._peek().value == "not":
            nxt = self._peek(1)
            is_callable = (
                nxt.kind in ("IDENT", "HASH_IDENT")
                and self._peek(2).kind == "("
            )
            is_builtin = nxt.value in SCALAR_FUNCTIONS or (
                nxt.value in AGGREGATE_FUNCTIONS
            )
            if is_callable and not is_builtin:
                self._advance()  # 'not'
                atom = self._parse_atom()
                return [Literal(atom, negated=True)]

        # Assignment / equality: Var '=' expr  (single '=')
        if self._check("IDENT") and _is_variable_name(self._peek().value):
            if self._peek(1).kind == "=":
                target_token = self._advance()
                target = Variable(target_token.value)
                self._expect("=")
                expression = self._parse_expression()
                return [
                    Assignment(
                        target,
                        expression,
                        line=target_token.line,
                        column=target_token.column,
                    )
                ]

        # ``exists(Z) atom`` — the quantifier marker may be followed by
        # its quantified atom without a comma (paper notation).
        if (
            self._check("IDENT")
            and self._peek().value == "exists"
            and self._peek(1).kind == "("
        ):
            exists_atom = self._parse_atom()
            items: List = [exists_atom]
            if self._peek().kind in ("IDENT", "HASH_IDENT") and self._peek(
                1
            ).kind == "(":
                items.extend(self._parse_body_item())
            return items

        # Atom: ident '(' ... ')' with nothing trailing that makes it an
        # expression.  Aggregate names and scalar builtins parse as
        # expressions instead.
        if self._check("IDENT") or self._check("HASH_IDENT"):
            name = self._peek().value
            if (
                self._peek(1).kind == "("
                and name not in AGGREGATE_FUNCTIONS
                and name not in SCALAR_FUNCTIONS
                and name != "case"
            ):
                saved = self.position
                atom = self._parse_atom()
                follow = self._peek().kind
                if follow in (",", ".", ":-", "->"):
                    return [atom]
                # e.g. ``p(X) > 3`` is not an atom: backtrack.
                self.position = saved

        first = self._peek()
        expression = self._parse_expression()
        return [Condition(expression, line=first.line, column=first.column)]

    def _parse_atom(self) -> Atom:
        token = self._advance()
        if token.kind not in ("IDENT", "HASH_IDENT"):
            raise ParseError(
                f"expected predicate name, found {token.value!r}",
                line=token.line,
                column=token.column,
            )
        predicate = token.value
        self._expect("(")
        terms: List[Term] = []
        if not self._check(")"):
            while True:
                terms.append(self._parse_term())
                if not self._match(","):
                    break
        self._expect(")")
        return Atom(predicate, terms, line=token.line, column=token.column)

    def _parse_term(self) -> Term:
        token = self._peek()
        if token.kind == "IDENT":
            self._advance()
            if _is_variable_name(token.value):
                return Variable(token.value)
            return Constant(token.value)
        if token.kind == "STRING":
            self._advance()
            return Constant(token.value)
        if token.kind == "NUMBER":
            self._advance()
            return Constant(_parse_number(token.value))
        if token.kind == "-" and self._peek(1).kind == "NUMBER":
            self._advance()
            number = self._advance()
            return Constant(-_parse_number(number.value))
        if token.kind == "[":
            return Constant(self._parse_set_literal())
        raise ParseError(
            f"expected a term, found {token.value!r}",
            line=token.line,
            column=token.column,
        )

    def _parse_set_literal(self) -> frozenset:
        self._expect("[")
        values = []
        if not self._check("]"):
            while True:
                token = self._advance()
                if token.kind in ("IDENT", "STRING"):
                    values.append(token.value)
                elif token.kind == "NUMBER":
                    values.append(_parse_number(token.value))
                else:
                    raise ParseError(
                        f"unexpected set element {token.value!r}",
                        line=token.line,
                        column=token.column,
                    )
                if not self._match(","):
                    break
        self._expect("]")
        return frozenset(values)

    # -- expressions ----------------------------------------------------------------

    def _parse_expression(self) -> Expression:
        self._enter_expression()
        try:
            return self._parse_or()
        finally:
            self._expression_depth -= 1

    def _enter_expression(self) -> None:
        self._expression_depth += 1
        if self._expression_depth > MAX_EXPRESSION_DEPTH:
            token = self._peek()
            raise ParseError(
                f"expression nested deeper than {MAX_EXPRESSION_DEPTH} "
                "levels",
                line=token.line,
                column=token.column,
            )

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._check("||"):
            self._advance()
            left = BinOp("||", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_comparison()
        while self._check("&&"):
            self._advance()
            left = BinOp("&&", left, self._parse_comparison())
        return left

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        kind = self._peek().kind
        if kind in ("==", "!=", "<", "<=", ">", ">="):
            self._advance()
            return BinOp(kind, left, self._parse_additive())
        if kind == "=":
            # equality inside an expression context
            self._advance()
            return BinOp("==", left, self._parse_additive())
        if kind == "IDENT" and self._peek().value == "in":
            self._advance()
            if self._check("["):
                right: Expression = Lit(self._parse_set_literal())
            elif self._check("{"):
                right = Lit(self._parse_brace_set())
            else:
                right = self._parse_additive()
            return BinOp("in", left, right)
        return left

    def _parse_brace_set(self) -> frozenset:
        self._expect("{")
        values = []
        if not self._check("}"):
            while True:
                token = self._advance()
                if token.kind in ("IDENT", "STRING"):
                    values.append(token.value)
                elif token.kind == "NUMBER":
                    values.append(_parse_number(token.value))
                else:
                    raise ParseError(
                        f"unexpected set element {token.value!r}",
                        line=token.line,
                        column=token.column,
                    )
                if not self._match(","):
                    break
        self._expect("}")
        return frozenset(values)

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while self._peek().kind in ("+", "-"):
            op = self._advance().kind
            left = BinOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while self._peek().kind in ("*", "/", "%"):
            op = self._advance().kind
            left = BinOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expression:
        if self._check("-"):
            self._advance()
            self._enter_expression()
            try:
                return UnaryOp("-", self._parse_unary())
            finally:
                self._expression_depth -= 1
        if self._check("IDENT") and self._peek().value == "not":
            self._advance()
            self._enter_expression()
            try:
                return UnaryOp("not", self._parse_unary())
            finally:
                self._expression_depth -= 1
        return self._parse_postfix()

    def _parse_postfix(self) -> Expression:
        primary = self._parse_primary()
        while self._check("["):
            self._advance()
            key = self._parse_expression()
            self._expect("]")
            primary = FuncCall("get", [primary, key])
        return primary

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            return Lit(_parse_number(token.value))
        if token.kind == "STRING":
            self._advance()
            return Lit(token.value)
        if token.kind == "(":
            self._advance()
            inner = self._parse_expression()
            if self._check(","):
                items = [inner]
                while self._match(","):
                    items.append(self._parse_expression())
                self._expect(")")
                return TupleExpr(items)
            self._expect(")")
            return inner
        if token.kind == "{":
            return Lit(self._parse_brace_set())
        if token.kind == "IDENT":
            if token.value == "case":
                return self._parse_case()
            if token.value in ("true", "false"):
                self._advance()
                return Lit(token.value == "true")
            if token.value in AGGREGATE_FUNCTIONS and self._peek(1).kind == (
                "("
            ):
                return self._parse_aggregate_call()
            if self._peek(1).kind == "(":
                name = self._advance().value
                self._expect("(")
                args: List[Expression] = []
                if not self._check(")"):
                    while True:
                        args.append(self._parse_expression())
                        if not self._match(","):
                            break
                self._expect(")")
                return FuncCall(name, args)
            self._advance()
            if _is_variable_name(token.value):
                return VarRef(Variable(token.value))
            return Lit(token.value)
        raise ParseError(
            f"unexpected token {token.value!r} in expression",
            line=token.line,
            column=token.column,
        )

    def _parse_case(self) -> Expression:
        self._expect("IDENT")  # 'case'
        condition = self._parse_expression()
        then_token = self._expect("IDENT")
        if then_token.value != "then":
            raise ParseError(
                "expected 'then' in case expression",
                line=then_token.line,
                column=then_token.column,
            )
        then_value = self._parse_expression()
        else_token = self._expect("IDENT")
        if else_token.value != "else":
            raise ParseError(
                "expected 'else' in case expression",
                line=else_token.line,
                column=else_token.column,
            )
        else_value = self._parse_expression()
        return Case(condition, then_value, else_value)

    def _parse_aggregate_call(self) -> _AggCall:
        function = self._advance().value
        self._expect("(")
        argument: Optional[Expression] = None
        if not self._check("<"):
            argument = self._parse_expression()
            self._expect(",")
        self._expect("<")
        contributors: List[Variable] = []
        while True:
            name_token = self._expect("IDENT")
            name = name_token.value
            if not _is_variable_name(name):
                raise ParseError(
                    f"aggregate contributor {name!r} must be a variable",
                    line=name_token.line,
                    column=name_token.column,
                )
            contributors.append(Variable(name))
            if not self._match(","):
                break
        self._expect(">")
        self._expect(")")
        if function == "mcount":
            argument = None
        return _AggCall(function, argument, contributors)


class _AggSpecMarker:
    """Internal marker returned when a body assignment is an aggregate."""

    __slots__ = ("function", "argument", "contributors")

    def __init__(self, function, argument, contributors):
        self.function = function
        self.argument = argument
        self.contributors = contributors


def _is_exists_marker(atom: Atom) -> bool:
    """``exists(Z1, Z2)`` written as an atom is the explicit existential
    quantifier, not a predicate — recognized in heads and bodies alike."""
    return atom.predicate == "exists" and bool(atom.terms) and all(
        isinstance(t, Variable) for t in atom.terms
    )


def _is_variable_name(name: str) -> bool:
    return bool(name) and (name[0].isupper() or name[0] == "_")


def _parse_number(text: str) -> Union[int, float]:
    if "." in text:
        return float(text)
    return int(text)


def parse_program(source: str) -> ParsedProgram:
    """Parse Vadalog source text into facts, rules, EGDs, annotations."""
    return Parser(source).parse()
