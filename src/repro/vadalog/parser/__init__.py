"""Parser subpackage: lexer and recursive-descent parser."""

from .lexer import Token, tokenize
from .parser import ParsedProgram, Parser, parse_program

__all__ = ["ParsedProgram", "Parser", "Token", "parse_program", "tokenize"]
