"""Wardedness analysis for Datalog± programs.

Vadalog's core is **Warded Datalog±** (Section 3): a syntactic
restriction guaranteeing decidability and PTIME data complexity in the
presence of recursion and existential quantification.  This module
implements the standard static analysis:

1. **Affected positions** — predicate positions where a labelled null
   may appear during the chase: positions of existential head variables,
   propagated through frontier variables.
2. **Harmful variables** (w.r.t. a rule) — body variables occurring
   *only* in affected positions; a harmful variable that also appears in
   the head is **dangerous**.
3. A rule is **warded** when all its dangerous variables occur together
   in a single body atom (the *ward*) that shares only harmless
   variables with the rest of the body.

A program is warded when all rules are.  The checker reports, per rule,
whether it is warded and why not, so program authors get actionable
diagnostics rather than a bare boolean.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..errors import WardednessError
from .rules import Rule
from .terms import Variable

#: A position is (predicate, index).
Position = Tuple[str, int]


def affected_positions(rules: Sequence[Rule]) -> Set[Position]:
    """Compute the set of affected positions by fixpoint propagation.

    Base: positions of existentially quantified head variables.
    Step: if a frontier variable occurs in the body *only* at affected
    positions, every head position it occupies becomes affected.
    """
    affected: Set[Position] = set()
    for rule in rules:
        existentials = rule.existential_variables()
        for atom in rule.head:
            for index, term in enumerate(atom.terms):
                if isinstance(term, Variable) and term in existentials:
                    affected.add((atom.predicate, index))

    changed = True
    while changed:
        changed = False
        for rule in rules:
            body_positions = _variable_positions_in_body(rule)
            for variable, positions in body_positions.items():
                if not positions:
                    continue
                if not all(pos in affected for pos in positions):
                    continue
                # variable only occurs at affected body positions
                for atom in rule.head:
                    for index, term in enumerate(atom.terms):
                        if term == variable:
                            pos = (atom.predicate, index)
                            if pos not in affected:
                                affected.add(pos)
                                changed = True
    return affected


def _variable_positions_in_body(rule: Rule) -> Dict[Variable, List[Position]]:
    positions: Dict[Variable, List[Position]] = {}
    for literal in rule.body:
        if literal.negated or literal.atom.is_external:
            continue
        for index, term in enumerate(literal.atom.terms):
            if isinstance(term, Variable) and not term.is_anonymous:
                positions.setdefault(term, []).append(
                    (literal.atom.predicate, index)
                )
    return positions


class RuleWardedness:
    """Diagnostic for a single rule."""

    def __init__(
        self,
        rule: Rule,
        harmful: Set[Variable],
        dangerous: Set[Variable],
        warded: bool,
        reason: str,
    ):
        self.rule = rule
        self.harmful = harmful
        self.dangerous = dangerous
        self.warded = warded
        self.reason = reason

    def __repr__(self):
        status = "warded" if self.warded else f"NOT warded ({self.reason})"
        return f"RuleWardedness({self.rule.label or self.rule}: {status})"


def check_rule(
    rule: Rule, affected: Set[Position]
) -> RuleWardedness:
    """Classify one rule against the program-wide affected positions."""
    body_positions = _variable_positions_in_body(rule)
    harmful = {
        variable
        for variable, positions in body_positions.items()
        if positions and all(pos in affected for pos in positions)
    }
    head_vars = rule.head_variables()
    dangerous = {v for v in harmful if v in head_vars}
    if not dangerous:
        return RuleWardedness(rule, harmful, dangerous, True, "no dangerous "
                              "variables")
    # All dangerous variables must co-occur in one body atom (the ward)
    # that shares only harmless variables with the rest of the body.
    for literal in rule.body:
        if literal.negated or literal.atom.is_external:
            continue
        atom_vars = set(literal.atom.variables())
        if not dangerous <= atom_vars:
            continue
        shared_harmful = False
        for other in rule.body:
            if other is literal or other.negated or other.atom.is_external:
                continue
            # A duplicate occurrence of the ward atom is the same atom —
            # sharing harmful variables with *itself* does not break the
            # ward condition.
            if other.atom == literal.atom:
                continue
            other_vars = set(other.atom.variables())
            if (atom_vars & other_vars) & harmful:
                shared_harmful = True
                break
        if not shared_harmful:
            return RuleWardedness(
                rule, harmful, dangerous, True,
                f"ward found: {literal.atom.predicate}",
            )
    return RuleWardedness(
        rule,
        harmful,
        dangerous,
        False,
        "dangerous variables "
        + ", ".join(sorted(v.name for v in dangerous))
        + " have no ward",
    )


def harmful_join_variables(
    rule: Rule, affected: Set[Position]
) -> Set[Variable]:
    """Variables joined across two or more *distinct* positive body atoms
    while occurring somewhere at an affected position.

    Such joins compare labelled nulls and are the chief source of
    complexity in warded programs (the "harmful joins" that Vadalog's
    optimizer isolates); they stay legal, but are worth a warning.
    """
    occurrences: Dict[Variable, Set] = {}
    at_affected: Set[Variable] = set()
    for literal in rule.body:
        if literal.negated or literal.atom.is_external:
            continue
        for index, term in enumerate(literal.atom.terms):
            if isinstance(term, Variable) and not term.is_anonymous:
                occurrences.setdefault(term, set()).add(literal.atom)
                if (literal.atom.predicate, index) in affected:
                    at_affected.add(term)
    return {
        variable
        for variable, atoms in occurrences.items()
        if len(atoms) >= 2 and variable in at_affected
    }


class WardednessReport:
    """Program-level wardedness diagnostics."""

    def __init__(self, per_rule: List[RuleWardedness], affected):
        self.per_rule = per_rule
        self.affected = affected

    @property
    def is_warded(self) -> bool:
        return all(entry.warded for entry in self.per_rule)

    def violations(self) -> List[RuleWardedness]:
        return [entry for entry in self.per_rule if not entry.warded]

    def __repr__(self):
        status = "warded" if self.is_warded else (
            f"{len(self.violations())} violation(s)"
        )
        return f"WardednessReport({len(self.per_rule)} rules, {status})"


def check_wardedness(
    rules: Sequence[Rule], strict: bool = False
) -> WardednessReport:
    """Check every rule; with ``strict=True`` raise on the first
    violation instead of reporting."""
    affected = affected_positions(rules)
    per_rule = [check_rule(rule, affected) for rule in rules]
    report = WardednessReport(per_rule, affected)
    if strict and not report.is_warded:
        worst = report.violations()[0]
        raise WardednessError(
            f"rule {worst.rule.label or worst.rule} is not warded: "
            f"{worst.reason}"
        )
    return report
