"""repro.vadalog — a Vadalog-style Datalog± reasoning engine.

The substrate on which Vada-SA runs: a parser for a Vadalog-like
language, a stratified semi-naive chase with existential quantification
(labelled nulls), stratified negation, monotonic aggregation with
contributor semantics, external predicates, routing strategies,
wardedness checking, EGD enforcement and full provenance.

Quick use::

    from repro.vadalog import Program

    program = Program.parse('''
        edge(a, b). edge(b, c).
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).
    ''')
    result = program.run()
    sorted(result.tuples("path"))
"""

from .analysis import AnalysisReport, Diagnostic, Span, analyze
from .atoms import Assignment, Atom, Condition, Fact, Literal
from .chase import ChaseEngine, ChaseResult
from .database import FactStore
from .egd import EGDViolation, enforce_egds
from .explain import ExplanationNode, ProvenanceLog
from .expressions import register_scalar_function
from .externals import (
    ExternalContext,
    ExternalRegistry,
    boolean_external,
    tabular_external,
)
from .builtins import standard_registry
from .negation import DependencyGraph, stratify
from .program import Program
from .routing import (
    RoutingTable,
    fifo_strategy,
    less_significant_first,
    most_risky_first,
)
from .rules import EGD, AggregateSpec, Rule
from .terms import (
    Constant,
    LabelledNull,
    NullFactory,
    Term,
    Variable,
    wrap,
    wrap_tuple,
    unwrap,
)
from .wardedness import WardednessReport, check_wardedness

__all__ = [
    "AnalysisReport",
    "Assignment",
    "Atom",
    "AggregateSpec",
    "Diagnostic",
    "Span",
    "analyze",
    "ChaseEngine",
    "ChaseResult",
    "Condition",
    "Constant",
    "DependencyGraph",
    "EGD",
    "EGDViolation",
    "ExplanationNode",
    "ExternalContext",
    "ExternalRegistry",
    "Fact",
    "FactStore",
    "LabelledNull",
    "Literal",
    "NullFactory",
    "Program",
    "ProvenanceLog",
    "RoutingTable",
    "Rule",
    "Term",
    "Variable",
    "WardednessReport",
    "boolean_external",
    "check_wardedness",
    "enforce_egds",
    "fifo_strategy",
    "less_significant_first",
    "most_risky_first",
    "register_scalar_function",
    "standard_registry",
    "stratify",
    "tabular_external",
    "unwrap",
    "wrap",
    "wrap_tuple",
]
