"""Fact storage with hash indices for semi-naive evaluation.

The :class:`FactStore` keeps, per predicate:

* the set of all facts (for duplicate elimination and homomorphism
  checks),
* position indices — hash maps from (position, term) to the facts
  carrying that term there — built lazily for the join positions the
  evaluator actually uses,
* *composite* indices — hash maps from a tuple of positions to the
  facts carrying a given term tuple there — so a compiled plan step
  with ``k`` bound positions does one hash probe instead of probing
  the single most selective position and filtering the bucket,
* a *delta* set of facts added since the last
  :meth:`FactStore.advance_delta`, which drives semi-naive rule firing.
  Delta-scoped index *views* are built lazily per frontier so
  ``delta_only`` probes never re-check membership fact by fact.

Aggregate predicates are additionally *functional*: the chase may
replace a previously derived aggregate fact for a group with an updated
one (monotonic-aggregation semantics, Section 4.3), which is supported
through :meth:`retract`.

**Backends.**  Relations start on the dict/set representation above
and are *promoted* to the dictionary-encoded columnar backend
(:class:`~repro.vadalog.columnar.ColumnarRelation`) once their
cardinality crosses a threshold — per-predicate selection, so small
relations never pay the encoding overhead.  Both backends serve the
identical probe/delta contract; selection is invisible to every
consumer.  Escape hatches: ``CHASE_COLUMNAR=0`` (environment),
``--no-columnar`` (CLI), or ``FactStore(columnar=False)``; the
threshold is ``CHASE_COLUMNAR_THRESHOLD`` / ``columnar_threshold``.
"""

from __future__ import annotations

import os
import sys
from collections import defaultdict
from itertools import islice
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, \
    Tuple

from ..telemetry import state as _telemetry
from .atoms import Atom, Fact
from .terms import Term

#: Default promotion threshold: relations below this cardinality stay
#: on the dict backend (its per-probe constant factor is lower and the
#: encoding pays off only at volume).
DEFAULT_COLUMNAR_THRESHOLD = 1024

_FALSEY = ("0", "false", "no", "off")


def columnar_default_enabled() -> bool:
    """Columnar promotion default: on unless ``CHASE_COLUMNAR`` is a
    falsey value (the environment escape hatch)."""
    return os.environ.get(
        "CHASE_COLUMNAR", ""
    ).strip().lower() not in _FALSEY


def columnar_default_threshold() -> int:
    raw = os.environ.get("CHASE_COLUMNAR_THRESHOLD", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return DEFAULT_COLUMNAR_THRESHOLD


class _PredicateRelation:
    """Facts and indices for one predicate.

    ``delta`` is the current semi-naive frontier (facts new as of the
    previous round); ``pending`` collects facts added during the
    current round and becomes the next frontier on
    :meth:`FactStore.advance_delta`.
    """

    backend = "dict"

    __slots__ = (
        "facts", "indices", "composites", "delta", "pending",
        "delta_indices", "arity",
    )

    def __init__(self):
        self.facts: Set[Fact] = set()
        # position -> term -> set of facts
        self.indices: Dict[int, Dict[Term, Set[Fact]]] = {}
        # (position, ...) -> (term, ...) -> set of facts
        self.composites: Dict[
            Tuple[int, ...], Dict[Tuple[Term, ...], Set[Fact]]
        ] = {}
        self.delta: Set[Fact] = set()
        self.pending: Set[Fact] = set()
        # Delta-scoped views, keyed like composites (single positions
        # as 1-tuples).  Rebuilt lazily whenever the frontier changes —
        # the frontier is immutable within a round, so each view is
        # built at most once per (positions, round).
        self.delta_indices: Dict[
            Tuple[int, ...], Dict[Tuple[Term, ...], Set[Fact]]
        ] = {}
        self.arity: int = -1

    def ensure_index(self, position: int) -> Dict[Term, Set[Fact]]:
        index = self.indices.get(position)
        if index is None:
            index = defaultdict(set)
            for fact in self.facts:
                index[fact.terms[position]].add(fact)
            self.indices[position] = index
            if _telemetry.enabled:
                _telemetry.registry.counter("store.index_builds").inc()
        return index

    def ensure_composite(
        self, positions: Tuple[int, ...]
    ) -> Dict[Tuple[Term, ...], Set[Fact]]:
        index = self.composites.get(positions)
        if index is None:
            index = defaultdict(set)
            for fact in self.facts:
                terms = fact.terms
                index[tuple(terms[p] for p in positions)].add(fact)
            self.composites[positions] = index
            if _telemetry.enabled:
                _telemetry.registry.counter(
                    "store.composite_index_builds"
                ).inc()
        return index

    def delta_view(
        self, positions: Tuple[int, ...]
    ) -> Dict[Tuple[Term, ...], Set[Fact]]:
        """A composite index over the current frontier only."""
        index = self.delta_indices.get(positions)
        if index is None:
            index = {}
            for fact in self.delta:
                terms = fact.terms
                key = tuple(terms[p] for p in positions)
                bucket = index.get(key)
                if bucket is None:
                    bucket = index[key] = set()
                bucket.add(fact)
            self.delta_indices[positions] = index
            if _telemetry.enabled:
                _telemetry.registry.counter(
                    "store.delta_index_builds"
                ).inc()
        return index

    def add(self, fact: Fact) -> bool:
        if fact in self.facts:
            return False
        if self.arity < 0:
            self.arity = len(fact.terms)
        self.facts.add(fact)
        self.pending.add(fact)
        terms = fact.terms
        for position, index in self.indices.items():
            index[terms[position]].add(fact)
        for positions, index in self.composites.items():
            index[tuple(terms[p] for p in positions)].add(fact)
        return True

    def remove(self, fact: Fact) -> bool:
        if fact not in self.facts:
            return False
        self.facts.discard(fact)
        if fact in self.delta:
            self.delta.discard(fact)
            # The frontier changed mid-round (functional-aggregate
            # retraction): every delta view is stale.
            self.delta_indices.clear()
        self.pending.discard(fact)
        terms = fact.terms
        for position, index in self.indices.items():
            bucket = index.get(terms[position])
            if bucket is not None:
                bucket.discard(fact)
        for positions, index in self.composites.items():
            bucket = index.get(tuple(terms[p] for p in positions))
            if bucket is not None:
                bucket.discard(fact)
        return True

    # -- backend protocol (shared with ColumnarRelation) -------------------

    def fact_count(self) -> int:
        return len(self.facts)

    def iter_facts(self) -> Iterator[Fact]:
        return iter(self.facts)

    def contains_fact(self, fact: Fact) -> bool:
        return fact in self.facts

    def snapshot_facts(self) -> Set[Fact]:
        return set(self.facts)

    def probe(
        self,
        predicate: str,
        positions: Tuple[int, ...],
        key: Tuple[Term, ...],
        delta_only: bool = False,
    ) -> Tuple[Fact, ...]:
        universe = self.delta if delta_only else self.facts
        if not universe:
            return ()
        if not positions:
            return tuple(universe)
        if _telemetry.enabled and len(positions) > 1:
            _telemetry.registry.counter("store.composite_probes").inc()
        if len(positions) == self.arity:
            # Fully determined atom: membership beats any index.
            candidate = Fact(predicate, key)
            if candidate in universe:
                if _telemetry.enabled and len(positions) > 1:
                    _telemetry.registry.counter(
                        "store.composite_probe_hits"
                    ).inc()
                return (candidate,)
            return ()
        if delta_only:
            bucket = self.delta_view(positions).get(key)
        elif len(positions) == 1:
            bucket = self.ensure_index(positions[0]).get(key[0])
        else:
            bucket = self.ensure_composite(positions).get(key)
        if not bucket:
            return ()
        if _telemetry.enabled and len(positions) > 1:
            _telemetry.registry.counter(
                "store.composite_probe_hits"
            ).inc()
        return tuple(bucket)

    def clone(self) -> "_PredicateRelation":
        twin = _PredicateRelation()
        twin.facts = set(self.facts)
        twin.delta = set(self.delta)
        twin.pending = set(self.pending)
        twin.arity = self.arity
        return twin

    def memory_info(self, sample: int = 32) -> Dict[str, Any]:
        count = len(self.facts)
        sampled = list(islice(self.facts, max(sample, 1)))
        if sampled:
            per_fact = sum(
                _estimate_fact_bytes(fact) for fact in sampled
            ) / len(sampled)
        else:
            per_fact = 0.0
        index_entries = sum(
            len(bucket)
            for index in self.indices.values()
            for bucket in index.values()
        ) + sum(
            len(bucket)
            for index in self.composites.values()
            for bucket in index.values()
        ) + sum(
            len(bucket)
            for index in self.delta_indices.values()
            for bucket in index.values()
        )
        return {
            "facts": count,
            "delta": len(self.delta),
            "estimated_bytes": int(per_fact * count),
            "index_entries": index_entries,
            "backend": self.backend,
        }


def _estimate_fact_bytes(fact: Fact) -> int:
    """Shallow-ish size of one fact: the Fact object, its terms tuple,
    each term object and that term's immediate payload value."""
    size = sys.getsizeof(fact) + sys.getsizeof(fact.terms)
    for term in fact.terms:
        size += sys.getsizeof(term)
        value = getattr(term, "value", None)
        if value is not None:
            size += sys.getsizeof(value)
    return size


class FactStore:
    """A database instance: a set of facts with join indices.

    ``columnar`` / ``columnar_threshold`` control per-predicate
    backend selection (None = environment defaults, see the module
    docstring); the choice is purely an internal representation and
    never changes observable semantics.
    """

    def __init__(
        self,
        facts: Iterable[Fact] = (),
        columnar: Optional[bool] = None,
        columnar_threshold: Optional[int] = None,
    ):
        self._relations: Dict[str, _PredicateRelation] = {}
        self.columnar_enabled = (
            columnar_default_enabled() if columnar is None else columnar
        )
        self.columnar_threshold = (
            columnar_default_threshold()
            if columnar_threshold is None
            else max(1, columnar_threshold)
        )
        for fact in facts:
            self.add(fact)

    # -- mutation ---------------------------------------------------------

    def _promote(self, predicate: str, relation) -> None:
        """Switch one relation to the columnar backend, preserving the
        semi-naive frontier fact for fact."""
        from .columnar import ColumnarRelation

        self._relations[predicate] = ColumnarRelation.from_dict_relation(
            relation
        )
        if _telemetry.enabled:
            _telemetry.registry.counter(
                "store.columnar.promotions"
            ).inc()

    def add(self, fact: Fact) -> bool:
        """Insert a fact; returns True when it is new."""
        if not fact.is_ground:
            raise ValueError(f"cannot store non-ground atom {fact}")
        relation = self._relations.get(fact.predicate)
        if relation is None:
            # setdefault keeps the table consistent even if two
            # threads race to create the same relation (only one
            # stratum ever *writes* a predicate, but externals may
            # inject into predicates nobody pre-registered).
            relation = self._relations.setdefault(
                fact.predicate, _PredicateRelation()
            )
        added = relation.add(fact)
        if (
            added
            and self.columnar_enabled
            and relation.backend == "dict"
            and len(relation.facts) >= self.columnar_threshold
        ):
            self._promote(fact.predicate, relation)
        if _telemetry.enabled:
            _telemetry.registry.counter(
                "store.adds" if added else "store.dedup_hits"
            ).inc()
        return added

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Insert many facts; returns how many were new."""
        return sum(1 for fact in facts if self.add(fact))

    def retract(self, fact: Fact) -> bool:
        """Remove a fact (used only for functional aggregate updates)."""
        relation = self._relations.get(fact.predicate)
        if relation is None:
            return False
        removed = relation.remove(fact)
        if removed and _telemetry.enabled:
            _telemetry.registry.counter("store.retracts").inc()
        return removed

    # -- lookup -----------------------------------------------------------

    def predicates(self) -> Iterator[str]:
        return iter(self._relations)

    def facts(self, predicate: Optional[str] = None) -> Iterator[Fact]:
        if predicate is not None:
            relation = self._relations.get(predicate)
            return relation.iter_facts() if relation else iter(())
        return (
            fact
            for relation in self._relations.values()
            for fact in relation.iter_facts()
        )

    def count(self, predicate: Optional[str] = None) -> int:
        if predicate is not None:
            relation = self._relations.get(predicate)
            return relation.fact_count() if relation else 0
        return sum(r.fact_count() for r in self._relations.values())

    def contains(self, fact: Fact) -> bool:
        relation = self._relations.get(fact.predicate)
        return relation is not None and relation.contains_fact(fact)

    def lookup(
        self,
        predicate: str,
        bound: Dict[int, Term],
        delta_only: bool = False,
    ) -> Iterator[Fact]:
        """Iterate over facts of ``predicate`` matching the given
        position->term constraints with one exact (composite) hash
        probe; ``delta_only`` probes a frontier-scoped index view."""
        if not bound:
            return iter(self.probe(predicate, (), (), delta_only))
        positions = tuple(sorted(bound))
        key = tuple(bound[p] for p in positions)
        return iter(self.probe(predicate, positions, key, delta_only))

    def probe(
        self,
        predicate: str,
        positions: Tuple[int, ...],
        key: Tuple[Term, ...],
        delta_only: bool = False,
    ) -> Tuple[Fact, ...]:
        """Facts of ``predicate`` whose terms at ``positions`` equal
        ``key`` — the compiled-plan probe primitive.  Every returned
        fact matches exactly; callers never re-filter.  The result is a
        fresh tuple, safe to iterate while the store is mutated."""
        relation = self._relations.get(predicate)
        if relation is None:
            return ()
        return relation.probe(predicate, positions, key, delta_only)

    # -- semi-naive bookkeeping --------------------------------------------

    def delta(self, predicate: str) -> Set[Fact]:
        relation = self._relations.get(predicate)
        return relation.delta if relation else set()

    def has_delta(self) -> bool:
        """True while there is a non-empty frontier for the next round."""
        return any(r.delta for r in self._relations.values())

    def has_pending(self) -> bool:
        return any(r.pending for r in self._relations.values())

    def advance_delta(self) -> None:
        """Promote facts added during the current round to be the next
        round's frontier."""
        for relation in self._relations.values():
            relation.delta = relation.pending
            relation.pending = set()
            relation.delta_indices.clear()

    def reset_delta_to_all(self) -> None:
        """Mark every stored fact as 'new' — used when a stratum starts
        so its rules see all facts from lower strata once."""
        for relation in self._relations.values():
            relation.delta = relation.snapshot_facts()
            relation.pending = set()
            relation.delta_indices.clear()

    # -- scoped semi-naive bookkeeping (parallel chase) --------------------
    #
    # The parallel scheduler runs independent strata concurrently, so
    # no stratum may touch the *global* frontier: each one resets and
    # advances only the predicates its own rules write.  Ancestor
    # predicates are frozen by then and carry an empty delta — exactly
    # what the serial engine's round >= 2 sees after its first global
    # advance.

    def ensure_relations(self, predicates: Iterable[str]) -> None:
        """Pre-create empty relations so the relation table stops
        growing while concurrent strata iterate it."""
        for predicate in predicates:
            if predicate not in self._relations:
                self._relations.setdefault(predicate, _PredicateRelation())

    def clear_deltas(self) -> None:
        """Empty every relation's frontier bookkeeping (delta and
        pending) without touching the stored facts."""
        for relation in self._relations.values():
            relation.delta = set()
            relation.pending = set()
            relation.delta_indices.clear()

    def reset_delta_scoped(self, predicates: Iterable[str]) -> None:
        """``reset_delta_to_all`` restricted to the given predicates."""
        for predicate in predicates:
            relation = self._relations.get(predicate)
            if relation is None:
                continue
            relation.delta = relation.snapshot_facts()
            relation.pending = set()
            relation.delta_indices.clear()

    def advance_delta_scoped(self, predicates: Iterable[str]) -> None:
        """``advance_delta`` restricted to the given predicates."""
        for predicate in predicates:
            relation = self._relations.get(predicate)
            if relation is None:
                continue
            relation.delta = relation.pending
            relation.pending = set()
            relation.delta_indices.clear()

    def has_delta_scoped(self, predicates: Iterable[str]) -> bool:
        for predicate in predicates:
            relation = self._relations.get(predicate)
            if relation is not None and relation.delta:
                return True
        return False

    def frontier_size_scoped(self, predicates: Iterable[str]) -> int:
        return sum(
            len(relation.delta)
            for predicate in predicates
            for relation in (self._relations.get(predicate),)
            if relation is not None
        )

    # -- memory accounting ---------------------------------------------------

    def frontier_size(self) -> int:
        """Total facts in the current semi-naive frontier — the live
        delta the next round will drive from."""
        return sum(len(r.delta) for r in self._relations.values())

    def memory_stats(self, sample: int = 32) -> Dict[str, Any]:
        """Per-predicate cardinality and bytes report.

        Dict-backed predicates report *estimates*: ``sys.getsizeof``
        of a sample of up to ``sample`` facts (fact + terms tuple +
        each term + its payload value), scaled to the predicate's
        cardinality — an upper bound on exclusive ownership, meant for
        relative comparison.  Columnar predicates report *real* bytes:
        the code columns' buffer sizes plus the term dictionary, with
        ``column_bytes`` and always-on ``probes``/``probe_hits``
        counters broken out.  ``index_entries`` counts bucket
        memberships (fact-set buckets on the dict backend, rowid
        buckets on the columnar one) — the index-side multiplier on
        fact count.
        """
        predicates: Dict[str, Any] = {}
        total_facts = 0
        total_bytes = 0
        total_index = 0
        total_columns = 0
        for name, relation in sorted(self._relations.items()):
            if relation.backend == "dict":
                info = relation.memory_info(sample)
            else:
                info = relation.memory_info()
            predicates[name] = info
            total_facts += info["facts"]
            total_bytes += info["estimated_bytes"]
            total_index += info["index_entries"]
            total_columns += info.get("column_bytes", 0)
        return {
            "predicates": predicates,
            "facts": total_facts,
            "estimated_bytes": total_bytes,
            "index_entries": total_index,
            "column_bytes": total_columns,
        }

    # -- convenience --------------------------------------------------------

    def copy(self) -> "FactStore":
        """An independent clone that preserves the semi-naive frontier
        state (``delta`` and ``pending``) fact for fact.  Indices are
        not copied — they rebuild lazily on first probe.  A copy taken
        mid-chase therefore resumes exactly where the original stood;
        a copy of a fresh store is itself fresh."""
        clone = FactStore(
            columnar=self.columnar_enabled,
            columnar_threshold=self.columnar_threshold,
        )
        for name, relation in self._relations.items():
            clone._relations[name] = relation.clone()
        return clone

    def __len__(self):
        return self.count()

    def __contains__(self, fact: Fact):
        return self.contains(fact)

    def __iter__(self):
        return self.facts()

    def __repr__(self):
        summary = ", ".join(
            f"{name}:{rel.fact_count()}"
            for name, rel in sorted(self._relations.items())
        )
        return f"FactStore({summary})"
