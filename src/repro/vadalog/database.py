"""Fact storage with hash indices for semi-naive evaluation.

The :class:`FactStore` keeps, per predicate:

* the set of all facts (for duplicate elimination and homomorphism
  checks),
* position indices — hash maps from (position, term) to the facts
  carrying that term there — built lazily for the join positions the
  evaluator actually uses,
* a *delta* set of facts added since the last
  :meth:`FactStore.advance_delta`, which drives semi-naive rule firing.

Aggregate predicates are additionally *functional*: the chase may
replace a previously derived aggregate fact for a group with an updated
one (monotonic-aggregation semantics, Section 4.3), which is supported
through :meth:`retract`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..telemetry import state as _telemetry
from .atoms import Atom, Fact
from .terms import Term


class _PredicateRelation:
    """Facts and indices for one predicate.

    ``delta`` is the current semi-naive frontier (facts new as of the
    previous round); ``pending`` collects facts added during the
    current round and becomes the next frontier on
    :meth:`FactStore.advance_delta`.
    """

    __slots__ = ("facts", "indices", "delta", "pending")

    def __init__(self):
        self.facts: Set[Fact] = set()
        # position -> term -> set of facts
        self.indices: Dict[int, Dict[Term, Set[Fact]]] = {}
        self.delta: Set[Fact] = set()
        self.pending: Set[Fact] = set()

    def ensure_index(self, position: int) -> Dict[Term, Set[Fact]]:
        index = self.indices.get(position)
        if index is None:
            index = defaultdict(set)
            for fact in self.facts:
                index[fact.terms[position]].add(fact)
            self.indices[position] = index
            if _telemetry.enabled:
                _telemetry.registry.counter("store.index_builds").inc()
        return index

    def add(self, fact: Fact) -> bool:
        if fact in self.facts:
            return False
        self.facts.add(fact)
        self.pending.add(fact)
        for position, index in self.indices.items():
            index[fact.terms[position]].add(fact)
        return True

    def remove(self, fact: Fact) -> bool:
        if fact not in self.facts:
            return False
        self.facts.discard(fact)
        self.delta.discard(fact)
        self.pending.discard(fact)
        for position, index in self.indices.items():
            bucket = index.get(fact.terms[position])
            if bucket is not None:
                bucket.discard(fact)
        return True


class FactStore:
    """A database instance: a set of facts with join indices."""

    def __init__(self, facts: Iterable[Fact] = ()):
        self._relations: Dict[str, _PredicateRelation] = {}
        for fact in facts:
            self.add(fact)

    # -- mutation ---------------------------------------------------------

    def add(self, fact: Fact) -> bool:
        """Insert a fact; returns True when it is new."""
        if not fact.is_ground:
            raise ValueError(f"cannot store non-ground atom {fact}")
        relation = self._relations.get(fact.predicate)
        if relation is None:
            relation = _PredicateRelation()
            self._relations[fact.predicate] = relation
        added = relation.add(fact)
        if _telemetry.enabled:
            _telemetry.registry.counter(
                "store.adds" if added else "store.dedup_hits"
            ).inc()
        return added

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Insert many facts; returns how many were new."""
        return sum(1 for fact in facts if self.add(fact))

    def retract(self, fact: Fact) -> bool:
        """Remove a fact (used only for functional aggregate updates)."""
        relation = self._relations.get(fact.predicate)
        if relation is None:
            return False
        removed = relation.remove(fact)
        if removed and _telemetry.enabled:
            _telemetry.registry.counter("store.retracts").inc()
        return removed

    # -- lookup -----------------------------------------------------------

    def predicates(self) -> Iterator[str]:
        return iter(self._relations)

    def facts(self, predicate: Optional[str] = None) -> Iterator[Fact]:
        if predicate is not None:
            relation = self._relations.get(predicate)
            return iter(relation.facts) if relation else iter(())
        return (
            fact
            for relation in self._relations.values()
            for fact in relation.facts
        )

    def count(self, predicate: Optional[str] = None) -> int:
        if predicate is not None:
            relation = self._relations.get(predicate)
            return len(relation.facts) if relation else 0
        return sum(len(r.facts) for r in self._relations.values())

    def contains(self, fact: Fact) -> bool:
        relation = self._relations.get(fact.predicate)
        return relation is not None and fact in relation.facts

    def lookup(
        self,
        predicate: str,
        bound: Dict[int, Term],
        delta_only: bool = False,
    ) -> Iterator[Fact]:
        """Iterate over facts of ``predicate`` matching the given
        position->term constraints, using the most selective index."""
        relation = self._relations.get(predicate)
        if relation is None:
            return iter(())
        universe: Set[Fact] = relation.delta if delta_only else relation.facts
        if not universe:
            return iter(())
        if not bound:
            return iter(tuple(universe))
        # Choose the most selective indexed position.
        best_bucket: Optional[Set[Fact]] = None
        for position, term in bound.items():
            index = relation.ensure_index(position)
            bucket = index.get(term)
            if bucket is None:
                return iter(())
            if best_bucket is None or len(bucket) < len(best_bucket):
                best_bucket = bucket
        assert best_bucket is not None

        def _generator():
            for fact in tuple(best_bucket):
                if delta_only and fact not in relation.delta:
                    continue
                if all(
                    fact.terms[pos] == term for pos, term in bound.items()
                ):
                    yield fact

        return _generator()

    # -- semi-naive bookkeeping --------------------------------------------

    def delta(self, predicate: str) -> Set[Fact]:
        relation = self._relations.get(predicate)
        return relation.delta if relation else set()

    def has_delta(self) -> bool:
        """True while there is a non-empty frontier for the next round."""
        return any(r.delta for r in self._relations.values())

    def has_pending(self) -> bool:
        return any(r.pending for r in self._relations.values())

    def advance_delta(self) -> None:
        """Promote facts added during the current round to be the next
        round's frontier."""
        for relation in self._relations.values():
            relation.delta = relation.pending
            relation.pending = set()

    def reset_delta_to_all(self) -> None:
        """Mark every stored fact as 'new' — used when a stratum starts
        so its rules see all facts from lower strata once."""
        for relation in self._relations.values():
            relation.delta = set(relation.facts)
            relation.pending = set()

    # -- convenience --------------------------------------------------------

    def copy(self) -> "FactStore":
        clone = FactStore()
        for fact in self.facts():
            clone.add(fact)
        return clone

    def __len__(self):
        return self.count()

    def __contains__(self, fact: Fact):
        return self.contains(fact)

    def __iter__(self):
        return self.facts()

    def __repr__(self):
        summary = ", ".join(
            f"{name}:{len(rel.facts)}"
            for name, rel in sorted(self._relations.items())
        )
        return f"FactStore({summary})"
