"""Stratifiability pass.

Codes:

* ``VDL010`` (error) — negation occurs inside a dependency cycle: the
  program has no stratification and the chase will refuse it.  The
  offending cycle is printed predicate by predicate.
* ``VDL011`` (warning) — vacuous negation: the negated predicate is
  never derivable (no rule head, no inline fact, not ``@input``, not
  external), so the literal is always true and can be deleted.

Aggregate edges may be recursive (monotonic aggregation is exactly the
mechanism behind the anonymization cycle), so only *negated* edges
inside a strongly connected component are fatal — same condition
:func:`repro.vadalog.negation.stratify` enforces, reported here as a
diagnostic with the cycle instead of a raise.
"""

from __future__ import annotations

from typing import Iterable, List

import networkx as nx

from ..negation import DependencyGraph
from .diagnostics import Diagnostic, ERROR, Span, WARNING
from .manager import AnalysisContext, register_pass


def _cycle_through(graph, source: str, target: str) -> List[str]:
    """A predicate cycle witnessing the negated edge source -> target."""
    try:
        path = nx.shortest_path(graph, target, source)
    except nx.NetworkXNoPath:  # pragma: no cover - same SCC guarantees one
        return [source, target]
    return path + [target]


@register_pass("stratification")
def check_stratification(context: AnalysisContext) -> Iterable[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    if not context.rules:
        return diagnostics
    dependency = DependencyGraph(context.rules)
    graph = dependency.graph
    component_of = {}
    for index, component in enumerate(
        nx.strongly_connected_components(graph)
    ):
        for predicate in component:
            component_of[predicate] = index

    reported = set()
    for source, target, data in graph.edges(data=True):
        if not data.get("negated"):
            continue
        if component_of[source] != component_of[target]:
            continue
        cycle = _cycle_through(graph, source, target)
        key = frozenset(cycle)
        if key in reported:
            continue
        reported.add(key)
        # Anchor the diagnostic at a rule that negates ``source``.
        span = Span()
        label = None
        for rule in context.rules:
            if source in {
                lit.atom.predicate for lit in rule.negative_body()
            } and component_of.get(
                next(iter(rule.head_predicates())), -1
            ) == component_of[source]:
                span = Span.of(rule)
                label = rule.label
                break
        diagnostics.append(
            Diagnostic(
                "VDL010",
                ERROR,
                "negation inside a recursive cycle "
                f"({' -> '.join(cycle)}): the program is not "
                "stratifiable",
                span=span,
                rule_label=label,
            )
        )

    derivable = set(context.head_predicates)
    derivable.update(context.fact_predicates)
    derivable.update(context.input_predicates())
    for rule in context.rules:
        for literal in rule.negative_body():
            predicate = literal.atom.predicate
            if predicate.startswith("#") or predicate in derivable:
                continue
            diagnostics.append(
                Diagnostic(
                    "VDL011",
                    WARNING,
                    f"negated predicate {predicate} is never derivable "
                    "(no rule, fact or @input provides it) — the "
                    "negation is vacuously true",
                    span=Span.of(literal.atom),
                    rule_label=rule.label,
                )
            )
    return diagnostics
