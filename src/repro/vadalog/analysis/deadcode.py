"""Dead-code pass: rules unreachable from the outputs, duplicate facts
and facts shadowing aggregate heads.

Codes:

* ``VDL040`` (warning) — dead rule: no head predicate of the rule is
  (transitively) needed to derive any ``@output`` predicate.  Only
  emitted when the program declares outputs; a module meant for
  composition has none and every rule is presumed live.
* ``VDL041`` (warning) — duplicate inline fact (identical atom stated
  twice).
* ``VDL042`` (warning) — shadowed fact: an inline fact asserts a
  predicate that an aggregate rule derives.  Monotonic aggregates fold
  contributions per group; a hand-written fact for the same predicate
  competes with the folded value instead of contributing to it.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Set

from .diagnostics import Diagnostic, Span, WARNING
from .manager import AnalysisContext, register_pass


def _needed_predicates(context: AnalysisContext) -> Set[str]:
    """Predicates reachable backwards from the declared outputs."""
    needed: Set[str] = set()
    queue = deque(context.output_predicates())
    while queue:
        predicate = queue.popleft()
        if predicate in needed:
            continue
        needed.add(predicate)
        for rule in context.head_predicates.get(predicate, ()):
            for body_predicate in rule.body_predicates():
                if body_predicate not in needed:
                    queue.append(body_predicate)
            # Co-heads fire together, so their inputs are needed too.
            for co_head in rule.head_predicates():
                if co_head not in needed:
                    queue.append(co_head)
    return needed


@register_pass("deadcode")
def check_deadcode(context: AnalysisContext) -> Iterable[Diagnostic]:
    diagnostics: List[Diagnostic] = []

    outputs = context.output_predicates()
    if outputs:
        needed = _needed_predicates(context)
        for rule in context.rules:
            if rule.head_predicates() & needed:
                continue
            heads = ", ".join(sorted(rule.head_predicates()))
            diagnostics.append(
                Diagnostic(
                    "VDL040",
                    WARNING,
                    f"dead rule: {heads} cannot reach any @output "
                    f"predicate ({', '.join(sorted(set(outputs)))})",
                    span=Span.of(rule),
                    rule_label=rule.label,
                )
            )

    seen = set()
    for fact in context.facts:
        if fact in seen:
            diagnostics.append(
                Diagnostic(
                    "VDL041",
                    WARNING,
                    f"duplicate fact {fact}",
                    span=Span.of(fact),
                )
            )
        seen.add(fact)

    aggregate_heads: Set[str] = set()
    for rule in context.rules:
        if rule.has_aggregates:
            aggregate_heads.update(rule.head_predicates())
    flagged: Set[str] = set()
    for fact in context.facts:
        if fact.predicate in aggregate_heads and fact.predicate not in (
            flagged
        ):
            flagged.add(fact.predicate)
            diagnostics.append(
                Diagnostic(
                    "VDL042",
                    WARNING,
                    f"fact for {fact.predicate} shadows an aggregate "
                    "rule deriving the same predicate; the fact competes "
                    "with the folded aggregate value",
                    span=Span.of(fact),
                )
            )
    return diagnostics
