"""Safety / range-restriction pass.

Codes:

* ``VDL001`` (error) — a head variable is never actually bound when the
  rule fires: it occurs in the body only under negation, or it is an
  existential in an aggregate rule (aggregates group by the remaining
  head variables, so every one of them must be bound).
* ``VDL002`` (warning) — implicit existential: a head variable is
  existentially quantified but was not declared with an ``exists(...)``
  prefix.  Legal (the Vadalog convention), but an undeclared existential
  is the single most common authoring accident — a typo in a head
  variable silently invents labelled nulls.
* ``VDL003`` (error) — a negated literal uses a variable with no
  positive binding (floating negation; the chase cannot range over it).
* ``VDL004`` (error) — an assignment, aggregate argument/contributor or
  condition reads a variable that nothing binds.

``VDL001``/``VDL003``/``VDL004`` mirror the checks
:meth:`repro.vadalog.rules.Rule._validate` enforces at construction
time, so parsed programs normally cannot carry them; they fire for
programmatically built rules (``validate=False``) and keep the analyzer
self-contained.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from ..rules import Rule
from ..terms import Variable
from .diagnostics import Diagnostic, ERROR, Span, WARNING
from .manager import AnalysisContext, register_pass


def _positively_bound(rule: Rule) -> Set[Variable]:
    bound: Set[Variable] = set()
    for literal in rule.positive_body():
        bound.update(literal.variables())
    bound.update(rule.derived_variables())
    return bound


@register_pass("safety")
def check_safety(context: AnalysisContext) -> Iterable[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for rule in context.rules:
        span = Span.of(rule)
        label = rule.label
        bound = _positively_bound(rule)
        existentials = rule.existential_variables()

        # VDL001: head variables that look body-bound but are only ever
        # bound under negation — the firing has no value for them.
        negated_only = (rule.head_variables() - bound) - existentials
        for variable in sorted(negated_only, key=lambda v: v.name):
            diagnostics.append(
                Diagnostic(
                    "VDL001",
                    ERROR,
                    f"head variable {variable.name} is only bound under "
                    "negation and has no value when the rule fires",
                    span=span,
                    rule_label=label,
                )
            )
        # VDL001: existentials in aggregate rules break the group-by.
        if rule.has_aggregates and existentials:
            names = ", ".join(sorted(v.name for v in existentials))
            diagnostics.append(
                Diagnostic(
                    "VDL001",
                    ERROR,
                    f"aggregate rule has existential head variable(s) "
                    f"{names}; aggregates group by the remaining head "
                    "variables, which must all be bound",
                    span=span,
                    rule_label=label,
                )
            )
        elif existentials:
            # VDL002: implicit existentials (undeclared).
            undeclared = existentials - rule.declared_existentials
            for variable in sorted(undeclared, key=lambda v: v.name):
                diagnostics.append(
                    Diagnostic(
                        "VDL002",
                        WARNING,
                        f"head variable {variable.name} is implicitly "
                        "existential (invents labelled nulls); declare it "
                        f"with exists({variable.name}) or bind it in the "
                        "body if this is a typo",
                        span=span,
                        rule_label=label,
                    )
                )

        # VDL003: floating negation.
        for literal in rule.negative_body():
            loose = [
                v
                for v in literal.variables()
                if v not in bound and not v.is_anonymous
            ]
            for variable in sorted(set(loose), key=lambda v: v.name):
                diagnostics.append(
                    Diagnostic(
                        "VDL003",
                        ERROR,
                        f"negated literal not {literal.atom} uses variable "
                        f"{variable.name} with no positive binding",
                        span=Span.of(literal.atom),
                        rule_label=label,
                    )
                )

        # VDL004: unbound inputs to assignments / aggregates / conditions.
        available = set(bound) - rule.derived_variables()
        for assignment in rule.assignments:
            missing = sorted(
                {
                    v.name
                    for v in assignment.input_variables()
                    if v not in available
                }
            )
            if missing:
                diagnostics.append(
                    Diagnostic(
                        "VDL004",
                        ERROR,
                        f"assignment to {assignment.target.name} reads "
                        f"unbound variable(s) {', '.join(missing)}",
                        span=Span.of(assignment),
                        rule_label=label,
                    )
                )
            available.add(assignment.target)
        for aggregate in rule.aggregates:
            argument_vars = (
                set(aggregate.argument.variables())
                if aggregate.argument is not None
                else set()
            )
            missing = sorted(
                {v.name for v in argument_vars if v not in available}
            )
            if missing:
                diagnostics.append(
                    Diagnostic(
                        "VDL004",
                        ERROR,
                        f"aggregate {aggregate.function} reads unbound "
                        f"variable(s) {', '.join(missing)}",
                        span=span,
                        rule_label=label,
                    )
                )
            for contributor in aggregate.contributors:
                if contributor not in available:
                    diagnostics.append(
                        Diagnostic(
                            "VDL004",
                            ERROR,
                            f"aggregate contributor {contributor.name} "
                            "is unbound",
                            span=span,
                            rule_label=label,
                        )
                    )
            available.add(aggregate.target)
        for condition in rule.conditions:
            missing = sorted(
                {
                    v.name
                    for v in condition.variables()
                    if v not in available
                }
            )
            if missing:
                diagnostics.append(
                    Diagnostic(
                        "VDL004",
                        ERROR,
                        "condition reads unbound variable(s) "
                        f"{', '.join(missing)}",
                        span=Span.of(condition),
                        rule_label=label,
                    )
                )
    return diagnostics
