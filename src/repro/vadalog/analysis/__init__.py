"""Static analysis for Vadalog programs.

The paper's guarantees — decidability, PTIME data complexity,
terminating anonymization cycles — hold only for warded programs with
stratified negation and monotonic aggregation.  Those properties are
syntactic, so this package checks them (and a set of hygiene lints)
*before* the chase runs, the way the Vadalog system's logic optimizer
does.

Entry point::

    from repro.vadalog.analysis import analyze
    report = analyze(Program.parse(source))
    if report.has_errors:
        print(report.render())

Diagnostic codes are stable (``VDL0xx``); suppress one per program with
``@lint_ignore("VDL0xx", "justification").``.  See ``docs/linting.md``
for the catalogue.
"""

from .diagnostics import (
    AnalysisReport,
    Diagnostic,
    ERROR,
    INFO,
    SEVERITIES,
    Span,
    WARNING,
    severity_rank,
)
from .flow import (
    DECLASSIFYING_EXTERNALS,
    FlowGraph,
    LEVELS,
    TAINT_KINDS,
    annotations_from_schema,
    build_flow_graph,
    parse_category_annotations,
)
from .manager import PASSES, AnalysisContext, analyze, register_pass
from .sarif import to_sarif

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "DECLASSIFYING_EXTERNALS",
    "Diagnostic",
    "ERROR",
    "FlowGraph",
    "INFO",
    "LEVELS",
    "PASSES",
    "SEVERITIES",
    "Span",
    "TAINT_KINDS",
    "WARNING",
    "analyze",
    "annotations_from_schema",
    "build_flow_graph",
    "parse_category_annotations",
    "register_pass",
    "severity_rank",
    "to_sarif",
]
