"""Structured diagnostics for the Vadalog static analyzer.

Every finding is a :class:`Diagnostic` with a stable code (``VDL0xx``),
a severity, a human message and an optional source :class:`Span`.  Codes
are stable across releases so they can be suppressed per-program with
``@lint_ignore("VDL0xx", "justification").`` annotations and grepped in
CI logs; see ``docs/linting.md`` for the full catalogue.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


#: Severity levels, ordered from least to most severe.
SEVERITIES = ("info", "warning", "error")

ERROR = "error"
WARNING = "warning"
INFO = "info"


def severity_rank(severity: str) -> int:
    return SEVERITIES.index(severity)


class Span:
    """A 1-based source location (``line``, ``column``); either may be
    ``None`` for programmatically built programs."""

    __slots__ = ("line", "column")

    def __init__(self, line: Optional[int] = None,
                 column: Optional[int] = None):
        self.line = line
        self.column = column

    @classmethod
    def of(cls, node) -> "Span":
        """Span from any AST node carrying ``line``/``column``."""
        return cls(getattr(node, "line", None), getattr(node, "column", None))

    @property
    def known(self) -> bool:
        return self.line is not None

    def __str__(self):
        if self.line is None:
            return "-"
        if self.column is None:
            return f"{self.line}"
        return f"{self.line}:{self.column}"

    def __repr__(self):
        return f"Span({self.line}, {self.column})"

    def __eq__(self, other):
        return (
            isinstance(other, Span)
            and self.line == other.line
            and self.column == other.column
        )

    def __hash__(self):
        return hash((self.line, self.column))


class Diagnostic:
    """One analyzer finding."""

    __slots__ = ("code", "severity", "message", "span", "rule_label",
                 "pass_name")

    def __init__(
        self,
        code: str,
        severity: str,
        message: str,
        span: Optional[Span] = None,
        rule_label: Optional[str] = None,
        pass_name: Optional[str] = None,
    ):
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}")
        self.code = code
        self.severity = severity
        self.message = message
        self.span = span or Span()
        self.rule_label = rule_label
        self.pass_name = pass_name

    def render(self, source_name: str = "<program>") -> str:
        location = str(self.span) if self.span.known else "-"
        label = f" [{self.rule_label}]" if self.rule_label else ""
        return (
            f"{source_name}:{location}: {self.severity} {self.code}: "
            f"{self.message}{label}"
        )

    def sort_key(self):
        return (
            self.span.line if self.span.line is not None else 1 << 30,
            self.span.column if self.span.column is not None else 1 << 30,
            self.code,
            self.message,
        )

    def to_dict(self) -> Dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "line": self.span.line,
            "column": self.span.column,
            "rule": self.rule_label,
            "pass": self.pass_name,
        }

    def __repr__(self):
        return (
            f"Diagnostic({self.code} {self.severity} @{self.span}: "
            f"{self.message!r})"
        )


def _dedupe(diagnostics: List["Diagnostic"]) -> List["Diagnostic"]:
    """Drop diagnostics identical in (code, span, message) — two passes
    reporting the same finding should surface it once.  Input must be
    sorted; the first occurrence (and its pass attribution) wins."""
    seen = set()
    kept: List[Diagnostic] = []
    for diagnostic in diagnostics:
        key = (
            diagnostic.code,
            diagnostic.span.line,
            diagnostic.span.column,
            diagnostic.message,
        )
        if key in seen:
            continue
        seen.add(key)
        kept.append(diagnostic)
    return kept


class AnalysisReport:
    """The analyzer's output: diagnostics kept, diagnostics suppressed
    via ``@lint_ignore`` and the suppression annotations themselves.

    Both lists are sorted stably by (line, column, code, message) —
    the per-source component of the (file, line, column, code) order
    the CLI and SARIF writers present — and deduplicated on identical
    (code, span, message) triples across passes."""

    def __init__(
        self,
        diagnostics: Sequence[Diagnostic],
        suppressed: Sequence[Diagnostic] = (),
        ignores: Optional[Dict[str, str]] = None,
        source_name: str = "<program>",
    ):
        self.diagnostics = _dedupe(
            sorted(diagnostics, key=Diagnostic.sort_key)
        )
        self.suppressed = _dedupe(
            sorted(suppressed, key=Diagnostic.sort_key)
        )
        #: code -> justification from ``@lint_ignore`` annotations.
        self.ignores = dict(ignores or {})
        self.source_name = source_name

    # -- selection --------------------------------------------------------

    def by_severity(self, severity: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(WARNING)

    @property
    def infos(self) -> List[Diagnostic]:
        return self.by_severity(INFO)

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    @property
    def is_clean(self) -> bool:
        return not self.diagnostics

    def codes(self) -> List[str]:
        return sorted({d.code for d in self.diagnostics})

    def at_or_above(self, severity: str) -> List[Diagnostic]:
        floor = severity_rank(severity)
        return [
            d for d in self.diagnostics if severity_rank(d.severity) >= floor
        ]

    # -- rendering --------------------------------------------------------

    def render(self, show_suppressed: bool = False) -> str:
        lines = [d.render(self.source_name) for d in self.diagnostics]
        if show_suppressed:
            lines.extend(
                d.render(self.source_name) + "  (suppressed)"
                for d in self.suppressed
            )
        counts = (
            f"{len(self.errors)} error(s), {len(self.warnings)} "
            f"warning(s), {len(self.infos)} info(s)"
        )
        if self.suppressed:
            counts += f", {len(self.suppressed)} suppressed"
        lines.append(counts)
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "source": self.source_name,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [d.to_dict() for d in self.suppressed],
            "ignores": dict(self.ignores),
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
            },
        }

    def __repr__(self):
        return (
            f"AnalysisReport({len(self.errors)}E/{len(self.warnings)}W/"
            f"{len(self.infos)}I, {len(self.suppressed)} suppressed)"
        )
